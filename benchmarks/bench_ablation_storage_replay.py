"""Ablation — durable store append / replay / compact throughput.

The paper's cloud server is stateless between experiments; ours can be
restarted, which costs a replay of the append-only log.  This ablation
prices that durability: batched fsynced appends, full cold-start replay
(open + scan + rebuild of the live index), and compaction after a
typical delete fraction, swept over dataset size.

Payloads are opaque bytes sized like a real CRSE-II ciphertext from the
codec (the store never looks inside them), so the sweep measures the
storage engine, not the crypto.
"""

from __future__ import annotations

import time

from repro.analysis.report import TextTable
from repro.cloud.codec import encode_ciphertext
from repro.service.schemeio import scheme_header
from repro.storage import RecordStore

SIZES = (500, 2000, 8000)
BATCH = 100  # records per upload batch == one fsync
DELETE_FRACTION = 0.3


def _payload_bytes(crse2_env) -> bytes:
    scheme, key, rng = crse2_env
    sample = encode_ciphertext(scheme, scheme.encrypt(key, (7, 9), rng))
    return bytes(i % 256 for i in range(len(sample)))


def test_ablation_storage_replay(crse2_env, tmp_path, write_result, write_json):
    scheme, _, _ = crse2_env
    payload = _payload_bytes(crse2_env)
    header = scheme_header(scheme)
    table = TextTable(
        f"Ablation — storage engine, {len(payload)}-byte ciphertexts, "
        f"batches of {BATCH}, {int(DELETE_FRACTION * 100)}% deleted",
        [
            "records", "log MB", "append ms", "rec/s",
            "replay ms", "rec/s", "compact ms", "MB freed",
        ],
    )
    rows = []
    for n in SIZES:
        directory = tmp_path / f"store-{n}"

        started = time.perf_counter()
        with RecordStore.create(directory, header) as store:
            for base in range(0, n, BATCH):
                store.append(
                    (i, payload, b"") for i in range(base, min(base + BATCH, n))
                )
        append_s = time.perf_counter() - started
        log_bytes = sum(
            p.stat().st_size for p in directory.iterdir() if p.suffix == ".log"
        )

        # Cold start: open runs recovery, scan rebuilds what a server
        # replays into its engine.
        started = time.perf_counter()
        with RecordStore.open(directory) as store:
            replayed = sum(1 for _ in store.scan())
        replay_s = time.perf_counter() - started
        assert replayed == n

        with RecordStore.open(directory) as store:
            store.delete(range(0, int(n * DELETE_FRACTION)))
            before = store.snapshot().log_bytes
            started = time.perf_counter()
            after = store.compact()
            compact_s = time.perf_counter() - started
            assert after.dead_records == 0
            assert after.live_records == n - int(n * DELETE_FRACTION)
        freed = before - after.log_bytes

        row = {
            "records": n,
            "log_bytes": log_bytes,
            "append_ms": append_s * 1000.0,
            "append_rps": n / append_s,
            "replay_ms": replay_s * 1000.0,
            "replay_rps": n / replay_s,
            "compact_ms": compact_s * 1000.0,
            "bytes_freed": freed,
        }
        rows.append(row)
        table.add_row(
            n,
            round(log_bytes / 1e6, 2),
            round(row["append_ms"], 1),
            round(row["append_rps"]),
            round(row["replay_ms"], 1),
            round(row["replay_rps"]),
            round(row["compact_ms"], 1),
            round(freed / 1e6, 2),
        )

    # Replay is a linear scan: the per-record cost must not blow up with
    # size (generous 3x guard over the smallest run, CI machines jitter).
    per_record = [r["replay_ms"] / r["records"] for r in rows]
    assert per_record[-1] < per_record[0] * 3.0 + 0.05, per_record

    write_result("ablation_storage_replay", table.render())
    write_json(
        "ablation_storage_replay",
        {
            "payload_bytes": len(payload),
            "batch": BATCH,
            "delete_fraction": DELETE_FRACTION,
            "rows": rows,
        },
    )
