"""Ablation — service-layer throughput with real process parallelism.

Where ``bench_ablation_parallel_search`` *models* the paper's closing
claim (independent record evaluation parallelizes across EC2 instances)
by summing per-partition scan times, this ablation *measures* it: the
encrypted dataset is sharded across genuine worker processes by
:class:`repro.service.engine.SearchEngine` and the wall-clock of each
query is real.  The single-process in-memory
:meth:`~repro.cloud.server.CloudServer.handle_search` is the baseline.

Speedup only exists where cores do: the >= 2x assertion at 4 workers is
gated on the host actually exposing >= 4 usable CPUs.  On smaller hosts
the table still reports the measured numbers (expect ~1x, plus IPC
overhead) together with the core count that explains them.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.analysis.report import TextTable
from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import SearchRequest, UploadDataset, UploadRecord
from repro.cloud.server import CloudServer
from repro.core.geometry import Circle
from repro.datasets.synthetic import uniform_points
from repro.service.engine import SearchEngine

N_RECORDS = 200
RADIUS = 3
WORKER_COUNTS = (1, 2, 4)
QUERIES_PER_CONFIG = 5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_ablation_service_throughput(crse2_env, write_result):
    scheme, key, rng = crse2_env
    points = uniform_points(scheme.space, N_RECORDS, rng)
    records = [
        (i, encode_ciphertext(scheme, scheme.encrypt(key, point, rng)))
        for i, point in enumerate(points)
    ]
    token = encode_token(
        scheme,
        scheme.gen_token(key, Circle.from_radius((256, 256), RADIUS), rng),
    )
    request = SearchRequest(payload=token)

    # Baseline: the pre-service single-process scan.
    cloud = CloudServer(scheme)
    cloud.handle_upload(
        UploadDataset(
            records=tuple(
                UploadRecord(identifier=i, payload=p) for i, p in records
            )
        )
    )
    baseline = cloud.handle_search(request)
    started = time.perf_counter()
    for _ in range(QUERIES_PER_CONFIG):
        cloud.handle_search(request)
    baseline_ms = (
        (time.perf_counter() - started) * 1000.0 / QUERIES_PER_CONFIG
    )

    cpus = _usable_cpus()
    table = TextTable(
        f"Ablation — service throughput, n = {N_RECORDS}, R = {RADIUS}, "
        f"host CPUs = {cpus} (baseline {baseline_ms:.1f} ms/query)",
        ["workers", "ms/query", "qps", "speedup", "partition skew"],
    )
    speedups = {}
    for workers in WORKER_COUNTS:
        with SearchEngine(scheme, workers=workers) as engine:
            engine.load(records)
            engine.warm_up()
            result = engine.search(token)  # first query primes caches
            assert list(result.identifiers) == sorted(baseline.identifiers)
            assert result.stats.records_scanned == N_RECORDS
            started = time.perf_counter()
            for _ in range(QUERIES_PER_CONFIG):
                result = engine.search(token)
            wall_ms = (
                (time.perf_counter() - started) * 1000.0 / QUERIES_PER_CONFIG
            )
        # Round-robin sharding should keep the shards balanced: skew is
        # the slowest shard relative to the mean shard scan time.
        skew = max(result.stats.partitions) / statistics.mean(
            result.stats.partitions
        )
        speedups[workers] = baseline_ms / wall_ms
        table.add_row(
            workers,
            round(wall_ms, 2),
            round(1000.0 / wall_ms, 1),
            round(speedups[workers], 2),
            round(skew, 2),
        )
        assert skew < max(2.0, workers * 1.0), (
            f"shard imbalance at {workers} workers: {result.stats.partitions}"
        )

    if cpus >= 4:
        assert speedups[4] >= 2.0, (
            f"expected >= 2x at 4 workers on a {cpus}-CPU host, "
            f"got {speedups[4]:.2f}x"
        )
        note = f"speedup gate: PASSED (>= 2x at 4 workers on {cpus} CPUs)"
    else:
        note = (
            f"speedup gate: SKIPPED — host exposes only {cpus} usable "
            f"CPU(s); process parallelism cannot beat the baseline here"
        )
    write_result(
        "ablation_service_throughput", table.render() + "\n" + note
    )


def test_bench_service_search_2_workers(crse2_env, benchmark):
    scheme, key, rng = crse2_env
    records = [
        (i, encode_ciphertext(scheme, scheme.encrypt(key, point, rng)))
        for i, point in enumerate(uniform_points(scheme.space, 60, rng))
    ]
    token = encode_token(
        scheme,
        scheme.gen_token(key, Circle.from_radius((128, 128), 2), rng),
    )
    with SearchEngine(scheme, workers=2) as engine:
        engine.load(records)
        engine.warm_up()
        result = benchmark(engine.search, token)
    assert result.stats.records_scanned == 60
