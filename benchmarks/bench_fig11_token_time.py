"""Fig. 11 — CRSE-II token generation time per query vs radius R.

Paper: grows with the square of R (one sub-token per concentric circle,
m = O(R²)), reaching ≈5.6 s at R = 50 on EC2.  We measure the sweep on the
fast backend and print the paper-scale curve from the operation counts.
"""

from __future__ import annotations

import time

from repro.analysis.opcount import crse2_gen_token_ops
from repro.analysis.report import Series, format_series_block, series_to_csv
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.geometry import Circle

RADII = (10, 20, 30, 40, 50)
CENTER = (256, 256)


def test_fig11_series(crse2_env, write_result, write_csv):
    scheme, key, rng = crse2_env
    measured = Series("measured s (fast backend)")
    paper = Series("paper-scale s (EC2 model)")
    m_values = []
    for radius in RADII:
        circle = Circle.from_radius(CENTER, radius)
        started = time.perf_counter()
        token = scheme.gen_token(key, circle, rng)
        measured.add(radius, round(time.perf_counter() - started, 4))
        m = num_concentric_circles(radius * radius)
        m_values.append(m)
        assert token.num_sub_tokens == m
        paper.add(
            radius,
            round(PAPER_EC2_MODEL.time_s(crse2_gen_token_ops(m, w=2)), 3),
        )
    # Shape: strictly increasing, superlinear in R (quadratic in m).
    assert all(a < b for a, b in zip(measured.y, measured.y[1:]))
    assert paper.y[-1] / paper.y[0] > 10  # R 10→50 grows ≥ m-ratio ≈ 15x
    # Anchor: paper reports 329.47 ms at R = 10.
    assert abs(paper.y[0] - 0.329) / 0.329 < 0.2
    write_result(
        "fig11_token_time",
        format_series_block(
            "Fig. 11 — CRSE-II token generation time per query vs R "
            f"(m = {m_values})",
            [measured, paper],
        ),
    )
    write_csv("fig11_token_time", series_to_csv([measured, paper]))


def test_bench_crse2_gen_token_r10(crse2_env, benchmark):
    scheme, key, rng = crse2_env
    circle = Circle.from_radius(CENTER, 10)
    token = benchmark(scheme.gen_token, key, circle, rng)
    assert token.num_sub_tokens == 44
