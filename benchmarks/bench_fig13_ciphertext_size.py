"""Fig. 13 — CRSE-II ciphertext size vs radius R.

Paper: flat at 640 bytes (10 group elements × 64 B at the 512-bit field),
independent of R.  We reproduce both the paper-scale constant and our
backend's measured wire size.
"""

from __future__ import annotations

from repro.analysis.report import Series, format_series_block, series_to_csv
from repro.cloud.codec import encode_ciphertext
from repro.crypto.serialize import ElementSizeModel

RADII = (10, 20, 30, 40, 50)


def test_fig13_series(crse2_env, write_result, write_csv):
    scheme, key, rng = crse2_env
    paper_model = ElementSizeModel.paper()
    measured_model = ElementSizeModel.for_group(scheme.group)
    measured = Series("measured bytes (fast backend)")
    paper = Series("paper-scale bytes (512-bit field)")
    for radius in RADII:
        wire = len(encode_ciphertext(scheme, scheme.encrypt(key, (7, 7), rng)))
        measured.add(radius, wire)
        paper.add(radius, paper_model.crse2_ciphertext_bytes(w=2))
    # Flat, and exactly the paper's 640 B at the paper's field size.
    assert len(set(measured.y)) == 1
    assert set(paper.y) == {640}
    # The measured wire size matches the size model plus the count prefix.
    assert measured.y[0] == measured_model.crse2_ciphertext_bytes(w=2) + 2
    write_result(
        "fig13_ciphertext_size",
        format_series_block(
            "Fig. 13 — CRSE-II ciphertext size vs R (radius-independent)",
            [measured, paper],
        ),
    )
    write_csv("fig13_ciphertext_size", series_to_csv([measured, paper]))


def test_bench_encode_ciphertext(crse2_env, benchmark):
    scheme, key, rng = crse2_env
    ciphertext = scheme.encrypt(key, (5, 9), rng)
    data = benchmark(encode_ciphertext, scheme, ciphertext)
    assert len(data) > 0
