"""Table I — CRSE-I running time (seconds) for R ∈ {1, 2, 3}, w = 2.

Paper:

    R   m   Enc     GenToken   Search
    1   2   0.015   0.019      0.009
    2   4   0.077   0.102      0.050
    3   7   3.09    4.12       1.96

The driver is the naive product-split length α = (w+2)^m = 16, 256, 16384
(Table II's byte sizes confirm the paper ran the *naive* split).  We
measure our implementation per R — using the optimized split for running
(the naive α = 16384 SSW instance is prohibitive in pure Python at R = 3,
which is itself the paper's scalability point) — and print paper-scale
estimates for both split variants.
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import (
    crse1_encrypt_ops,
    crse1_gen_token_ops,
    crse1_search_record_ops,
)
from repro.analysis.report import TextTable
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.crse1 import CRSE1Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1
from repro.core.split import naive_alpha, optimized_alpha

SPACE = DataSpace(2, 64)
CENTER = (32, 32)
PAPER_ROWS = {1: (0.015, 0.019, 0.009), 2: (0.077, 0.102, 0.050), 3: (3.09, 4.12, 1.96)}


def _timed_match(scheme, token, ciphertext) -> float:
    started = time.perf_counter()
    assert scheme.matches(token, ciphertext)
    return time.perf_counter() - started


def _build(radius: int, rng: random.Random) -> tuple[CRSE1Scheme, object]:
    scheme = CRSE1Scheme(
        SPACE,
        group_for_crse1(SPACE, radius * radius, "fast", rng),
        r_squared=radius * radius,
    )
    return scheme, scheme.gen_key(rng)


def test_table1(write_result):
    rng = random.Random(0x7AB1)
    table = TextTable(
        "Table I — CRSE-I running time (s), w = 2",
        [
            "R",
            "m",
            "alpha(opt)",
            "meas Enc",
            "meas Token",
            "meas Search",
            "model Enc",
            "model Token",
            "model Search",
            "paper Search",
        ],
    )
    measured_search = []
    for radius in (1, 2, 3):
        m = num_concentric_circles(radius * radius)
        scheme, key = _build(radius, rng)
        assert scheme.m == m

        started = time.perf_counter()
        ciphertext = scheme.encrypt(key, CENTER, rng)
        enc_s = time.perf_counter() - started

        circle = Circle.from_radius(CENTER, radius)
        started = time.perf_counter()
        token = scheme.gen_token(key, circle, rng)
        token_s = time.perf_counter() - started

        # Best-of-5 to shed scheduler noise on the sub-millisecond cases.
        search_s = min(
            _timed_match(scheme, token, ciphertext) for _ in range(5)
        )
        measured_search.append(search_s)

        alpha = optimized_alpha(2, m)
        table.add_row(
            radius,
            m,
            alpha,
            round(enc_s, 4),
            round(token_s, 4),
            round(search_s, 4),
            round(PAPER_EC2_MODEL.time_s(crse1_encrypt_ops(alpha)), 3),
            round(PAPER_EC2_MODEL.time_s(crse1_gen_token_ops(alpha)), 3),
            round(PAPER_EC2_MODEL.time_s(crse1_search_record_ops(alpha)), 3),
            PAPER_ROWS[radius][2],
        )
    # Shape: every cost explodes with R (the paper's core CRSE-I finding).
    assert measured_search[0] < measured_search[1] < measured_search[2]
    assert measured_search[2] / measured_search[0] > 5
    # Naive-α context row (what the paper actually ran, per Table II sizes).
    naive_note = (
        f"naive alpha = (w+2)^m: {[naive_alpha(2, m) for m in (2, 4, 7)]}; "
        "paper Enc/GenToken/Search (s): "
        + "; ".join(f"R={r}: {v}" for r, v in PAPER_ROWS.items())
    )
    write_result("table1_crse1_time", table.render() + "\n" + naive_note)


def test_bench_crse1_search_r2(benchmark):
    rng = random.Random(0x7AB2)
    scheme, key = _build(2, rng)
    token = scheme.gen_token(key, Circle.from_radius(CENTER, 2), rng)
    ciphertext = scheme.encrypt(key, (33, 32), rng)
    assert benchmark(scheme.matches, token, ciphertext) is True
