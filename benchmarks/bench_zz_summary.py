"""Summary — collate every regenerated table/figure into one overview.

Runs last (the ``zz`` prefix orders it after the other bench modules) and
stitches ``benchmarks/results/*.txt`` into ``results/SUMMARY.txt``, giving
a single artifact to diff against the paper's evaluation section.
"""

from __future__ import annotations

from repro.analysis.report import TextTable

# The experiments a complete run must have produced.
EXPECTED = [
    "fig09_concentric_circles",
    "fig10_encrypt_time",
    "fig11_token_time",
    "fig12_search_time",
    "fig13_ciphertext_size",
    "fig14_token_size",
    "fig15_total_encrypt",
    "fig16_total_search",
    "table1_crse1_time",
    "table2_crse1_size",
    "table3_accuracy_tradeoff",
]


def test_zz_collate_summary(results_dir, write_result):
    produced = sorted(
        p.stem for p in results_dir.glob("*.txt") if p.stem != "SUMMARY"
    )
    missing = [name for name in EXPECTED if name not in produced]
    # Tolerate partial runs (someone benchmarking one file), but flag them.
    coverage = TextTable(
        "Reproduction coverage",
        ["kind", "count"],
    )
    coverage.add_row("paper tables/figures produced", len(
        [n for n in produced if n.startswith(("fig", "table"))]
    ))
    coverage.add_row("ablations/extensions produced", len(
        [n for n in produced if n.startswith(("ablation", "extension"))]
    ))
    coverage.add_row("missing paper experiments", len(missing))

    sections = [coverage.render()]
    if missing:
        sections.append("missing: " + ", ".join(missing))
    for name in produced:
        sections.append((results_dir / f"{name}.txt").read_text().rstrip())
    write_result("SUMMARY", "\n\n".join(sections))
    # When the full suite ran (the normal case), everything must be there.
    if not missing:
        assert len(produced) >= len(EXPECTED)
