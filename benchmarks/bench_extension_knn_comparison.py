"""Extension — secure kNN (ASPE, ref. [22]) vs circular range search.

The paper's Related Work argues the two primitives answer different
questions and offer different security.  This bench makes the comparison
concrete on one dataset: result semantics (fixed count vs fixed radius),
per-query cost (rational dot products vs pairings), and the security gap
(ASPE falls to a known-plaintext attack; SSW-based CRSE does not have a
linear-algebra key to recover).
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import TextTable
from repro.baselines.aspe_knn import ASPEScheme, recover_key_known_plaintext
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, distance_squared
from repro.core.provision import group_for_crse2
from repro.datasets.synthetic import uniform_points

SPACE = DataSpace(2, 256)
N_POINTS = 400
QUERY_POINT = (128, 128)
RADIUS = 10


def test_extension_knn_vs_circular(write_result):
    rng = random.Random(0x4A11)
    points = uniform_points(SPACE, N_POINTS, rng)

    # --- ASPE kNN ---
    aspe = ASPEScheme(dimension=2)
    aspe_key = aspe.gen_key(rng)
    aspe_records = [
        (i, aspe.encrypt_point(aspe_key, p)) for i, p in enumerate(points)
    ]
    token = aspe.encrypt_query(aspe_key, QUERY_POINT, rng)
    started = time.perf_counter()
    knn_ids = aspe.knn(token, aspe_records, k=10)
    aspe_ms = (time.perf_counter() - started) * 1000

    # --- CRSE-II circular range ---
    crse = CRSE2Scheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    crse_key = crse.gen_key(rng)
    crse_records = [crse.encrypt(crse_key, p, rng) for p in points]
    circle = Circle.from_radius(QUERY_POINT, RADIUS)
    circle_token = crse.gen_token(crse_key, circle, rng)
    started = time.perf_counter()
    range_ids = [
        i for i, ct in enumerate(crse_records)
        if crse.matches(circle_token, ct)
    ]
    crse_ms = (time.perf_counter() - started) * 1000

    # Semantics: kNN always returns k; range returns whatever is inside.
    assert len(knn_ids) == 10
    in_radius = {
        i for i, p in enumerate(points)
        if distance_squared(p, QUERY_POINT) <= RADIUS * RADIUS
    }
    assert set(range_ids) == in_radius

    m = num_concentric_circles(RADIUS * RADIUS)
    paper_crse_ms = N_POINTS * PAPER_EC2_MODEL.time_ms(
        crse2_search_record_ops(max(1, m // 2), 2)
    )
    table = TextTable(
        "Extension — ASPE secure kNN vs CRSE-II circular range "
        f"(n = {N_POINTS})",
        ["primitive", "question", "results", "measured ms", "paper-scale ms"],
    )
    table.add_row(
        "ASPE kNN (k=10)", "10 nearest", len(knn_ids), round(aspe_ms, 1), "n/a"
    )
    table.add_row(
        f"CRSE-II (R={RADIUS})",
        "all within R",
        len(range_ids),
        round(crse_ms, 1),
        round(paper_crse_ms, 1),
    )
    write_result("extension_knn_comparison", table.render())


def test_security_gap_known_plaintext():
    """ASPE's key falls to d+1 known pairs; CRSE has no such algebra."""
    rng = random.Random(0x4A12)
    aspe = ASPEScheme(dimension=2)
    key = aspe.gen_key(rng)
    pairs = [
        (p, aspe.encrypt_point(key, p)) for p in ((1, 0), (0, 1), (2, 5))
    ]
    recovered = recover_key_known_plaintext(aspe, pairs)
    assert tuple(tuple(r) for r in recovered) == key.matrix_t


def test_bench_aspe_knn_query(benchmark):
    rng = random.Random(0x4A13)
    points = uniform_points(SPACE, 200, rng)
    aspe = ASPEScheme(dimension=2)
    key = aspe.gen_key(rng)
    records = [(i, aspe.encrypt_point(key, p)) for i, p in enumerate(points)]
    token = aspe.encrypt_query(key, QUERY_POINT, rng)
    result = benchmark(aspe.knn, token, records, 5)
    assert len(result) == 5
