"""Ablation — parallel search across simulated EC2 instances.

The paper closes its evaluation noting that "each encrypted data record …
can be evaluated independently with a given search token, [so] performance
can be further improved by using parallel computing with multiple instances
of Amazon EC2".  This ablation partitions the encrypted dataset over k
simulated instances and reports the modeled wall-clock (slowest partition),
which scales as n/k.
"""

from __future__ import annotations

import random

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import TextTable
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.cloud.deployment import CloudDeployment
from repro.cloud.messages import QueryRequest, SearchRequest
from repro.core.concircles import num_concentric_circles
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.datasets.synthetic import uniform_points

N_RECORDS = 600
RADIUS = 3
INSTANCES = (1, 2, 4, 8)


def test_ablation_parallel(write_result):
    rng = random.Random(0x9A12)
    space = DataSpace(2, 128)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    deployment = CloudDeployment.create(scheme, rng=rng)
    deployment.outsource(uniform_points(space, N_RECORDS, rng))
    circle = Circle.from_radius((64, 64), RADIUS)
    payload = deployment.owner.handle_query(QueryRequest(circle=circle)).payload
    request = SearchRequest(payload=payload)

    baseline = deployment.server.handle_search(request)
    m = num_concentric_circles(RADIUS * RADIUS)
    worst_record_ms = PAPER_EC2_MODEL.time_ms(crse2_search_record_ops(m, 2))

    table = TextTable(
        f"Ablation — parallel search, n = {N_RECORDS}, R = {RADIUS} (m = {m})",
        [
            "instances",
            "measured wall ms",
            "paper-scale wall s (worst case)",
            "speedup vs 1",
        ],
    )
    measured = []
    for k in INSTANCES:
        response, stats = deployment.server.parallel_search(request, k)
        wall_ms = stats.elapsed_ms
        assert len(stats.partitions) == k
        assert sorted(response.identifiers) == sorted(baseline.identifiers)
        measured.append(wall_ms)
        # Paper-scale: ceil(n/k) records per instance, all worst case.
        per_instance = -(-N_RECORDS // k)
        table.add_row(
            k,
            round(wall_ms, 2),
            round(per_instance * worst_record_ms / 1000, 2),
            round(measured[0] / wall_ms, 2),
        )
    # Near-linear scaling: 8 instances at least 4x faster than 1.
    assert measured[0] / measured[-1] > 4
    write_result("ablation_parallel_search", table.render())


def test_bench_parallel_search_4_instances(benchmark):
    rng = random.Random(0x9A13)
    space = DataSpace(2, 64)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    deployment = CloudDeployment.create(scheme, rng=rng)
    deployment.outsource(uniform_points(space, 100, rng))
    payload = deployment.owner.handle_query(
        QueryRequest(circle=Circle.from_radius((32, 32), 2))
    ).payload
    request = SearchRequest(payload=payload)
    response, _ = benchmark(deployment.server.parallel_search, request, 4)
    assert response is not None
