"""Table III — the accuracy/efficiency trade-off on Brightkite check-ins.

Paper (n = 1000, w = 2, ≈100 m real-world radius):

    (Lat, Long) precision      R     Average search time (s)
    5 decimal digits           100   6165.50
    4 decimal digits           10    98.65
    3 decimal digits           1     4.44

Rounding a coordinate by one digit divides the integer radius needed for
the same real-world distance by 10, and search cost scales with
m(R) ≈ O(R²) — a ~100× saving per digit.  We run the paper's exact
pipeline (Fig. 17): synthetic Brightkite-style check-ins, rounded to each
precision, encrypted under CRSE-II, queried at the matching radius; the
paper-scale column uses the average-case model (m/2 sub-token evaluations
per record), the measured column runs real searches on the fast backend
over a record sample.
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import TextTable
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle
from repro.core.provision import group_for_crse2
from repro.datasets.brightkite import (
    checkin_to_point,
    data_space_for_digits,
    generate_checkins,
    real_world_radius_m,
)

N_RECORDS = 1000
SAMPLE = 4  # records actually searched on the fast backend per row
ROWS = [  # (digits, R) pairs from the paper, all ≈100 m real radius
    (5, 100),
    (4, 10),
    (3, 1),
]
PAPER_SECONDS = {100: 6165.50, 10: 98.65, 1: 4.44}


def test_table3(write_result):
    rng = random.Random(0x7AB5)
    checkins = generate_checkins(N_RECORDS, rng)
    table = TextTable(
        "Table III — efficiency vs data accuracy (n = 1000, ≈100 m radius)",
        [
            "digits",
            "R",
            "m",
            "real radius (m)",
            "model total s",
            "paper total s",
            "measured ms/record",
        ],
    )
    model_totals = []
    for digits, radius in ROWS:
        space = data_space_for_digits(digits)
        scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
        key = scheme.gen_key(rng)
        m = num_concentric_circles(radius * radius)

        # Paper-scale: n records, average case m/2 evaluations each.
        per_record_s = PAPER_EC2_MODEL.time_s(
            crse2_search_record_ops(max(1, m // 2), w=2)
        )
        model_total = N_RECORDS * per_record_s
        model_totals.append(model_total)

        # Measured: run the real pipeline on a sample of records.
        points = [checkin_to_point(c, digits) for c in checkins[:SAMPLE]]
        center = points[0]
        token = scheme.gen_token(key, Circle.from_radius(center, radius), rng)
        records = [scheme.encrypt(key, p, rng) for p in points]
        started = time.perf_counter()
        results = [scheme.matches(token, r) for r in records]
        measured_ms = (time.perf_counter() - started) * 1000 / len(records)
        assert results[0] is True  # the center itself always matches

        table.add_row(
            digits,
            radius,
            m,
            round(real_world_radius_m(radius, digits), 1),
            round(model_total, 2),
            PAPER_SECONDS[radius],
            round(measured_ms, 3),
        )

    # The paper's headline: each dropped digit buys ~1-2 orders of magnitude.
    assert model_totals[0] > 30 * model_totals[1] > 30 * model_totals[2] / 30
    # Anchors within 10% of the paper's numbers.
    assert abs(model_totals[1] - 98.65) / 98.65 < 0.1
    assert abs(model_totals[2] - 4.44) / 4.44 < 0.1
    # R = 100 depends on m(10000); the paper's 6165.5 s implies m ≈ 2803,
    # our exact count lands within a few percent.
    assert abs(model_totals[0] - 6165.50) / 6165.50 < 0.1
    write_result("table3_accuracy_tradeoff", table.render())


def test_bench_search_record_digits4(benchmark):
    rng = random.Random(0x7AB6)
    space = data_space_for_digits(4)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    checkin = generate_checkins(1, rng)[0]
    point = checkin_to_point(checkin, 4)
    token = scheme.gen_token(key, Circle.from_radius(point, 10), rng)
    record = scheme.encrypt(key, point, rng)
    assert benchmark(scheme.matches, token, record) is True
