"""Ablation — naive vs optimized Split for CRSE-I.

The paper remarks (under Eq. 5) that α "can be reduced by further
simplifying polynomial P (e.g., the optimized value of α could be 10 …
instead of 16)".  This ablation quantifies the remark: vector length, object
size, and per-record search cost for both variants, and times the two
splits end-to-end at R = 1 and R = 2.
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import crse1_search_record_ops
from repro.analysis.report import TextTable
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.crse1 import CRSE1Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1
from repro.core.split import naive_alpha, optimized_alpha, split_product
from repro.crypto.serialize import ElementSizeModel

SPACE = DataSpace(2, 64)


def test_ablation_split_table(write_result):
    model = ElementSizeModel.paper()
    table = TextTable(
        "Ablation — naive vs optimized Split (CRSE-I, w = 2)",
        [
            "R",
            "m",
            "alpha naive",
            "alpha opt",
            "size naive KB",
            "size opt KB",
            "search naive s",
            "search opt s",
        ],
    )
    for radius in (1, 2, 3, 4):
        m = num_concentric_circles(radius * radius)
        a_naive = naive_alpha(2, m)
        a_opt = optimized_alpha(2, m)
        table.add_row(
            radius,
            m,
            a_naive,
            a_opt,
            round(model.ssw_object_bytes(a_naive) / 1000, 2),
            round(model.ssw_object_bytes(a_opt) / 1000, 2),
            round(PAPER_EC2_MODEL.time_s(crse1_search_record_ops(a_naive)), 3),
            round(PAPER_EC2_MODEL.time_s(crse1_search_record_ops(a_opt)), 3),
        )
        assert a_opt < a_naive or m == 1
    # The gap widens super-exponentially with m.
    assert naive_alpha(2, 7) / optimized_alpha(2, 7) > 100
    write_result("ablation_split_optimize", table.render())


def test_both_variants_agree_functionally():
    rng = random.Random(0xAB51)
    results = {}
    for optimize in (False, True):
        scheme = CRSE1Scheme(
            SPACE,
            group_for_crse1(SPACE, 1, "fast", rng),
            r_squared=1,
            optimize_split=optimize,
        )
        key = scheme.gen_key(rng)
        token = scheme.gen_token(key, Circle.from_radius((10, 10), 1), rng)
        results[optimize] = [
            scheme.matches(token, scheme.encrypt(key, p, rng))
            for p in ((10, 10), (10, 11), (11, 11), (12, 10))
        ]
    assert results[False] == results[True] == [True, True, False, False]


def test_optimized_split_is_measurably_cheaper():
    rng = random.Random(0xAB52)
    timings = {}
    for optimize in (False, True):
        scheme = CRSE1Scheme(
            SPACE,
            group_for_crse1(SPACE, 4, "fast", rng),
            r_squared=4,
            optimize_split=optimize,
        )
        key = scheme.gen_key(rng)
        started = time.perf_counter()
        for i in range(3):
            scheme.encrypt(key, (20 + i, 20), rng)
        timings[optimize] = time.perf_counter() - started
    # α: 256 naive vs 35 optimized → clear speedup.
    assert timings[True] < timings[False]


def test_bench_split_product_construction(benchmark):
    form = benchmark(split_product, 2, 4, True)
    assert form.alpha == optimized_alpha(2, 4)
