"""Ablation — three ways to search a rectangle over encrypted points.

The Related-Work primitive, implemented three ways in this library:

1. **OPE + MBR** (`repro.baselines.rect_range`) — fast integer comparisons,
   but leaks coordinate order and, used for circles, admits false positives;
2. **region token** (`repro.core.region`) — exact, CRSE-II machinery, one
   sub-token per lattice point: cost ∝ box *area*;
3. **interval conjunction** (`repro.core.interval`) — exact, one SSW
   instance per dimension: cost ∝ box *width* per dimension, but leaks
   per-dimension Booleans and fixes the max width at keygen.

The table shows the cost/leakage triangle; none dominates — which is why
"rectangular range search" alone (the Related-Work state of the art) does
not subsume the paper's circular primitive.
"""

from __future__ import annotations

import random
import time

from repro.analysis.report import TextTable
from repro.baselines.rect_range import OPERectangularScheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import DataSpace
from repro.core.interval import (
    RectangleScheme,
    interval_inner_product_bound,
)
from repro.core.provision import group_for_crse2, provision_group
from repro.core.region import Rectangle, gen_region_token

SPACE = DataSpace(2, 64)
BOX = Rectangle((20, 20), (24, 23))  # 5 × 4 = 20 lattice points
PROBES = [(22, 21), (22, 24), (25, 21), (20, 20), (50, 50)]


def test_ablation_rectangle_approaches(write_result):
    rng = random.Random(0x4EC7)
    expected = [BOX.contains(p) for p in PROBES]
    table = TextTable(
        f"Ablation — rectangle search approaches (box {BOX.mins}..{BOX.maxs})",
        [
            "approach",
            "sub-objects per token",
            "exact?",
            "extra leakage",
            "query time ms (5 probes)",
        ],
    )

    # 1. OPE + MBR.
    ope = OPERectangularScheme(SPACE, key=3)
    records = ope.encrypt_dataset(PROBES)
    started = time.perf_counter()
    token = ope.gen_box_token(BOX.mins, BOX.maxs)
    hits = set(ope.server_search(token, records))
    ope_ms = (time.perf_counter() - started) * 1000
    assert [i in hits for i in range(len(PROBES))] == expected
    table.add_row("OPE + MBR", 2 * SPACE.w, "yes (for boxes)", "full coordinate order", round(ope_ms, 3))

    # 2. Region token (CRSE-II machinery).
    crse = CRSE2Scheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    crse_key = crse.gen_key(rng)
    region_token = gen_region_token(
        crse, crse_key, BOX.lattice_points(), rng
    )
    started = time.perf_counter()
    got = [
        crse.matches(region_token, crse.encrypt(crse_key, p, rng))
        for p in PROBES
    ]
    region_ms = (time.perf_counter() - started) * 1000
    assert got == expected
    table.add_row(
        "region token",
        region_token.num_sub_tokens,
        "yes",
        "sub-token count = area",
        round(region_ms, 3),
    )

    # 3. Interval conjunction.
    width = max(
        BOX.maxs[d] - BOX.mins[d] + 1 for d in range(SPACE.w)
    )
    group = provision_group(
        interval_inner_product_bound(SPACE.t, width), "fast", rng
    )
    rect = RectangleScheme(SPACE, width, group)
    rect_keys = rect.gen_key(rng)
    tokens = rect.gen_token(rect_keys, BOX.mins, BOX.maxs, rng)
    started = time.perf_counter()
    got = [
        rect.matches(tokens, rect.encrypt(rect_keys, p, rng)) for p in PROBES
    ]
    interval_ms = (time.perf_counter() - started) * 1000
    assert got == expected
    table.add_row(
        "interval conjunction",
        SPACE.w,
        "yes",
        "per-dimension Booleans",
        round(interval_ms, 3),
    )

    # Token compactness ordering: conjunction (w objects) beats region
    # (area objects) as boxes grow.
    assert SPACE.w < region_token.num_sub_tokens
    write_result("ablation_rectangle_approaches", table.render())


def test_bench_interval_conjunction_query(benchmark):
    rng = random.Random(0x4EC8)
    width = 5
    group = provision_group(
        interval_inner_product_bound(SPACE.t, width), "fast", rng
    )
    rect = RectangleScheme(SPACE, width, group)
    keys = rect.gen_key(rng)
    tokens = rect.gen_token(keys, (20, 20), (24, 23), rng)
    cts = rect.encrypt(keys, (22, 21), rng)
    assert benchmark(rect.matches, tokens, cts) is True
