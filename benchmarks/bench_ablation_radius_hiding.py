"""Ablation — the cost of radius hiding (Sec. VI-D, "Radius Privacy").

Padding every CRSE-II token to K sub-tokens hides the radius pattern but
charges every *non-matching* record K (instead of m) sub-token
evaluations, and grows the token linearly in K.  This ablation sweeps K
for an R = 3 query and reports token size, token generation time, and
worst-case search cost.
"""

from __future__ import annotations

import time

from repro.analysis.opcount import crse2_gen_token_ops, crse2_search_record_ops
from repro.analysis.report import TextTable
from repro.cloud.codec import encode_token
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.geometry import Circle

RADIUS = 3
CENTER = (100, 100)
PAD_LEVELS = (None, 10, 20, 40)


def test_ablation_radius_hiding(crse2_env, write_result):
    scheme, key, rng = crse2_env
    m = num_concentric_circles(RADIUS * RADIUS)
    circle = Circle.from_radius(CENTER, RADIUS)
    miss_record = scheme.encrypt(key, (400, 400), rng)
    hit_record = scheme.encrypt(key, (100, 102), rng)

    table = TextTable(
        f"Ablation — radius hiding via dummy sub-tokens (R = {RADIUS}, m = {m})",
        [
            "K",
            "sub-tokens",
            "token KB (measured)",
            "token gen s (model)",
            "miss search ms (model)",
            "miss evals (measured)",
        ],
    )
    miss_evals = []
    for pad in PAD_LEVELS:
        token = scheme.gen_token(key, circle, rng, hide_radius_to=pad)
        k = token.num_sub_tokens
        matched_miss, evals_miss = scheme.matches_with_stats(token, miss_record)
        matched_hit, _ = scheme.matches_with_stats(token, hit_record)
        assert not matched_miss and matched_hit
        miss_evals.append(evals_miss)
        table.add_row(
            pad if pad is not None else "off",
            k,
            round(len(encode_token(scheme, token)) / 1000, 2),
            round(PAPER_EC2_MODEL.time_s(crse2_gen_token_ops(k, 2)), 3),
            round(
                PAPER_EC2_MODEL.time_ms(crse2_search_record_ops(k, 2)), 1
            ),
            evals_miss,
        )
    # Non-matching records pay exactly K evaluations — the hiding tax.
    assert miss_evals == [m, 10, 20, 40]
    write_result("ablation_radius_hiding", table.render())


def test_hidden_tokens_indistinguishable_by_count(crse2_env):
    """With K fixed, tokens for different radii expose the same count —
    the observable the radius pattern leaks through."""
    scheme, key, rng = crse2_env
    counts = set()
    for radius in (1, 2, 3, 4):
        token = scheme.gen_token(
            key, Circle.from_radius(CENTER, radius), rng, hide_radius_to=25
        )
        counts.add(token.num_sub_tokens)
    assert counts == {25}


def test_bench_padded_token_generation(crse2_env, benchmark):
    scheme, key, rng = crse2_env
    circle = Circle.from_radius(CENTER, RADIUS)
    token = benchmark(scheme.gen_token, key, circle, rng, 20)
    assert token.num_sub_tokens == 20
