"""Extension — composite radial queries: annuli and unions of circles.

Cost profile of the covering technique beyond single disks: an annulus
query costs the *difference* of the two disks' coverings, and a union
costs the (deduplicated) sum — all over unmodified CRSE-II keys and
ciphertexts.
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import TextTable
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.composite import (
    annulus_radii_squared,
    gen_annulus_token,
    gen_union_token,
)
from repro.core.concircles import num_concentric_circles
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2

SPACE = DataSpace(2, 128)
CENTER = (64, 64)


def test_extension_annulus_table(write_result):
    rng = random.Random(0xA44)
    scheme = CRSE2Scheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    key = scheme.gen_key(rng)
    table = TextTable(
        "Extension — annulus queries (inner, outer] vs full disks",
        [
            "inner R",
            "outer R",
            "annulus m",
            "disk m (outer)",
            "saving",
            "token gen s (measured)",
            "worst search ms (model)",
        ],
    )
    for inner, outer in ((2, 5), (5, 10), (10, 15)):
        radii = annulus_radii_squared(inner * inner, outer * outer)
        disk_m = num_concentric_circles(outer * outer)
        started = time.perf_counter()
        token = gen_annulus_token(
            scheme, key, CENTER, inner * inner, outer * outer, rng
        )
        gen_s = time.perf_counter() - started
        assert token.num_sub_tokens == len(radii)
        table.add_row(
            inner,
            outer,
            len(radii),
            disk_m,
            f"{disk_m - len(radii)} circles",
            round(gen_s, 4),
            round(
                PAPER_EC2_MODEL.time_ms(
                    crse2_search_record_ops(len(radii), 2)
                ),
                1,
            ),
        )
        # The annulus always needs fewer circles than its outer disk.
        assert len(radii) < disk_m
    write_result("extension_annulus", table.render())


def test_extension_union_dedup(write_result):
    rng = random.Random(0xA45)
    scheme = CRSE2Scheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    key = scheme.gen_key(rng)
    m_single = num_concentric_circles(9)
    table = TextTable(
        "Extension — union-of-circles token sizes (R = 3 each)",
        ["centers", "naive sum", "actual sub-tokens", "deduplicated"],
    )
    for centers in (
        [(40, 40)],
        [(40, 40), (80, 80)],
        [(40, 40), (80, 80), (40, 40)],  # duplicate center
    ):
        circles = [Circle.from_radius(c, 3) for c in centers]
        token = gen_union_token(scheme, key, circles, rng)
        naive = m_single * len(circles)
        table.add_row(
            len(centers),
            naive,
            token.num_sub_tokens,
            naive - token.num_sub_tokens,
        )
    write_result("extension_union", table.render())


def test_bench_annulus_token(benchmark):
    rng = random.Random(0xA46)
    scheme = CRSE2Scheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    key = scheme.gen_key(rng)
    token = benchmark(
        gen_annulus_token, scheme, key, CENTER, 4, 25, rng
    )
    assert token.num_sub_tokens == len(annulus_radii_squared(4, 25))
