"""Fig. 14 — CRSE-II search token size vs radius R.

Paper: grows with R² (one 640 B sub-token per concentric circle); 28.16 KB
at R = 10.  Reproduced exactly by the size model and measured on the wire.
"""

from __future__ import annotations

from repro.analysis.report import Series, format_series_block, series_to_csv
from repro.cloud.codec import encode_token
from repro.core.concircles import num_concentric_circles
from repro.core.geometry import Circle
from repro.crypto.serialize import ElementSizeModel

RADII = (10, 20, 30, 40, 50)
CENTER = (256, 256)


def test_fig14_series(crse2_env, write_result, write_csv):
    scheme, key, rng = crse2_env
    paper_model = ElementSizeModel.paper()
    measured = Series("measured KB (fast backend)")
    paper = Series("paper-scale KB (512-bit field)")
    for radius in RADII:
        token = scheme.gen_token(key, Circle.from_radius(CENTER, radius), rng)
        m = num_concentric_circles(radius * radius)
        wire_kb = len(encode_token(scheme, token)) / 1000
        measured.add(radius, round(wire_kb, 2))
        paper.add(radius, round(paper_model.crse2_token_bytes(m) / 1000, 2))
    # Anchor: the paper's 28.16 KB at R = 10, exactly.
    assert paper.y[0] == 28.16
    # Growth ∝ m ∝ R²: R 10 → 50 multiplies m by ≈15.5.
    assert 10 < paper.y[-1] / paper.y[0] < 25
    assert all(a < b for a, b in zip(measured.y, measured.y[1:]))
    write_result(
        "fig14_token_size",
        format_series_block(
            "Fig. 14 — CRSE-II search token size vs R",
            [measured, paper],
        ),
    )
    write_csv("fig14_token_size", series_to_csv([measured, paper]))


def test_bench_encode_token_r10(crse2_env, benchmark):
    scheme, key, rng = crse2_env
    token = scheme.gen_token(key, Circle.from_radius(CENTER, 10), rng)
    data = benchmark(encode_token, scheme, token)
    assert len(data) > 0
