"""Fig. 16 — CRSE-II total search time vs dataset size n, for R ∈ {1, 5, 10}.

Paper: linear in n for every radius, with the slope set by m(R): at
n = 1000, 4.44 s for R = 1 vs 98.65 s for R = 10.  We run honest searches
(mixed hit/miss datasets — misses pay all m sub-tokens) on the fast
backend across the sweep, and print the paper-scale average-case line.
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import Series, format_series_block, series_to_csv
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.geometry import Circle
from repro.datasets.synthetic import uniform_points

SIZES = (500, 1000, 2000)
RADII = (1, 5, 10)
CENTER = (256, 256)


def test_fig16_series(crse2_env, write_result, write_csv):
    scheme, key, _ = crse2_env
    rng = random.Random(17)
    max_n = max(SIZES)
    points = uniform_points(scheme.space, max_n, rng)
    records = [scheme.encrypt(key, p, rng) for p in points]

    measured_series = []
    paper_series = []
    for radius in RADII:
        token = scheme.gen_token(key, Circle.from_radius(CENTER, radius), rng)
        m = num_concentric_circles(radius * radius)
        measured = Series(f"measured s R={radius}")
        paper = Series(f"paper-scale s R={radius}")
        for n in SIZES:
            started = time.perf_counter()
            for record in records[:n]:
                scheme.matches(token, record)
            measured.add(n, round(time.perf_counter() - started, 3))
            # Paper's average case: m/2 sub-token evaluations per record.
            per_record = PAPER_EC2_MODEL.time_s(
                crse2_search_record_ops(max(1, m // 2), w=2)
            )
            paper.add(n, round(n * per_record, 2))
        measured_series.append(measured)
        paper_series.append(paper)

    # Linear in n for each radius.
    for series in measured_series:
        assert 2.4 <= series.y[-1] / series.y[0] <= 6.5  # ideal 4x
    # Slope ordering: larger radius costs more at every n.
    for i in range(len(SIZES)):
        assert (
            measured_series[0].y[i]
            < measured_series[1].y[i]
            < measured_series[2].y[i]
        )
    # Paper anchors at n = 1000: 4.44 s (R=1) and 98.65 s (R=10).
    assert abs(paper_series[0].y[1] - 4.44) / 4.44 < 0.15
    assert abs(paper_series[2].y[1] - 98.65) / 98.65 < 0.15
    write_result(
        "fig16_total_search",
        format_series_block(
            "Fig. 16 — CRSE-II total search time vs n (x = n)",
            measured_series + paper_series,
        ),
    )
    write_csv("fig16_total_search", series_to_csv(measured_series + paper_series))


def test_bench_search_100_records_r5(crse2_env, benchmark):
    scheme, key, _ = crse2_env
    rng = random.Random(18)
    records = [
        scheme.encrypt(key, p, rng)
        for p in uniform_points(scheme.space, 100, rng)
    ]
    token = scheme.gen_token(key, Circle.from_radius(CENTER, 5), rng)

    def scan():
        return sum(scheme.matches(token, r) for r in records)

    benchmark(scan)
