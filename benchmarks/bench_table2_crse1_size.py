"""Table II — CRSE-I ciphertext and search-token size (KB) for R ∈ {1,2,3}.

Paper (decimal KB, 64 B per element at the 512-bit field):

    R   m   Ciphertext   Token
    1   2   2.18         2.18
    2   4   32.90        32.90
    3   7   2097.28      2097.28

These are exactly ``(2α + 2) × 64 B`` with the *naive* split
α = (w+2)^m — reproduced here to the decimal, which is also how we
identified which split variant the paper's prototype used.  The optimized
split (α = C(m+3,3)) columns show the reduction the paper's "optimized α"
remark offers.
"""

from __future__ import annotations

import random

from repro.analysis.report import TextTable
from repro.cloud.codec import encode_ciphertext, encode_token
from repro.core.concircles import num_concentric_circles
from repro.core.crse1 import CRSE1Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1
from repro.core.split import naive_alpha, optimized_alpha
from repro.crypto.serialize import ElementSizeModel

PAPER_KB = {1: 2.18, 2: 32.90, 3: 2097.28}
SPACE = DataSpace(2, 64)


def test_table2(write_result):
    model = ElementSizeModel.paper()
    table = TextTable(
        "Table II — CRSE-I ciphertext & token size (KB), w = 2",
        ["R", "m", "naive KB (paper)", "paper reports", "optimized KB"],
    )
    for radius in (1, 2, 3):
        m = num_concentric_circles(radius * radius)
        naive_kb = model.ssw_object_bytes(naive_alpha(2, m)) / 1000
        optimized_kb = model.ssw_object_bytes(optimized_alpha(2, m)) / 1000
        # Exact reproduction of the paper's numbers (decimal KB).
        assert round(naive_kb, 2) == PAPER_KB[radius], radius
        table.add_row(radius, m, round(naive_kb, 2), PAPER_KB[radius], round(optimized_kb, 3))
    write_result("table2_crse1_size", table.render())


def test_measured_sizes_match_size_model():
    """Our wire encoding obeys the same (2α+2)·element_bytes law."""
    rng = random.Random(0x7AB3)
    scheme = CRSE1Scheme(
        SPACE, group_for_crse1(SPACE, 1, "fast", rng), r_squared=1
    )
    key = scheme.gen_key(rng)
    model = ElementSizeModel.for_group(scheme.group)
    ct = encode_ciphertext(scheme, scheme.encrypt(key, (5, 5), rng))
    tok = encode_token(
        scheme, scheme.gen_token(key, Circle.from_radius((5, 5), 1), rng)
    )
    expected = model.ssw_object_bytes(scheme.alpha) + 2  # + count prefix
    assert len(ct) == expected
    assert len(tok) == expected  # ciphertext and token sizes are equal


def test_bench_crse1_encrypt_r1(benchmark):
    rng = random.Random(0x7AB4)
    scheme = CRSE1Scheme(
        SPACE, group_for_crse1(SPACE, 1, "fast", rng), r_squared=1
    )
    key = scheme.gen_key(rng)
    benchmark(scheme.encrypt, key, (10, 20), rng)
