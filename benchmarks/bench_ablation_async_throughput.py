"""Ablation — sustained query throughput: blocking vs. async client.

The service ablations measure how fast the server side can answer *one*
query; this one measures how many queries per second the wire can
sustain.  The baseline is the blocking
:class:`~repro.service.client.ServiceClient` issuing queries
back-to-back on one connection — every request pays a full round trip of
framing, dispatch and engine latency before the next may start.  Against
it run two shapes of the asyncio
:class:`~repro.service.aio.AsyncServiceClient`:

* **multiplexed** — a closed loop of 16 in-flight singleton requests
  over one connection, overlapping client framing with server scanning;
* **batched** — the same closed loop carrying ``search_batch`` vectors
  of 32 tokens, amortizing envelope framing and the per-task process
  pool dispatch across the batch.

The dataset is deliberately tiny (4 records, 1 worker) so per-request
overhead — what the async client eliminates — dominates the scan itself.
The >= 3x assertion needs client and server work to actually overlap, so
it is gated on the host exposing >= 2 usable CPUs; single-CPU hosts
still report the measured ratio (expect ~2-2.5x from batching alone).

A second scenario replays the closed loop through a 2-shard
:class:`~repro.service.coordinator.Coordinator` and cross-checks every
result against the blocking client: the async path must change
wall-clock, never results.
"""

from __future__ import annotations

import asyncio
import os
import random
import time

from repro.analysis.report import TextTable
from repro.cloud.codec import encode_ciphertext
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import generate_query_stream
from repro.loadgen import LatencyRecorder, run_closed_loop, tokens_for_queries
from repro.service import (
    AsyncServiceClient,
    Coordinator,
    CoordinatorConfig,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

N_RECORDS = 4
N_QUERIES = 64
MAX_RADIUS = 4
CONCURRENCY = 16
BATCH = 32
N_SHARDS = 2


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _blocking_baseline(port, payloads):
    """Sequential queries on one persistent connection."""
    latency = LatencyRecorder()
    expected = []
    with ServiceClient("127.0.0.1", port) as client:
        client.search(payloads[0])  # prime caches before timing
        started = time.perf_counter()
        for payload in payloads:
            began = time.perf_counter()
            response, _ = client.search(payload)
            latency.record(time.perf_counter() - began)
            expected.append(tuple(sorted(response.identifiers)))
        elapsed = time.perf_counter() - started
        assert client.connections_opened == 1
    return len(payloads) / elapsed, latency, expected


def _async_closed_loop(port, payloads, batch):
    async def scenario():
        async with AsyncServiceClient(
            "127.0.0.1", port, max_in_flight=CONCURRENCY
        ) as client:
            await client.search(payloads[0])  # prime before timing
            return await run_closed_loop(
                client,
                payloads,
                concurrency=CONCURRENCY,
                batch=batch,
                collect_results=True,
            )

    return asyncio.run(scenario())


def test_ablation_async_throughput(crse2_env, write_result, write_json):
    scheme, key, rng = crse2_env
    points = uniform_points(scheme.space, N_RECORDS, rng)
    records = tuple(
        UploadRecord(
            identifier=i,
            payload=encode_ciphertext(scheme, scheme.encrypt(key, p, rng)),
        )
        for i, p in enumerate(points)
    )
    queries = generate_query_stream(
        scheme.space, N_QUERIES, random.Random(2), max_radius=MAX_RADIUS
    )
    payloads = tokens_for_queries(scheme, key, queries, random.Random(3))

    cpus = _usable_cpus()
    table = TextTable(
        f"Ablation — async client throughput, n = {N_RECORDS}, "
        f"{N_QUERIES} queries, R <= {MAX_RADIUS}, host CPUs = {cpus}",
        ["client", "qps", "vs blocking", "p50 ms", "p95 ms", "p99 ms"],
    )

    server = ServiceServer(scheme, ServiceConfig(workers=1, max_pending=256))
    with ServerThread(server) as thread:
        server.engine.warm_up()
        with ServiceClient("127.0.0.1", thread.port) as setup:
            setup.upload(UploadDataset(records=records))

        blocking_qps, blocking_latency, expected = _blocking_baseline(
            thread.port, payloads
        )
        rows = {"blocking": (blocking_qps, blocking_latency)}
        for label, batch in (("async x16", 1), (f"batched x{BATCH}", BATCH)):
            result = _async_closed_loop(thread.port, payloads, batch)
            assert result.ok == len(payloads)
            assert result.busy == result.deadline == result.failed == 0
            assert result.results == expected
            rows[label] = (result.qps, result.latency)

    ratios = {}
    for label, (qps, latency) in rows.items():
        ratios[label] = qps / blocking_qps
        table.add_row(
            label,
            f"{qps:.1f}",
            f"{ratios[label]:.2f}x",
            round(latency.percentile_ms(0.50), 2),
            round(latency.percentile_ms(0.95), 2),
            round(latency.percentile_ms(0.99), 2),
        )

    best = max(ratios.values())
    if cpus >= 2:
        assert best >= 3.0, (
            f"expected the async client to sustain >= 3x the blocking "
            f"client's qps on a {cpus}-CPU host, got {best:.2f}x"
        )
        note = f"throughput gate: PASSED (>= 3x blocking on {cpus} CPUs)"
    else:
        note = (
            f"throughput gate: SKIPPED — host exposes only {cpus} usable "
            f"CPU(s), so client framing and engine scanning serialize; "
            f"measured best ratio {best:.2f}x"
        )

    # The same closed loop through a 2-shard coordinator must finish
    # with zero failures and blocking-identical results.
    backends = [
        ServerThread(ServiceServer(scheme, ServiceConfig(workers=1)))
        for _ in range(N_SHARDS)
    ]
    ports = [backend.start() for backend in backends]
    coordinator = ServerThread(
        Coordinator(
            [f"127.0.0.1:{port}" for port in ports], CoordinatorConfig()
        )
    )
    try:
        coord_port = coordinator.start()
        with ServiceClient("127.0.0.1", coord_port) as setup:
            setup.upload(UploadDataset(records=records))
        for backend in backends:
            backend.server.engine.warm_up()
        coord_result = _async_closed_loop(coord_port, payloads, 1)
        assert coord_result.ok == len(payloads)
        assert coord_result.busy == coord_result.failed == 0
        assert coord_result.results == expected
        coord_line = (
            f"coordinator ({N_SHARDS} shards): {len(payloads)} queries, "
            f"0 failed, results identical to blocking client, "
            f"{coord_result.qps:.1f} qps"
        )
    finally:
        coordinator.stop()
        for backend in backends:
            backend.stop()

    write_result(
        "ablation_async_throughput",
        table.render() + "\n" + note + "\n" + coord_line,
    )
    write_json(
        "ablation_async_throughput",
        {
            "host_cpus": cpus,
            "n_records": N_RECORDS,
            "n_queries": N_QUERIES,
            "concurrency": CONCURRENCY,
            "batch": BATCH,
            "clients": {
                label: {
                    "qps": round(qps, 1),
                    "vs_blocking": round(qps / blocking_qps, 3),
                    "latency_ms": latency.to_dict(),
                }
                for label, (qps, latency) in rows.items()
            },
            "coordinator": {
                "shards": N_SHARDS,
                "qps": round(coord_result.qps, 1),
                "failed": coord_result.failed,
                "results_match_blocking": True,
            },
        },
    )
