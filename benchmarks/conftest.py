"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure from the paper.  Two kinds
of numbers are produced:

* **measured** — wall-clock of our pure-Python implementation (the
  pytest-benchmark timings plus explicit sweeps on the fast backend);
* **paper-scale** — operation counts translated through the EC2-calibrated
  cost model (:data:`repro.cloud.costmodel.PAPER_EC2_MODEL`), directly
  comparable to the numbers printed in the paper.

Each benchmark writes its paper-style table into
``benchmarks/results/<name>.txt`` so the full evaluation can be diffed
against the paper after a run (EXPERIMENTS.md summarizes the comparison).
"""

from __future__ import annotations

import json
import pathlib
import random

import pytest

from repro.core import CRSE2Scheme, DataSpace, group_for_crse2

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    """Write one regenerated table/figure and echo it to stdout."""

    def writer(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return writer


@pytest.fixture(scope="session")
def write_csv(results_dir):
    """Write a figure's raw data as CSV for external plotting."""

    def writer(name: str, csv_text: str) -> None:
        (results_dir / f"{name}.csv").write_text(csv_text + "\n")

    return writer


@pytest.fixture(scope="session")
def write_json(results_dir):
    """Write a benchmark's structured results as pretty-printed JSON."""

    def writer(name: str, payload: dict) -> None:
        (results_dir / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    return writer


@pytest.fixture(scope="session")
def paper_space() -> DataSpace:
    """A data space comfortably holding the paper's R <= 50 sweeps."""
    return DataSpace(w=2, t=512)


@pytest.fixture(scope="session")
def crse2_env(paper_space):
    """CRSE-II on the fast backend with a generated key (shared)."""
    rng = random.Random(0xBE7C)
    scheme = CRSE2Scheme(
        paper_space, group_for_crse2(paper_space, "fast", rng)
    )
    key = scheme.gen_key(rng)
    return scheme, key, rng
