"""Ablation — distributed search speedup versus shard count.

The paper closes by noting that search "can be further improved by using
parallel computing with multiple instances of Amazon EC2".  The
``bench_ablation_service_throughput`` ablation measures that claim with
worker *processes* inside one server; this one measures it across
*servers*: the dataset is partitioned over N in-process
:class:`~repro.service.server.ServiceServer` backends (one single-worker
engine each) and queried through the
:class:`~repro.service.coordinator.Coordinator`, so each timed query pays
the full distributed path — coordinator fan-out over real sockets, N
concurrent shard scans, merge.

The baseline is the same topology at one shard, which isolates the
coordinator's routing overhead from the fan-out win.  As with the
service-throughput ablation, the >= 1.5x assertion at 2 shards only holds
where cores do, so it is gated on the host exposing >= 4 usable CPUs; on
smaller hosts the table still reports the measured numbers.
"""

from __future__ import annotations

import os
import threading
import time

from repro.analysis.report import TextTable
from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.geometry import Circle, point_in_circle
from repro.datasets.synthetic import uniform_points
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    ReplicatedCluster,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

N_RECORDS = 200
RADIUS = 3
SHARD_COUNTS = (1, 2, 4)
QUERIES_PER_CONFIG = 5


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_cluster(scheme, records, token, shard_count):
    """Time queries through a coordinator over *shard_count* backends."""
    backends = [
        ServerThread(
            ServiceServer(scheme, config=ServiceConfig(workers=1))
        )
        for _ in range(shard_count)
    ]
    ports = [backend.start() for backend in backends]
    coordinator = ServerThread(
        Coordinator(
            [f"127.0.0.1:{port}" for port in ports], CoordinatorConfig()
        )
    )
    try:
        coord_port = coordinator.start()
        client = ServiceClient("127.0.0.1", coord_port)
        client.upload(
            UploadDataset(
                records=tuple(
                    UploadRecord(identifier=i, payload=payload)
                    for i, payload in records
                )
            )
        )
        for engine_owner in backends:  # prime every shard's workers
            engine_owner.server.engine.warm_up()
        response, _ = client.search(token)  # first query primes caches
        started = time.perf_counter()
        for _ in range(QUERIES_PER_CONFIG):
            response, stats = client.search(token)
        wall_ms = (
            (time.perf_counter() - started) * 1000.0 / QUERIES_PER_CONFIG
        )
        return tuple(response.identifiers), stats, wall_ms
    finally:
        coordinator.stop()
        for backend in backends:
            backend.stop()


def _run_kill_under_load(scheme, records, token, expected):
    """Kill one replica of an R=2 cluster while queries are in flight.

    Returns ``(queries_before, queries_after, failures, worst_ms)`` where
    *failures* collects every query that errored or returned the wrong
    identifiers — replication's whole pitch is that this list is empty.
    """
    cluster = ReplicatedCluster(
        lambda: ServiceServer(scheme, config=ServiceConfig(workers=1)),
        partitions=2,
        replication=2,
    )
    cluster.start()
    try:
        upload_client = ServiceClient(
            "127.0.0.1", cluster.coordinator_port
        )
        upload_client.upload(
            UploadDataset(
                records=tuple(
                    UploadRecord(identifier=i, payload=payload)
                    for i, payload in records
                )
            )
        )
        for addr in cluster.addrs:
            cluster.backend(addr).engine.warm_up()

        failures: list[str] = []
        latencies: list[float] = []
        record_lock = threading.Lock()
        stop = threading.Event()

        def worker() -> None:
            client = ServiceClient("127.0.0.1", cluster.coordinator_port)
            while not stop.is_set():
                started = time.perf_counter()
                try:
                    response, _ = client.search(token, deadline_ms=20_000)
                except Exception as exc:  # noqa: BLE001 - tallied below
                    with record_lock:
                        failures.append(repr(exc))
                    continue
                elapsed = (time.perf_counter() - started) * 1000.0
                with record_lock:
                    latencies.append(elapsed)
                    if sorted(response.identifiers) != expected:
                        failures.append(
                            f"wrong identifiers: {response.identifiers}"
                        )

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()

        def wait_for(count: int) -> None:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                with record_lock:
                    if len(latencies) + len(failures) >= count:
                        return
                time.sleep(0.01)
            raise AssertionError("cluster stopped answering under load")

        wait_for(8)  # load is established, queries are in flight
        with record_lock:
            before = len(latencies)
        cluster.kill(cluster.addrs[0])
        wait_for(before + 16)  # the survivors absorbed the load
        stop.set()
        for thread in threads:
            thread.join()
        return before, len(latencies) - before, failures, max(latencies)
    finally:
        cluster.stop()


def test_ablation_distributed_search(crse2_env, write_result):
    scheme, key, rng = crse2_env
    points = uniform_points(scheme.space, N_RECORDS, rng)
    records = [
        (i, encode_ciphertext(scheme, scheme.encrypt(key, point, rng)))
        for i, point in enumerate(points)
    ]
    circle = Circle.from_radius((256, 256), RADIUS)
    token = encode_token(scheme, scheme.gen_token(key, circle, rng))
    expected = sorted(
        i for i, point in enumerate(points) if point_in_circle(point, circle)
    )

    cpus = _usable_cpus()
    table = TextTable(
        f"Ablation — distributed search, n = {N_RECORDS}, R = {RADIUS}, "
        f"host CPUs = {cpus}",
        ["shards", "ms/query", "qps", "speedup", "records/shard"],
    )
    baseline_ms = None
    speedups = {}
    for shard_count in SHARD_COUNTS:
        identifiers, stats, wall_ms = _run_cluster(
            scheme, records, token, shard_count
        )
        assert list(identifiers) == expected
        assert stats["records_scanned"] == N_RECORDS
        assert len(stats["partitions"]) == shard_count
        if baseline_ms is None:
            baseline_ms = wall_ms
        speedups[shard_count] = baseline_ms / wall_ms
        table.add_row(
            shard_count,
            round(wall_ms, 2),
            round(1000.0 / wall_ms, 1),
            round(speedups[shard_count], 2),
            N_RECORDS // shard_count,
        )

    if cpus >= 4:
        assert speedups[2] >= 1.5, (
            f"expected >= 1.5x at 2 shards on a {cpus}-CPU host, "
            f"got {speedups[2]:.2f}x"
        )
        note = f"speedup gate: PASSED (>= 1.5x at 2 shards on {cpus} CPUs)"
    else:
        note = (
            f"speedup gate: SKIPPED — host exposes only {cpus} usable "
            f"CPU(s); shard parallelism cannot beat one shard here"
        )
    before, after, failures, worst_ms = _run_kill_under_load(
        scheme, records, token, expected
    )
    assert failures == [], failures
    assert after >= 16
    failover_note = (
        f"failover gate: PASSED — SIGKILLed one replica of a 2x2 cluster "
        f"under load; {before} queries before the kill, {after} after, "
        f"0 failed, results identical (worst query {worst_ms:.1f} ms)"
    )
    write_result(
        "ablation_distributed_search",
        table.render() + "\n" + note + "\n" + failover_note,
    )
