"""Extension — simplex (triangle) range search, the paper's future work.

Cost profile of the lattice-point-covering construction: token size and
search cost scale with the number of lattice points in the simplex (its
area takes the role R² plays for circles).  Compares triangles of growing
size against circles of comparable coverage.
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import TextTable
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.geometry import DataSpace
from repro.core.provision import group_for_crse2
from repro.core.simplex import Simplex, SimplexRangeScheme

SPACE = DataSpace(2, 128)


def _right_triangle(leg: int) -> Simplex:
    return Simplex(((40, 40), (40 + leg, 40), (40, 40 + leg)))


def test_extension_simplex_table(write_result):
    rng = random.Random(0x731A)
    scheme = SimplexRangeScheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    key = scheme.gen_key(rng)
    table = TextTable(
        "Extension — simplex range search (right triangles, leg sweep)",
        [
            "leg",
            "lattice points",
            "circle-equivalent m (same count)",
            "token gen s (measured)",
            "worst search ms (model)",
        ],
    )
    counts = []
    for leg in (2, 4, 8, 12):
        triangle = _right_triangle(leg)
        points = triangle.lattice_points()
        counts.append(len(points))
        started = time.perf_counter()
        token = scheme.gen_simplex_token(key, triangle, rng)
        gen_s = time.perf_counter() - started
        assert token.num_sub_tokens == len(points)
        # The comparable circle: the radius whose m matches the point count.
        radius = 1
        while num_concentric_circles(radius * radius) < len(points):
            radius += 1
        table.add_row(
            leg,
            len(points),
            f"m(R={radius}) = {num_concentric_circles(radius * radius)}",
            round(gen_s, 4),
            round(
                PAPER_EC2_MODEL.time_ms(
                    crse2_search_record_ops(len(points), 2)
                ),
                1,
            ),
        )
    # Quadratic growth in the leg (area): leg 12 vs leg 2 is ≈ (13·14)/(3·4).
    assert counts[-1] / counts[0] > 10
    # Triangular numbers: (leg+1)(leg+2)/2 lattice points.
    assert counts == [(l + 1) * (l + 2) // 2 for l in (2, 4, 8, 12)]
    write_result("extension_simplex", table.render())


def test_simplex_and_circle_share_dataset(write_result):
    rng = random.Random(0x731B)
    scheme = SimplexRangeScheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    key = scheme.gen_key(rng)
    from repro.core.geometry import Circle

    records = {
        p: scheme.encrypt(key, p, rng)
        for p in ((41, 41), (50, 50), (42, 40), (70, 70))
    }
    tri_token = scheme.gen_simplex_token(key, _right_triangle(4), rng)
    circle_token = scheme.gen_token(key, Circle.from_radius((41, 41), 2), rng)
    tri_hits = {p for p, ct in records.items() if scheme.matches(tri_token, ct)}
    circle_hits = {
        p for p, ct in records.items() if scheme.matches(circle_token, ct)
    }
    assert tri_hits == {(41, 41), (42, 40)}
    assert circle_hits == {(41, 41), (42, 40)}


def test_bench_simplex_token_generation(benchmark):
    rng = random.Random(0x731C)
    scheme = SimplexRangeScheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    key = scheme.gen_key(rng)
    triangle = _right_triangle(4)
    token = benchmark(scheme.gen_simplex_token, key, triangle, rng)
    assert token.num_sub_tokens == 15
