"""Ablation — the pairing hot-path optimizations, layer by layer.

The PR's speedup claim, demonstrated on the real curve backend at the
paper-relevant shape: a CRSE-II sub-token query is one SSW ``Query`` at
vector length ``n = w + 2 = 4``, i.e. ``2n + 2 = 10`` pairings per
evaluation ("pairing operations … are the dominating operations in our
search process", Sec. VIII).  Two ablation ladders:

* **scalar multiplication** — naive affine double-and-add → Jacobian
  coordinates with wNAF recoding → fixed-base window tables;
* **the query product** — per-pair affine pairings (the pre-optimization
  reference) → per-pair Jacobian Miller loops (still one final
  exponentiation *each*) → one shared Miller accumulator with a single
  final exponentiation for the whole product.

The end-to-end assert requires the fully optimized ``ssw_query`` to beat
the naive per-pair evaluation by >= 3x; the intermediate rung isolates how
much of that comes from coordinates vs the shared final exponentiation.
"""

from __future__ import annotations

import random
import time

from repro.analysis.report import TextTable
from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.groups.curve import FixedBaseTable
from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.pairing import (
    SupersingularPairingGroup,
    reduced_tate_pairing,
)
from repro.crypto.groups.params import toy_params
from repro.crypto.ssw import ssw_encrypt, ssw_gen_token, ssw_query, ssw_setup

#: CRSE-II sub-token vector length (w = 2 planar data → alpha = 4).
VECTOR_LENGTH = 4
QUERY_ROUNDS = 5
SCALAR_ROUNDS = 40


def _best_of(repeats, fn):
    """Best-of-*repeats* wall-clock of ``fn()``, in milliseconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return best


def _query_pairs(ciphertext, token):
    return [
        (ciphertext.c, token.k),
        (ciphertext.c0, token.k0),
        *zip(ciphertext.c1, token.k1),
        *zip(ciphertext.c2, token.k2),
    ]


def test_ablation_scalar_multiplication(write_result, write_json):
    group = SupersingularPairingGroup(toy_params())
    curve = group.curve
    point = group.generator().point
    rng = random.Random(0x5CA1A2)
    scalars = [rng.randrange(1, group.order) for _ in range(SCALAR_ROUNDS)]
    table = FixedBaseTable(curve, point, group.order.bit_length())

    naive_ms = _best_of(
        3, lambda: [curve.multiply_naive(point, k) for k in scalars]
    ) / len(scalars)
    wnaf_ms = _best_of(
        3, lambda: [curve.multiply(point, k) for k in scalars]
    ) / len(scalars)
    fixed_ms = _best_of(
        3, lambda: [table.multiply(k) for k in scalars]
    ) / len(scalars)

    # Same outputs before comparing speeds.
    assert all(
        curve.multiply(point, k)
        == curve.multiply_naive(point, k)
        == table.multiply(k)
        for k in scalars[:5]
    )
    # Each rung of the ladder must not regress the previous one (generous
    # slack: these are micro-timings on shared CI hardware).
    assert wnaf_ms < naive_ms * 1.2
    assert fixed_ms < naive_ms

    out = TextTable(
        "Ablation — scalar multiplication (curve backend, ms/op, best of 3)",
        ["variant", "ms_per_mult", "speedup_vs_naive"],
    )
    out.add_row("naive double-and-add (affine)", naive_ms, 1.0)
    out.add_row("wNAF + Jacobian", wnaf_ms, naive_ms / wnaf_ms)
    out.add_row("fixed-base window table", fixed_ms, naive_ms / fixed_ms)
    write_result("ablation_scalar_mult", out.render())
    write_json(
        "ablation_scalar_mult",
        {
            "benchmark": "ablation_scalar_mult",
            "rounds": SCALAR_ROUNDS,
            "naive_ms": naive_ms,
            "wnaf_jacobian_ms": wnaf_ms,
            "fixed_base_ms": fixed_ms,
            "wnaf_speedup": naive_ms / wnaf_ms,
            "fixed_base_speedup": naive_ms / fixed_ms,
        },
    )


def test_ablation_query_product(write_result, write_json):
    group = SupersingularPairingGroup(toy_params())
    params = group.params
    rng = random.Random(0xAB1A)
    key = ssw_setup(group, VECTOR_LENGTH, rng)
    ciphertext = ssw_encrypt(key, [3, 1, 4, 1], rng)
    token = ssw_gen_token(key, [1, -3, 0, 0], rng)  # <x, v> = 0 → match
    pairs = _query_pairs(ciphertext, token)
    point_pairs = [(a.point, b.point) for a, b in pairs]

    def query_naive():
        # Pre-optimization reference: 2n + 2 affine Miller loops, each
        # paying its own final exponentiation, multiplied in G_T.
        product = reduced_tate_pairing(
            group.curve, *point_pairs[0], group.order, params.cofactor
        )
        for a, b in point_pairs[1:]:
            product = product * reduced_tate_pairing(
                group.curve, a, b, group.order, params.cofactor
            )
        return product.is_one()

    def query_per_pair():
        # Jacobian Miller loops, but still one final exponentiation per
        # pairing (the base-class multi_pair reduction).
        return CompositeBilinearGroup.multi_pair(group, pairs).is_identity()

    def query_optimized():
        return ssw_query(token, ciphertext)

    assert query_naive() is query_per_pair() is query_optimized() is True

    naive_ms = _best_of(QUERY_ROUNDS, query_naive)
    per_pair_ms = _best_of(QUERY_ROUNDS, query_per_pair)
    optimized_ms = _best_of(QUERY_ROUNDS, query_optimized)
    speedup = naive_ms / optimized_ms

    # The PR's acceptance bar: >= 3x end to end on the real backend.
    assert speedup >= 3.0, (
        f"optimized ssw_query only {speedup:.2f}x faster "
        f"({naive_ms:.2f} ms -> {optimized_ms:.2f} ms)"
    )

    out = TextTable(
        f"Ablation — SSW query product, n = {VECTOR_LENGTH} "
        f"(2n+2 = {len(pairs)} pairings, ms/query, best of {QUERY_ROUNDS})",
        ["variant", "ms_per_query", "speedup_vs_naive"],
    )
    out.add_row("per-pair affine (pre-PR)", naive_ms, 1.0)
    out.add_row("per-pair Jacobian Miller", per_pair_ms, naive_ms / per_pair_ms)
    out.add_row(
        "shared accumulator + 1 final exp", optimized_ms, speedup
    )
    write_result("ablation_pairing_opt", out.render())
    write_json(
        "ablation_pairing_opt",
        {
            "benchmark": "ablation_pairing_opt",
            "vector_length": VECTOR_LENGTH,
            "pairings_per_query": len(pairs),
            "naive_ms": naive_ms,
            "per_pair_jacobian_ms": per_pair_ms,
            "optimized_ms": optimized_ms,
            "jacobian_speedup": naive_ms / per_pair_ms,
            "total_speedup": speedup,
        },
    )


def test_fast_backend_unchanged():
    """The exponent-space backend must agree with itself through multi_pair
    (guards the benchmark harness against comparing different answers)."""
    group = FastCompositeGroup(toy_params().subgroup_primes)
    rng = random.Random(0xFA57)
    key = ssw_setup(group, VECTOR_LENGTH, rng)
    ciphertext = ssw_encrypt(key, [2, 7, 1, 8], rng)
    token = ssw_gen_token(key, [7, -2, 0, 0], rng)
    pairs = _query_pairs(ciphertext, token)
    assert ssw_query(token, ciphertext) is True
    assert (
        group.multi_pair(pairs)
        == CompositeBilinearGroup.multi_pair(group, pairs)
    )
