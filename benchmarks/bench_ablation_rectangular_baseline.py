"""Ablation — the OPE rectangular baseline vs exact CRSE-II (paper Sec. II).

Related work does circular search by querying the circle's bounding box
over OPE-encrypted coordinates.  It is much faster (integer comparisons vs
pairings) but (a) returns false positives — asymptotically 1 - π/4 ≈ 21.5%
of the box on uniform data — and (b) leaks coordinate order to the server.
This ablation measures both sides of the trade.
"""

from __future__ import annotations

import random
import time

from repro.analysis.report import TextTable
from repro.baselines.rect_range import OPERectangularScheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.datasets.synthetic import uniform_points

SPACE = DataSpace(2, 256)
CENTER = (128, 128)
N_POINTS = 4000


def test_ablation_false_positive_table(write_result):
    rng = random.Random(0xFA15E)
    points = uniform_points(SPACE, N_POINTS, rng)
    scheme = OPERectangularScheme(SPACE, key=9)
    table = TextTable(
        "Ablation — rectangular (MBR over OPE) baseline vs exact circular",
        [
            "R",
            "true matches",
            "false positives",
            "FP fraction",
            "theory 1-pi/4",
            "scan ms",
        ],
    )
    fractions = []
    records = scheme.encrypt_dataset(points)
    for radius in (20, 40, 60, 80):
        circle = Circle.from_radius(CENTER, radius)
        token = scheme.gen_token(circle)
        started = time.perf_counter()
        candidates = scheme.server_search(token, records)
        scan_ms = (time.perf_counter() - started) * 1000
        true_pos = [i for i in candidates if point_in_circle(points[i], circle)]
        false_pos = len(candidates) - len(true_pos)
        fraction = false_pos / len(candidates) if candidates else 0.0
        fractions.append(fraction)
        table.add_row(
            radius,
            len(true_pos),
            false_pos,
            round(fraction, 3),
            0.215,
            round(scan_ms, 2),
        )
        # No false negatives ever: the MBR covers the circle.
        expected = sum(1 for p in points if point_in_circle(p, circle))
        assert len(true_pos) == expected
    # Large circles approach the asymptotic corner fraction.
    assert 0.12 < fractions[-1] < 0.30
    write_result("ablation_rectangular_baseline", table.render())


def test_crse2_is_exact_where_baseline_is_not(crse2_env):
    scheme, key, rng = crse2_env
    circle = Circle.from_radius((100, 100), 5)
    corner = (104, 104)  # inside the MBR, outside the circle (d² = 32 > 25)
    assert not point_in_circle(corner, circle)
    token = scheme.gen_token(key, circle, rng)
    assert scheme.matches(token, scheme.encrypt(key, corner, rng)) is False

    rect = OPERectangularScheme(scheme.space, key=3)
    records = rect.encrypt_dataset([corner])
    assert rect.server_search(rect.gen_token(circle), records) == [0]


def test_bench_ope_scan(benchmark):
    rng = random.Random(0xFA16)
    points = uniform_points(SPACE, 1000, rng)
    scheme = OPERectangularScheme(SPACE, key=11)
    records = scheme.encrypt_dataset(points)
    token = scheme.gen_token(Circle.from_radius(CENTER, 40))
    result = benchmark(scheme.server_search, token, records)
    assert isinstance(result, list)
