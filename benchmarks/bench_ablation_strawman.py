"""Ablation — the rejected straightforward design, measured (paper Sec. III).

Compute-then-compare with AHE and two non-colluding servers versus CRSE's
one-round single-server search.  The paper rejects the former for its
"heavy interactions" and trust assumption; this ablation counts them:
interactions and ciphertext transfers grow linearly **per record**, while a
CRSE-II query is one message regardless of n.
"""

from __future__ import annotations

import random
import time

from repro.analysis.report import TextTable
from repro.baselines.strawman import StrawmanSystem
from repro.cloud.deployment import CloudDeployment
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2
from repro.datasets.synthetic import uniform_points

SPACE = DataSpace(2, 64)
CIRCLE = Circle.from_radius((32, 32), 4)


def test_ablation_strawman_vs_crse(write_result):
    rng = random.Random(0x57AA)
    table = TextTable(
        "Ablation — two-server AHE strawman vs CRSE-II (query cost vs n)",
        [
            "n",
            "strawman S1<->S2 interactions",
            "strawman ciphertexts moved",
            "strawman s",
            "CRSE-II client msgs",
            "CRSE-II s (fast)",
        ],
    )
    interaction_counts = []
    for n in (10, 30, 60):
        points = uniform_points(SPACE, n, rng)

        strawman = StrawmanSystem(SPACE, random.Random(n), modulus_bits=128)
        strawman.outsource(points)
        started = time.perf_counter()
        straw_result = strawman.circular_search(CIRCLE)
        straw_s = time.perf_counter() - started
        interaction_counts.append(strawman.stats.interactions)

        scheme = CRSE2Scheme(SPACE, group_for_crse2(SPACE, "fast", rng))
        cloud = CloudDeployment.create(scheme, rng=rng)
        cloud.outsource(points)
        started = time.perf_counter()
        crse_response = cloud.query(CIRCLE)
        crse_s = time.perf_counter() - started

        expected = sorted(
            i for i, p in enumerate(points) if point_in_circle(p, CIRCLE)
        )
        assert straw_result == expected
        assert sorted(crse_response.identifiers) == expected

        table.add_row(
            n,
            strawman.stats.interactions,
            strawman.stats.ciphertexts_transferred,
            round(straw_s, 3),
            1,  # one SearchRequest, whatever n is
            round(crse_s, 3),
        )
    # The paper's point: interaction count is Ω(n) for the strawman.
    assert interaction_counts[0] < interaction_counts[1] < interaction_counts[2]
    assert interaction_counts[2] >= 3 * 60
    write_result("ablation_strawman", table.render())


def test_bench_strawman_record(benchmark):
    rng = random.Random(0x57AB)
    strawman = StrawmanSystem(SPACE, rng, modulus_bits=128)
    strawman.outsource([(32, 33)])

    def one_record_query():
        return strawman.circular_search(CIRCLE)

    result = benchmark(one_record_query)
    assert result == [0]
