"""Ablation — mixed-trace throughput with verified replay.

Drives the full deployment (owner, channels, server) through generated
upload/query/delete traces while checking every query against a plaintext
shadow, then fits the measured query cost against the live record count to
confirm the linear-scan model end to end — not just in the isolated search
microbenchmarks.
"""

from __future__ import annotations

import random
import time

from repro.analysis.fit import linear_fit
from repro.analysis.report import TextTable
from repro.cloud.deployment import CloudDeployment
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.datasets.synthetic import uniform_points
from repro.datasets.workload import QueryOp, UploadOp, generate_trace, replay

SPACE = DataSpace(2, 64)


def _fresh_deployment(seed: int) -> CloudDeployment:
    rng = random.Random(seed)
    scheme = CRSE2Scheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    return CloudDeployment.create(scheme, rng=rng)


def test_ablation_trace_throughput(write_result):
    table = TextTable(
        "Ablation — verified mixed-trace replay (CRSE-II, fast backend)",
        [
            "ops",
            "uploads",
            "queries",
            "deletes",
            "matches",
            "elapsed s",
            "ops/s",
        ],
    )
    for ops, seed in ((20, 1), (60, 2), (120, 3)):
        deployment = _fresh_deployment(seed)
        trace = generate_trace(SPACE, ops, random.Random(seed), max_radius=3)
        report = replay(deployment, trace)
        assert report.verified_queries == report.queries  # zero mismatches
        table.add_row(
            ops,
            report.uploads,
            report.queries,
            report.deletes,
            report.total_matches,
            round(report.elapsed_s, 3),
            round(ops / report.elapsed_s, 1),
        )
    write_result("ablation_workload", table.render())


def test_query_cost_linear_in_live_records():
    """End-to-end linearity: protocol query time vs records on the server."""
    deployment = _fresh_deployment(7)
    rng = random.Random(8)
    sizes = []
    times = []
    query = QueryOp(circle=Circle.from_radius((32, 32), 2))
    repetitions = 6
    for _ in range(6):
        deployment.outsource(uniform_points(SPACE, 80, rng))
        # Take the best-of-repetitions per point to shed scheduler noise.
        per_query = []
        for _ in range(repetitions):
            started = time.perf_counter()
            deployment.query(query.circle)
            per_query.append(time.perf_counter() - started)
        times.append(min(per_query))
        sizes.append(deployment.server.record_count)
    fit = linear_fit(sizes, times)
    assert fit.r_squared > 0.9
    assert fit.slope > 0


def test_bench_replay_50_ops(benchmark):
    trace = generate_trace(SPACE, 50, random.Random(11), max_radius=2)

    def run():
        deployment = _fresh_deployment(12)
        return replay(deployment, trace, verify=False)

    report = benchmark(run)
    assert report.queries > 0


def test_bench_verified_query(benchmark):
    deployment = _fresh_deployment(13)
    replay(deployment, [UploadOp(points=tuple(uniform_points(SPACE, 50, random.Random(14))))])

    def one_query():
        return replay(
            deployment,
            [QueryOp(circle=Circle.from_radius((32, 32), 2))],
        )

    report = benchmark(one_query)
    assert report.verified_queries == 1
