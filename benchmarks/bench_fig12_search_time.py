"""Fig. 12 — CRSE-II search time per record vs radius R (average case).

Paper: ≈98.65 ms at R = 10, growing with R² — "in average case" a matching
record is found after m/2 sub-token evaluations (the permuted sub-tokens
make the hit position uniform).  We reproduce the average case empirically:
encrypt records uniformly distributed *inside* the query (the paper's
matching-record average), record how many sub-tokens were actually
evaluated, and convert both to measured and paper-scale time.
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import Series, format_series_block, series_to_csv
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.geometry import Circle

RADII = (10, 20, 30, 40)
CENTER = (256, 256)


def _matching_points(scheme, circle, count, rng):
    pts = []
    radius = int(circle.r_squared**0.5)
    while len(pts) < count:
        x = CENTER[0] + rng.randint(-radius, radius)
        y = CENTER[1] + rng.randint(-radius, radius)
        if (x - CENTER[0]) ** 2 + (y - CENTER[1]) ** 2 <= circle.r_squared:
            pts.append((x, y))
    return pts


def test_fig12_series(crse2_env, write_result, write_csv, write_json):
    scheme, key, rng = crse2_env
    measured = Series("measured ms/record (fast)")
    paper = Series("paper-scale ms/record")
    avg_fraction = Series("avg evaluated / m")
    for radius in RADII:
        circle = Circle.from_radius(CENTER, radius)
        token = scheme.gen_token(key, circle, rng)
        points = _matching_points(scheme, circle, 12, rng)
        records = [scheme.encrypt(key, p, rng) for p in points]
        evaluated_total = 0
        started = time.perf_counter()
        for record in records:
            matched, evaluated = scheme.matches_with_stats(token, record)
            assert matched
            evaluated_total += evaluated
        elapsed_ms = (time.perf_counter() - started) * 1000 / len(records)
        avg_evaluated = evaluated_total / len(records)
        measured.add(radius, round(elapsed_ms, 4))
        paper.add(
            radius,
            round(
                PAPER_EC2_MODEL.time_ms(
                    crse2_search_record_ops(round(avg_evaluated), w=2)
                ),
                2,
            ),
        )
        avg_fraction.add(radius, round(avg_evaluated / token.num_sub_tokens, 3))
    # Average case: hits land near m/2 thanks to the fresh permutation.
    assert all(0.2 <= f <= 0.8 for f in avg_fraction.y)
    # Growth: quadratic-ish in R.
    assert paper.y[-1] > 5 * paper.y[0]
    # Anchor: ≈98.65 ms at R = 10 (wide tolerance: 12-sample average).
    assert 40 <= paper.y[0] <= 160
    write_result(
        "fig12_search_time",
        format_series_block(
            "Fig. 12 — CRSE-II search time per record vs R (average case)",
            [measured, paper, avg_fraction],
        ),
    )
    write_csv("fig12_search_time", series_to_csv([measured, paper, avg_fraction]))
    write_json(
        "fig12_search_time",
        {
            "figure": "fig12",
            "radii": list(RADII),
            "measured_ms_per_record": measured.y,
            "paper_scale_ms_per_record": paper.y,
            "avg_evaluated_fraction": avg_fraction.y,
        },
    )


def test_bench_crse2_search_record_r10(crse2_env, benchmark):
    scheme, key, rng = crse2_env
    circle = Circle.from_radius(CENTER, 10)
    token = scheme.gen_token(key, circle, rng)
    record = scheme.encrypt(key, (259, 259), rng)

    def search_once():
        return scheme.matches(token, record)

    assert benchmark(search_once) is True
