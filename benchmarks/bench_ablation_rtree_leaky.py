"""Ablation — the faster-than-linear trade-off the paper declines (Sec. VI-D).

An R-tree would make circular search sub-linear, but its non-leaf pruning
test — "does this rectangle intersect the circle?" — has no encrypted
counterpart in the paper's design, and running it in plaintext leaks the
tree's intersection pattern.  This ablation quantifies both sides:

* how many per-record evaluations the (hypothetical, leaky) R-tree saves
  versus the paper's linear scan, at several radii and dataset sizes;
* the modeled encrypted search time if only the *leaf* tests used CRSE-II
  sub-tokens (worst case) while non-leaf pruning were done in the clear.
"""

from __future__ import annotations

import random

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import TextTable
from repro.baselines.rtree import RTree
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.geometry import Circle
from repro.datasets.synthetic import uniform_points
from repro.core.geometry import DataSpace

SPACE = DataSpace(2, 1024)
CENTER = (512, 512)
N_RECORDS = 5000


def test_ablation_leaky_rtree(write_result):
    rng = random.Random(0x47EE)
    points = uniform_points(SPACE, N_RECORDS, rng)
    tree = RTree(points, leaf_capacity=32)
    table = TextTable(
        f"Ablation — leaky R-tree pruning vs linear scan (n = {N_RECORDS})",
        [
            "R",
            "m",
            "linear tests",
            "rtree tests",
            "pruning factor",
            "linear enc search s (model)",
            "leaky enc search s (model)",
        ],
    )
    factors = []
    for radius in (5, 20, 80):
        circle = Circle.from_radius(CENTER, radius)
        results, stats = tree.range_query(circle)
        m = num_concentric_circles(radius * radius)
        worst_ms = PAPER_EC2_MODEL.time_ms(crse2_search_record_ops(m, 2))
        factor = N_RECORDS / max(stats.points_tested, 1)
        factors.append(factor)
        table.add_row(
            radius,
            m,
            N_RECORDS,
            stats.points_tested,
            round(factor, 1),
            round(N_RECORDS * worst_ms / 1000, 2),
            round(stats.points_tested * worst_ms / 1000, 2),
        )
        # Exactness is untouched: pruning never drops a true match.
        brute = [p for p in points if
                 (p[0] - CENTER[0]) ** 2 + (p[1] - CENTER[1]) ** 2
                 <= circle.r_squared]
        assert sorted(results) == sorted(brute)
    # Small queries prune dramatically; the gain shrinks as R grows — the
    # quantitative shape of the trade-off the paper discusses.
    assert factors[0] > factors[-1]
    assert factors[0] > 20
    write_result("ablation_rtree_leaky", table.render())


def test_bench_rtree_query(benchmark):
    rng = random.Random(0x47EF)
    tree = RTree(uniform_points(SPACE, 2000, rng), leaf_capacity=32)
    circle = Circle.from_radius(CENTER, 20)
    results, _ = benchmark(tree.range_query, circle)
    assert isinstance(results, list)
