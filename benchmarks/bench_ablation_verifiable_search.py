"""Ablation — what result verification costs, and what it does not.

The verifiable-search subsystem (``repro.integrity``) adds two kinds of
overhead on top of the paper's CRSE-II deployment:

* **per-record, at upload** — two 32-byte HMAC tags per ciphertext,
  constant regardless of dataset size;
* **per-query, at search** — the integrity section of the reply: one
  ``[identifier, digest, tag]`` entry per *match* plus one
  **constant-size** completeness proof per shard.

The table sweeps the match count by widening the query radius and
reports the verified-search overhead end to end (a real server behind a
real socket, client-side verification included).  The assertion that
matters for the design is pinned at the bottom: the serialized
completeness proof does **not** grow with the result-set size — only the
per-match tag list does, and that is information the client asked for.
"""

from __future__ import annotations

import json
import time

from repro.analysis.report import TextTable
from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.geometry import Circle
from repro.integrity import (
    IntegrityState,
    ResultVerifier,
    TagKeys,
    membership_tag,
    record_tag,
)
from repro.service import (
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

N_RECORDS = 120
RADII = (2, 6, 12, 24)
CENTER = (256, 256)


def _proof_bytes(section: dict) -> int:
    """Serialized size of the completeness proofs alone (no match list)."""
    return len(json.dumps(section["shards"]))


def test_ablation_verifiable_search(crse2_env, write_result):
    scheme, key, rng = crse2_env
    keys = TagKeys.derive(scheme, key)
    # Cluster the records around the query center so the radius sweep
    # actually sweeps the match count (uniform points over a 512² space
    # would leave every radius nearly empty).
    points = [
        (
            CENTER[0] + rng.randrange(-24, 25),
            CENTER[1] + rng.randrange(-24, 25),
        )
        for _ in range(N_RECORDS)
    ]

    # Upload-side overhead: tag minting time and bytes per record.
    started = time.perf_counter()
    records = []
    for identifier, point in enumerate(points):
        payload = encode_ciphertext(scheme, scheme.encrypt(key, point, rng))
        records.append(
            UploadRecord(
                identifier=identifier,
                payload=payload,
                tag=record_tag(keys, identifier, payload),
                mtag=membership_tag(keys, identifier),
            )
        )
    encrypt_and_tag_s = time.perf_counter() - started
    tag_bytes = len(records[0].tag) + len(records[0].mtag)
    payload_bytes = len(records[0].payload)

    state = IntegrityState()
    state.note_upload(keys, range(N_RECORDS))
    verifier = ResultVerifier(keys)

    thread = ServerThread(ServiceServer(scheme, config=ServiceConfig()))
    port = thread.start()
    table = TextTable(
        f"Ablation — verifiable search, n = {N_RECORDS}, "
        f"tags add {tag_bytes} B to a {payload_bytes} B ciphertext",
        ["radius", "matches", "plain ms", "verified ms", "proof B", "tags B"],
    )
    proof_sizes = []
    try:
        client = ServiceClient("127.0.0.1", port)
        client.upload(UploadDataset(records=tuple(records)))
        thread.server.engine.warm_up()
        for radius in RADII:
            token = encode_token(
                scheme,
                scheme.gen_token(
                    key, Circle.from_radius(CENTER, radius), rng
                ),
            )
            started = time.perf_counter()
            plain_resp, _ = client.search(token)
            plain_ms = (time.perf_counter() - started) * 1000.0

            started = time.perf_counter()
            resp, _, section = client.search_verified(token)
            report = verifier.verify(
                token, resp.identifiers, section, state
            )
            verified_ms = (time.perf_counter() - started) * 1000.0

            assert sorted(resp.identifiers) == sorted(plain_resp.identifiers)
            assert report.records == len(resp.identifiers)
            proof_sizes.append((len(resp.identifiers), _proof_bytes(section)))
            table.add_row(
                radius,
                len(resp.identifiers),
                f"{plain_ms:.2f}",
                f"{verified_ms:.2f}",
                _proof_bytes(section),
                len(json.dumps(section["matches"])),
            )
    finally:
        thread.stop()

    # The design's load-bearing claim: proof size is independent of the
    # result-set size.  (The match-tag list may grow; the proof may not.)
    assert len({size for _, size in proof_sizes}) == 1, proof_sizes
    match_counts = [count for count, _ in proof_sizes]
    assert max(match_counts) > min(match_counts), (
        "radius sweep must vary the match count for the claim to bite"
    )

    note = (
        f"encrypt+tag for {N_RECORDS} records: {encrypt_and_tag_s:.2f} s; "
        "completeness proof size is constant across the sweep "
        f"({proof_sizes[0][1]} B) while matches vary "
        f"{min(match_counts)}..{max(match_counts)}."
    )
    write_result(
        "bench_ablation_verifiable_search", table.render() + "\n" + note
    )
