"""Ablation — real pairing backend vs fast algebraic backend.

Calibrates both backends (per-op timings) and runs the same CRSE-II query
on each, demonstrating that (a) results agree and (b) the fast backend is
the right substrate for paper-scale sweeps while the curve backend proves
the cryptography end-to-end.  Also compares our measured pairing time with
the paper's 0.44 ms PBC figure.
"""

from __future__ import annotations

import random

from repro.analysis.report import TextTable
from repro.cloud.costmodel import PAPER_EC2_MODEL, measure_calibration
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import provision_group

SPACE = DataSpace(2, 8)


def _backends():
    rng = random.Random(0xBAC6)
    fast = provision_group(SPACE.boundary_value_bound(), "fast", rng)
    pairing = provision_group(
        SPACE.boundary_value_bound(),
        "pairing",
        rng,
        noise_bits=16,
        min_payload_bits=33,
    )
    return fast, pairing


def test_ablation_backend_calibration(write_result):
    fast, pairing = _backends()
    table = TextTable(
        "Ablation — backend calibration (ms per operation)",
        ["backend", "pairing ms", "exp ms", "mult ms"],
    )
    for group in (fast, pairing):
        model = measure_calibration(group, repetitions=10)
        table.add_row(
            model.label,
            round(model.pairing_ms, 4),
            round(model.exponentiation_ms, 4),
            round(model.multiplication_ms, 5),
        )
    table.add_row(
        PAPER_EC2_MODEL.label,
        PAPER_EC2_MODEL.pairing_ms,
        PAPER_EC2_MODEL.exponentiation_ms,
        PAPER_EC2_MODEL.multiplication_ms,
    )
    write_result("ablation_backends", table.render())


def test_backends_agree_on_query_results():
    fast, pairing = _backends()
    query = Circle.from_radius((3, 3), 2)
    outcomes = {}
    for name, group in (("fast", fast), ("pairing", pairing)):
        rng = random.Random(0xBAC7)
        scheme = CRSE2Scheme(SPACE, group)
        key = scheme.gen_key(rng)
        token = scheme.gen_token(key, query, rng)
        outcomes[name] = [
            scheme.matches(token, scheme.encrypt(key, p, rng))
            for p in ((3, 3), (3, 5), (5, 5), (7, 0))
        ]
    assert outcomes["fast"] == outcomes["pairing"]
    assert outcomes["fast"] == [
        point_in_circle(p, query) for p in ((3, 3), (3, 5), (5, 5), (7, 0))
    ]


def test_bench_real_pairing(benchmark):
    _, pairing = _backends()
    g = pairing.generator()
    a = g ** 12345
    b = g ** 67890
    result = benchmark(pairing.pair, a, b)
    assert not result.is_identity()


def test_bench_fast_pairing(benchmark):
    fast, _ = _backends()
    g = fast.generator()
    a = g ** 12345
    b = g ** 67890
    result = benchmark(fast.pair, a, b)
    assert not result.is_identity()
