"""Fig. 15 — CRSE-II total encryption time vs dataset size n.

Paper: linear in n (records encrypt independently), ≈11 s at n = 2000 on
EC2.  We sweep n on the fast backend, check linearity, and print the
paper-scale line (n × 5.61 ms).
"""

from __future__ import annotations

import random
import time

from repro.analysis.opcount import crse2_encrypt_ops
from repro.analysis.report import Series, format_series_block, series_to_csv
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.datasets.synthetic import uniform_points

SIZES = (500, 1000, 1500, 2000)


def test_fig15_series(crse2_env, write_result, write_csv):
    scheme, key, _ = crse2_env
    rng = random.Random(15)
    measured = Series("measured s (fast backend)")
    paper = Series("paper-scale s (EC2 model)")
    per_record_ops = crse2_encrypt_ops(w=2)
    for n in SIZES:
        points = uniform_points(scheme.space, n, rng)
        started = time.perf_counter()
        for point in points:
            scheme.encrypt(key, point, rng)
        measured.add(n, round(time.perf_counter() - started, 4))
        paper.add(n, round(n * PAPER_EC2_MODEL.time_s(per_record_ops), 2))
    # Linearity: doubling n doubles time (25% tolerance for jitter).
    ratio = measured.y[-1] / measured.y[0]
    assert 2.8 <= ratio <= 5.5  # ideal 4.0 for 500 → 2000
    # Paper anchor: ≈11.2 s at n = 2000.
    assert abs(paper.y[-1] - 11.22) / 11.22 < 0.2
    write_result(
        "fig15_total_encrypt",
        format_series_block(
            "Fig. 15 — CRSE-II total encryption time vs n (linear)",
            [measured, paper],
        ),
    )
    write_csv("fig15_total_encrypt", series_to_csv([measured, paper]))


def test_bench_encrypt_batch_100(crse2_env, benchmark):
    scheme, key, _ = crse2_env
    rng = random.Random(16)
    points = uniform_points(scheme.space, 100, rng)

    def encrypt_all():
        for point in points:
            scheme.encrypt(key, point, rng)

    benchmark(encrypt_all)
