"""Ablation — higher dimensions w ∈ {2, 3, 4} (paper Sec. VI-D).

The paper extends both schemes beyond the plane: at w = 3 Legendre's
three-square theorem governs m, and at w >= 4 every integer in [0, R²] is a
sum of squares (Lagrange), so m = R² + 1 exactly.  Costs per sub-token also
grow (α = w + 2).  This ablation regenerates the m-growth and per-record
cost across dimensions and checks CRSE-II correctness in 3-D and 4-D.
"""

from __future__ import annotations

import random

from repro.analysis.opcount import crse2_search_record_ops
from repro.analysis.report import TextTable
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2

RADIUS = 5


def test_ablation_dimension_table(write_result):
    table = TextTable(
        f"Ablation — dimension sweep (R = {RADIUS})",
        ["w", "alpha", "m", "R²+1", "worst-case search ms (model)"],
    )
    m_values = {}
    for w in (2, 3, 4, 5):
        m = num_concentric_circles(RADIUS * RADIUS, w)
        m_values[w] = m
        table.add_row(
            w,
            w + 2,
            m,
            RADIUS * RADIUS + 1,
            round(PAPER_EC2_MODEL.time_ms(crse2_search_record_ops(m, w)), 1),
        )
    assert m_values[2] < m_values[3] <= m_values[4] == RADIUS * RADIUS + 1
    assert m_values[5] == RADIUS * RADIUS + 1  # Lagrange
    write_result("ablation_dimensions", table.render())


def test_crse2_correct_in_3d():
    rng = random.Random(0xD3)
    space = DataSpace(3, 8)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    q = Circle.from_radius((4, 4, 4), 2)
    token = scheme.gen_token(key, q, rng)
    for point in ((4, 4, 4), (4, 4, 6), (5, 5, 5), (7, 7, 7), (4, 5, 5)):
        got = scheme.matches(token, scheme.encrypt(key, point, rng))
        assert got == point_in_circle(point, q), point


def test_crse2_correct_in_4d():
    rng = random.Random(0xD4)
    space = DataSpace(4, 6)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    q = Circle.from_radius((3, 3, 3, 3), 2)
    token = scheme.gen_token(key, q, rng)
    assert token.num_sub_tokens == 5  # Lagrange: R² + 1 = 5
    for point in ((3, 3, 3, 3), (3, 3, 3, 5), (5, 5, 3, 3), (0, 0, 0, 0)):
        got = scheme.matches(token, scheme.encrypt(key, point, rng))
        assert got == point_in_circle(point, q), point


def test_bench_3d_search(benchmark):
    rng = random.Random(0xD5)
    space = DataSpace(3, 16)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    token = scheme.gen_token(key, Circle.from_radius((8, 8, 8), 3), rng)
    record = scheme.encrypt(key, (8, 8, 10), rng)
    assert benchmark(scheme.matches, token, record) is True
