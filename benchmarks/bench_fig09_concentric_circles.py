"""Fig. 9 — the number of concentric circles m vs the query radius R.

Paper: m grows with R but stays well below the R² upper bound (the
sum-of-two-squares density).  This bench regenerates the exact curve —
``GenConCircle`` is deterministic, so our values *are* the paper's values —
and times the enumeration itself.
"""

from __future__ import annotations

from repro.analysis.report import Series, format_series_block, series_to_csv
from repro.core.concircles import gen_con_circle, num_concentric_circles

RADII = range(1, 51)


def test_fig09_series(write_result, write_csv):
    m_series = Series("m (w=2)")
    square = Series("R^2")
    for radius in RADII:
        m_series.add(radius, num_concentric_circles(radius * radius))
        square.add(radius, radius * radius)
    # Shape assertions: monotone, below the square, matching the anchors
    # the paper's other figures imply.
    assert all(a < b for a, b in zip(m_series.y, m_series.y[1:]))
    assert all(m <= r * r + 1 for r, m in zip(RADII, m_series.y))
    assert m_series.y[0] == 2  # R = 1
    assert m_series.y[9] == 44  # R = 10
    write_result(
        "fig09_concentric_circles",
        format_series_block(
            "Fig. 9 — number of concentric circles m vs radius R (w = 2)",
            [m_series, square],
        ),
    )
    write_csv("fig09_concentric_circles", series_to_csv([m_series, square]))


def test_bench_gen_con_circle_r50(benchmark):
    """Time GenConCircle at the paper's largest radius (R = 50)."""
    result = benchmark(gen_con_circle, 2500)
    assert result[0] == 0 and result[-1] == 2500
