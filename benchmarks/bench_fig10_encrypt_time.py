"""Fig. 10 — CRSE-II encryption time per record vs query radius R.

Paper: encryption is **independent of R** (flat line at ≈5.61 ms on EC2),
because a CRSE-II ciphertext is one SSW encryption at α = w + 2 no matter
what queries will later be asked.  We verify the flatness by construction
(the operation count never mentions R), measure our backend, and print the
paper-scale line.
"""

from __future__ import annotations

import time

from repro.analysis.opcount import crse2_encrypt_ops
from repro.analysis.report import Series, format_series_block, series_to_csv
from repro.cloud.costmodel import PAPER_EC2_MODEL

RADII = (10, 20, 30, 40, 50)


def _measure_encrypt_ms(scheme, key, rng, repetitions: int = 30) -> float:
    started = time.perf_counter()
    for i in range(repetitions):
        scheme.encrypt(key, (100 + i, 200), rng)
    return (time.perf_counter() - started) * 1000.0 / repetitions


def test_fig10_series(crse2_env, write_result, write_csv):
    scheme, key, rng = crse2_env
    measured = Series("measured ms (fast backend)")
    paper = Series("paper-scale ms (EC2 model)")
    paper_ms = PAPER_EC2_MODEL.time_ms(crse2_encrypt_ops(w=2))
    for radius in RADII:
        # The encryption code path cannot depend on the radius; re-measuring
        # per R documents the flat line the paper plots.
        measured.add(radius, round(_measure_encrypt_ms(scheme, key, rng), 4))
        paper.add(radius, round(paper_ms, 2))
    # Flatness: max/min within noise (2x guard for CI jitter).
    assert max(measured.y) <= 2.5 * min(measured.y)
    # Paper-scale value matches Fig. 10's ≈5.61 ms.
    assert abs(paper_ms - 5.61) / 5.61 < 0.2
    write_result(
        "fig10_encrypt_time",
        format_series_block(
            "Fig. 10 — CRSE-II encryption time per record vs R (flat)",
            [measured, paper],
        ),
    )
    write_csv("fig10_encrypt_time", series_to_csv([measured, paper]))


def test_bench_crse2_encrypt(crse2_env, benchmark):
    scheme, key, rng = crse2_env
    benchmark(scheme.encrypt, key, (123, 321), rng)
