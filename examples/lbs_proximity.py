"""LBS proximity testing ("friend radar") on Brightkite-style check-ins.

The paper's headline application: a location-based service outsources its
users' check-ins, encrypted, and a user finds friends within ~100 meters
without the cloud learning anyone's location.  This example also walks the
paper's Fig. 17 / Table III accuracy-efficiency trade-off: the same search
at three coordinate precisions, showing how one rounded digit buys two
orders of magnitude of search cost.

Run:  python examples/lbs_proximity.py
"""

from __future__ import annotations

import random
import time

from repro import Circle, CloudDeployment, CRSE2Scheme, group_for_crse2
from repro.analysis.opcount import crse2_search_record_ops
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.datasets.brightkite import (
    checkin_to_point,
    data_space_for_digits,
    generate_checkins,
    haversine_m,
    radius_for_meters,
    real_world_radius_m,
)

TARGET_METERS = 100.0
N_USERS = 300


def main() -> None:
    rng = random.Random(438)  # WeChat's 438M users, Sec. I
    checkins = generate_checkins(N_USERS, rng)
    me = checkins[0]
    # A few friends checked in within a couple hundred meters of the querier
    # (0.0005° ≈ 55 m), so the radar has something to find.
    from repro.datasets.brightkite import CheckIn

    relocated = [checkins.pop() for _ in range(3)]
    for friend, offset in zip(relocated, (0.0004, -0.0005, 0.0006)):
        checkins.append(
            CheckIn(friend.user_id, round(me.latitude + offset, 5),
                    round(me.longitude - offset / 2, 5))
        )
    print(f"querier at ({me.latitude}, {me.longitude}); "
          f"looking for friends within ~{TARGET_METERS:.0f} m\n")

    for digits in (5, 4, 3):
        space = data_space_for_digits(digits)
        scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
        cloud = CloudDeployment.create(scheme, rng=rng)

        points = [checkin_to_point(c, digits) for c in checkins]
        cloud.outsource(points)

        radius = radius_for_meters(TARGET_METERS, digits)
        m = num_concentric_circles(radius * radius)
        query = Circle.from_radius(checkin_to_point(me, digits), radius)

        started = time.perf_counter()
        response = cloud.query(query)
        elapsed = time.perf_counter() - started

        paper_scale_s = N_USERS * PAPER_EC2_MODEL.time_s(
            crse2_search_record_ops(max(1, m // 2), w=2)
        )
        nearby = [
            checkins[i] for i in response.identifiers if i != me.user_id
        ]
        print(f"{digits} decimal digits: R = {radius} "
              f"(≈{real_world_radius_m(radius, digits):.0f} m real), "
              f"m = {m} concentric circles")
        print(f"  found {len(nearby)} nearby user(s); "
              f"measured {elapsed:.2f} s here, "
              f"paper-scale estimate {paper_scale_s:.1f} s for n = {N_USERS}")
        for friend in nearby[:5]:
            meters = haversine_m(
                me.latitude, me.longitude, friend.latitude, friend.longitude
            )
            print(f"    user {friend.user_id} at ≈{meters:.0f} m")
        print()

    print("fewer digits → smaller R for the same real-world distance → "
          "quadratically fewer sub-tokens (the Table III trade-off)")


if __name__ == "__main__":
    main()
