"""Geofencing: richer query shapes over one encrypted location dataset.

A logistics operator outsources encrypted vehicle positions once, then asks
differently-shaped questions — all against the same keys and ciphertexts:

* **disk** (CRSE-II proper): "within 4 blocks of the depot";
* **annulus**: "in the 5-10 block delivery ring, but not the congested
  core" (`gen_annulus_token`);
* **union of circles**: "near any of our three pickup hubs"
  (`gen_union_token`);
* **exact rectangle** via interval conjunction (`RectangleScheme`) for the
  highway corridor — a separate key, but no false positives and no OPE
  order leakage.

Run:  python examples/geofencing.py
"""

from __future__ import annotations

import random

from repro import (
    Circle,
    CRSE2Scheme,
    DataSpace,
    group_for_crse2,
    provision_group,
)
from repro.core.composite import gen_annulus_token, gen_union_token
from repro.core.interval import RectangleScheme, interval_inner_product_bound

CITY = 64


def main() -> None:
    rng = random.Random(77)
    space = DataSpace(w=2, t=CITY)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)

    vehicles = {
        "van-1": (32, 32),  # at the depot
        "van-2": (36, 35),  # inner ring
        "van-3": (40, 38),  # delivery ring
        "van-4": (10, 50),  # near hub B
        "van-5": (60, 8),   # far corridor
    }
    records = {
        name: scheme.encrypt(key, pos, rng) for name, pos in vehicles.items()
    }
    print(f"encrypted {len(records)} vehicle positions once\n")

    def report(label, token, matcher=scheme.matches):
        hits = sorted(n for n, ct in records.items() if matcher(token, ct))
        print(f"{label}: {hits}")

    depot = (32, 32)
    report(
        "disk    — within 4 of depot",
        scheme.gen_token(key, Circle.from_radius(depot, 4), rng),
    )
    report(
        "annulus — ring 5..10 around depot",
        gen_annulus_token(scheme, key, depot, 5 * 5, 10 * 10, rng),
    )
    hubs = [
        Circle.from_radius((10, 50), 3),
        Circle.from_radius((50, 50), 3),
        Circle.from_radius((60, 10), 3),
    ]
    report(
        "union   — near any pickup hub",
        gen_union_token(scheme, key, hubs, rng),
    )

    # The corridor: an exact rectangle via interval conjunction (its own
    # keys — a different primitive, same SSW engine underneath).
    width = 9
    rect_group = provision_group(
        interval_inner_product_bound(CITY, width), "fast", rng
    )
    rect = RectangleScheme(space, width, rect_group)
    rect_keys = rect.gen_key(rng)
    corridor = rect.gen_token(rect_keys, (56, 4), (63, 12), rng)
    rect_records = {
        name: rect.encrypt(rect_keys, pos, rng)
        for name, pos in vehicles.items()
    }
    hits = sorted(
        name
        for name, cts in rect_records.items()
        if rect.matches(corridor, cts)
    )
    print(f"box     — highway corridor [56..63]x[4..12]: {hits}")

    print("\nthe server evaluated every shape on ciphertexts; disks, rings "
          "and unions even shared one key and one encrypted dataset")


if __name__ == "__main__":
    main()
