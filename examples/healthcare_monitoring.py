"""Hospital scenario: emergency proximity queries over encrypted patient
locations, with radius hiding (paper Sec. I and Sec. VI-D).

A hospital outsources its patients' (private!) locations to a public cloud;
a doctor queries for patients within an emergency radius of their current
position.  Two privacy refinements from the paper are on display:

* **radius hiding** — every token is padded with dummy sub-tokens to a
  fixed K, so the cloud cannot tell a 50 m triage query from a 500 m
  evacuation query by counting sub-tokens;
* the latency model prices the one-round protocol over a realistic WAN.

Run:  python examples/healthcare_monitoring.py
"""

from __future__ import annotations

import random

from repro import (
    Circle,
    CloudDeployment,
    CRSE2Scheme,
    DataSpace,
    LatencyModel,
    group_for_crse2,
)
from repro.core.concircles import num_concentric_circles

WARD_GRID = 512  # hospital campus as a 512×512 grid, one unit ≈ 1 meter
PAD_K = 120  # public padding level: hides every radius up to ~10 units


def main() -> None:
    rng = random.Random(911)
    space = DataSpace(w=2, t=WARD_GRID)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    cloud = CloudDeployment.create(
        scheme, rng=rng, latency=LatencyModel(rtt_ms=20.0, bandwidth_mbps=100.0)
    )

    # Most patients are spread over the campus; a handful are in the ward
    # around the duty station at (250, 250).
    patients = [
        (rng.randrange(WARD_GRID), rng.randrange(WARD_GRID)) for _ in range(72)
    ]
    patients += [(248, 251), (253, 249), (246, 247), (255, 258),
                 (244, 260), (259, 244), (250, 250), (261, 239)]
    cloud.outsource(patients)
    print(f"outsourced {len(patients)} encrypted patient locations")

    doctor_at = (250, 250)
    for radius, label in ((5, "ward triage"), (10, "floor sweep")):
        m = num_concentric_circles(radius * radius)
        assert m <= PAD_K, "padding level must dominate every real m"
        response = cloud.query(
            Circle.from_radius(doctor_at, radius), hide_radius_to=PAD_K
        )
        nearby = cloud.owner.resolve(response.identifiers)
        print(f"{label}: radius {radius} → {len(nearby)} patient(s) "
              f"{sorted(nearby)}")

    # The server's view: both queries look like K = PAD_K sub-tokens.
    counts = cloud.server.log.sub_token_counts
    print(f"server-observed sub-token counts: {counts} "
          f"(identical → radius pattern hidden)")
    assert set(counts) == {PAD_K}

    stats = cloud.server_channel.stats
    print(f"network: {stats.messages} messages, {stats.bytes_sent} bytes, "
          f"{stats.simulated_ms:.1f} ms simulated WAN time")


if __name__ == "__main__":
    main()
