"""Fleet tracking: encrypted payloads, key persistence, and simplex queries.

A delivery company outsources its couriers' live positions.  Beyond the
paper's core protocol this example exercises the production features the
library adds around it:

* **record contents** — each position carries an encrypted payload (courier
  name/cargo) under the independent traditional-encryption layer the paper
  assumes; matched payloads are fetched and decrypted client-side;
* **key persistence** — the owner's CRSE key is serialized and restored, and
  the restored key keeps answering queries over the old ciphertexts;
* **simplex range search** — the paper's future work: "which couriers are
  inside this triangular delivery zone?", served by the same key and the
  same encrypted dataset as the circular queries;
* **dynamic updates** — couriers go off shift (delete) and come on
  (incremental upload) with no re-indexing.

Run:  python examples/fleet_tracking.py
"""

from __future__ import annotations

import random

from repro import (
    Circle,
    CloudDeployment,
    DataSpace,
    Simplex,
    SimplexRangeScheme,
    group_for_crse2,
    load_crse2_key,
    save_crse2_key,
)

CITY = 256  # city grid


def main() -> None:
    rng = random.Random(66)
    space = DataSpace(w=2, t=CITY)
    scheme = SimplexRangeScheme(space, group_for_crse2(space, "fast", rng))
    cloud = CloudDeployment.create(scheme, rng=rng)

    couriers = {
        "ana": (100, 100),
        "ben": (104, 98),
        "chen": (140, 60),
        "dev": (60, 180),
        "eli": (102, 103),
    }
    names = list(couriers)
    cloud.outsource(
        [couriers[n] for n in names],
        contents=[f"courier:{n}".encode() for n in names],
    )
    print(f"outsourced {len(names)} couriers with encrypted payloads")

    # Circular dispatch: who is within 6 blocks of a pickup at (101, 101)?
    response = cloud.query(Circle.from_radius((101, 101), 6))
    payloads = cloud.user.fetch_contents(response.identifiers)
    print("within 6 blocks of (101,101):",
          sorted(p.decode() for p in payloads.values()))

    # Simplex dispatch: the triangular harbor zone.
    zone = Simplex(((90, 90), (120, 95), (95, 120)))
    key = cloud.owner._key
    token = scheme.gen_simplex_token(key, zone, rng)
    in_zone = [
        record.identifier
        for record in cloud.server._records
        if scheme.matches(token, record.ciphertext)
    ]
    print("inside the harbor triangle:",
          sorted(cloud.user.fetch_contents(tuple(in_zone)).values()))

    # Shift change: ben logs off, fay logs on.
    cloud.delete([names.index("ben")])
    cloud.outsource([(99, 99)], contents=[b"courier:fay"])
    response = cloud.query(Circle.from_radius((101, 101), 6))
    payloads = cloud.user.fetch_contents(response.identifiers)
    print("after shift change:",
          sorted(p.decode() for p in payloads.values()))

    # Key persistence: save, restore, and query with the restored key.
    blob = save_crse2_key(scheme, key)
    print(f"owner key serialized: {len(blob)} bytes")
    restored_scheme, restored_key = load_crse2_key(blob)
    probe = restored_scheme.gen_token(
        restored_key, Circle.from_radius((140, 60), 2), rng
    )
    hits = [
        record.identifier
        for record in cloud.server._records
        if restored_scheme.matches(probe, record.ciphertext)
    ]
    print("restored key finds chen:",
          cloud.user.fetch_contents(tuple(hits))[2].decode())


if __name__ == "__main__":
    main()
