"""CRSE-I vs CRSE-II on the paper's worked example (Fig. 5), side by side.

Walks the exact numbers from Sections V and VI: the query circle
Q = {(3,2), 1}, the inside point D = (2,2) and the outside point
D' = (1,3); shows the split vectors, both schemes' verdicts, their cost
profiles, and the security difference (the sub-token observation CRSE-II
leaks and CRSE-I does not).

Run:  python examples/crse1_vs_crse2.py
"""

from __future__ import annotations

import random

from repro import Circle, CRSE1Scheme, CRSE2Scheme, DataSpace
from repro.core.provision import group_for_crse1, group_for_crse2
from repro.core.split import split_boundary, split_product
from repro.crypto.ssw import ssw_query

SPACE = DataSpace(w=2, t=8)
QUERY = Circle.from_radius((3, 2), 1)
INSIDE, OUTSIDE = (2, 2), (1, 3)


def show_vectors() -> None:
    print("== the Split vectors of the paper's example ==")
    cpe = split_boundary(2)
    print(f"CPE (Eq. 4):  f_u(D)  = {tuple(cpe.f_u(INSIDE))}")
    print(f"              f_v(Q)  = {tuple(cpe.f_v(QUERY.center, [1]))}")
    product = split_product(2, 2, optimize=False)
    u = product.f_u(INSIDE)
    v = product.f_v(QUERY.center, [0, 1])
    print(f"CRSE-I (Eq. 5, naive, α = {product.alpha}):")
    print(f"              f_u(D)  = {tuple(u)}")
    print(f"              f_v(Q)  = {tuple(v)}")
    print(f"              ⟨u, v⟩  = {sum(a * b for a, b in zip(u, v))} "
          f"(zero ⇒ inside)")
    u_out = product.f_u(OUTSIDE)
    print(f"              ⟨u', v⟩ = {sum(a * b for a, b in zip(u_out, v))} "
          f"(the paper's 20)\n")


def run_crse1(rng) -> None:
    print("== CRSE-I: one indivisible token, radius fixed at GenKey ==")
    scheme = CRSE1Scheme(
        SPACE, group_for_crse1(SPACE, 1, "fast", rng), r_squared=1
    )
    key = scheme.gen_key(rng)
    token = scheme.gen_token(key, QUERY, rng)
    print(f"m = {scheme.m} concentric circles folded into α = {scheme.alpha}")
    for point in (INSIDE, OUTSIDE, QUERY.center):
        verdict = scheme.matches(token, scheme.encrypt(key, point, rng))
        print(f"  {point}: {'inside' if verdict else 'outside'}")
    print("the server sees ONE Boolean per record — no finer structure\n")


def run_crse2(rng) -> None:
    print("== CRSE-II: one sub-token per concentric circle, permuted ==")
    scheme = CRSE2Scheme(SPACE, group_for_crse2(SPACE, "fast", rng))
    key = scheme.gen_key(rng)
    token = scheme.gen_token(key, QUERY, rng)
    print(f"token carries {token.num_sub_tokens} sub-tokens (m = 2: r² ∈ {{0, 1}})")
    for point in (INSIDE, OUTSIDE, QUERY.center):
        ciphertext = scheme.encrypt(key, point, rng)
        hits = [
            i for i, sub in enumerate(token.sub_tokens)
            if ssw_query(sub, ciphertext.ssw)
        ]
        verdict = "inside" if hits else "outside"
        leak = f", matched sub-token #{hits[0]}" if hits else ""
        print(f"  {point}: {verdict}{leak}")
    print("the matched sub-token index is extra leakage: two records hitting "
          "the same index provably lie on the same concentric circle "
          "(the paper's Fig. 18/19 weakness)\n")


def main() -> None:
    rng = random.Random(5)
    show_vectors()
    run_crse1(rng)
    run_crse2(rng)
    print("trade-off: CRSE-I pays α = (w+2)^m for full SCPA privacy; "
          "CRSE-II pays α·m with the co-boundary leakage")


if __name__ == "__main__":
    main()
