"""Verifying a Delaunay triangulation over encrypted points (paper Sec. I).

The paper's computational-geometry motivation: "verifying whether a
triangulation T of a point set S is a Delaunay triangulation can be done by
performing circular range search to see if any point from S is inside any
circumcircle of a triangulation of T".  The Delaunay condition needs the
*strict* interior; our encrypted toolkit provides exactly the two
predicates to express it:

* CRSE-II answers "inside or on the boundary" of a circumcircle;
* CPE answers "exactly on the boundary" (every triangle's own vertices are).

A point violates the Delaunay property iff CRSE-II says yes and CPE says no.

The demo triangulates an even grid into right triangles (whose circumcircles
have integer centers — hypotenuse midpoints — and integer squared radius 2),
verifies it, then injects a rogue point and watches the verification fail.

Run:  python examples/delaunay_verification.py
"""

from __future__ import annotations

import random

from repro import (
    Circle,
    CirclePredicateEncryption,
    CRSE2Scheme,
    DataSpace,
    group_for_crse2,
)
from repro.core.provision import provision_group

GRID = 4  # vertices at (2i, 2j) for i, j in [0, GRID]


def grid_triangulation():
    """Unit right triangles over the even grid, with their circumcircles."""
    vertices = [
        (2 * i, 2 * j) for i in range(GRID + 1) for j in range(GRID + 1)
    ]
    triangles = []
    for i in range(GRID):
        for j in range(GRID):
            a, b = (2 * i, 2 * j), (2 * i + 2, 2 * j)
            c, d = (2 * i, 2 * j + 2), (2 * i + 2, 2 * j + 2)
            # Both triangles of the cell share the circumcircle centered at
            # the cell midpoint with r² = 2 (hypotenuse midpoint rule).
            circumcircle = Circle((2 * i + 1, 2 * j + 1), 2)
            triangles.append(((a, b, c), circumcircle))
            triangles.append(((b, c, d), circumcircle))
    return vertices, triangles


def verify_delaunay(points, triangles, rng) -> list[tuple]:
    """Return the points strictly inside some circumcircle (violations)."""
    space = DataSpace(w=2, t=2 * GRID + 2)
    interior_scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    boundary_scheme = CirclePredicateEncryption(
        space, provision_group(space.boundary_value_bound(), "fast", rng)
    )
    k_in = interior_scheme.gen_key(rng)
    k_on = boundary_scheme.gen_key(rng)

    # The point set is encrypted once, under both keys.
    encrypted = [
        (p, interior_scheme.encrypt(k_in, p, rng),
         boundary_scheme.encrypt(k_on, p, rng))
        for p in points
    ]

    violations = []
    seen_circles = set()
    for _, circumcircle in triangles:
        if circumcircle in seen_circles:
            continue  # shared circumcircles need only one pair of tokens
        seen_circles.add(circumcircle)
        inside_token = interior_scheme.gen_token(k_in, circumcircle, rng)
        boundary_token = boundary_scheme.gen_token(k_on, circumcircle, rng)
        for point, ct_in, ct_on in encrypted:
            inside = interior_scheme.matches(inside_token, ct_in)
            on_boundary = boundary_scheme.query(boundary_token, ct_on)
            if inside and not on_boundary:
                violations.append((point, circumcircle))
    return violations


def main() -> None:
    rng = random.Random(3)
    vertices, triangles = grid_triangulation()
    print(f"triangulation: {len(triangles)} triangles over "
          f"{len(vertices)} grid vertices")

    violations = verify_delaunay(vertices, triangles, rng)
    print(f"clean grid: {len(violations)} circumcircle violations "
          f"→ {'Delaunay ✓' if not violations else 'NOT Delaunay'}")
    assert not violations

    # Inject a point at a cell midpoint: strictly inside that cell's
    # circumcircle (distance 0 < r), so the triangulation stops being
    # Delaunay until it is re-triangulated around the new point.
    rogue = (3, 3)
    violations = verify_delaunay(vertices + [rogue], triangles, rng)
    print(f"after inserting rogue point {rogue}: "
          f"{len(violations)} violation(s)")
    for point, circle in violations[:3]:
        print(f"  point {point} strictly inside circumcircle "
              f"center={circle.center} r²={circle.r_squared}")
    assert any(p == rogue for p, _ in violations)
    print("the cloud performed every in-circle test on ciphertexts only")


if __name__ == "__main__":
    main()
