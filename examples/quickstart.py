"""Quickstart: outsource an encrypted spatial dataset and run one circular
range query — the paper's Fig. 2 flow end to end.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    Circle,
    CloudDeployment,
    CRSE2Scheme,
    DataSpace,
    group_for_crse2,
)


def main() -> None:
    rng = random.Random(7)

    # 1. The data owner fixes the data space Δ²_T and provisions a
    #    composite-order bilinear group sized for it.  backend="pairing"
    #    uses the real supersingular curve; "fast" runs the algebraically
    #    identical simulation at Python speed.
    space = DataSpace(w=2, t=1024)
    scheme = CRSE2Scheme(space, group_for_crse2(space, backend="fast", rng=rng))

    # 2. Stand up the three principals: data owner, cloud server, data user.
    cloud = CloudDeployment.create(scheme, rng=rng)

    # 3. The owner encrypts its point records and uploads them (flow 1).
    points = [(100, 200), (105, 205), (110, 190), (500, 500), (900, 900)]
    upload_bytes = cloud.outsource(points)
    print(f"outsourced {len(points)} encrypted records "
          f"({upload_bytes} bytes on the wire)")

    # 4. A data user runs a circular range query (flows 2-5): one round
    #    with the untrusted server, which learns only the Boolean results.
    query = Circle.from_radius(center=(101, 201), radius=10)
    matches = cloud.query_points(query)
    print(f"query: circle center={query.center} radius={query.integer_radius()}")
    print(f"matches: {sorted(matches)}")
    assert sorted(matches) == [(100, 200), (105, 205)]

    # 5. What the curious server observed (the paper's leakage function).
    log = cloud.server.log
    print(f"server saw: {log.records_stored} records, "
          f"{log.queries_served} queries, "
          f"sub-token counts {log.sub_token_counts} (the radius pattern), "
          f"access pattern {log.access_pattern}")
    print(f"rounds with the server per query: {cloud.user.server_round_trips}")


if __name__ == "__main__":
    main()
