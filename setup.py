"""Setuptools shim for environments without PEP 660 editable-install support.

The canonical metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` / legacy ``pip install -e .`` on toolchains
missing the ``wheel`` package.
"""

from setuptools import setup

setup()
