"""Tests for operation counting and the EC2 cost model.

The formulas in repro.analysis.opcount are verified *dynamically*: the SSW
algorithms run against an instrumented fast group that counts every pairing,
exponentiation, and multiplication, and the counts must match exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import pytest

from repro.analysis.opcount import (
    OpCount,
    crse1_search_record_ops,
    crse2_encrypt_ops,
    crse2_gen_token_ops,
    crse2_search_record_ops,
    ssw_encrypt_ops,
    ssw_gen_token_ops,
    ssw_query_ops,
    ssw_setup_ops,
)
from repro.cloud.costmodel import PAPER_EC2_MODEL, CostModel, measure_calibration
from repro.crypto.groups.fastgroup import (
    FastCompositeGroup,
    FastElement,
    FastTargetElement,
)
from repro.crypto.groups.params import default_test_params
from repro.crypto.ssw import ssw_encrypt, ssw_gen_token, ssw_query, ssw_setup


@dataclass
class _Counts:
    pairings: int = 0
    exponentiations: int = 0
    multiplications: int = 0
    final_exps: int = 0


@pytest.fixture
def counted(monkeypatch):
    """An instrumented fast group plus its live operation counters."""
    group = FastCompositeGroup(default_test_params().subgroup_primes)
    counts = _Counts()
    original_pair = FastCompositeGroup.pair
    original_multi_pair = FastCompositeGroup.multi_pair
    original_pow = FastElement._pow
    original_mul = FastElement._mul

    def counting_pair(self, a, b):
        counts.pairings += 1
        return original_pair(self, a, b)

    def counting_multi_pair(self, pairs):
        # One Miller loop per pair, one shared final exponentiation —
        # mirrors the op classes ssw_query_ops accounts for.
        pairs = list(pairs)
        counts.pairings += len(pairs)
        counts.final_exps += 1
        return original_multi_pair(self, pairs)

    def counting_pow(self, exponent):
        counts.exponentiations += 1
        return original_pow(self, exponent)

    def counting_mul(self, other):
        counts.multiplications += 1
        return original_mul(self, other)

    monkeypatch.setattr(FastCompositeGroup, "pair", counting_pair)
    monkeypatch.setattr(FastCompositeGroup, "multi_pair", counting_multi_pair)
    monkeypatch.setattr(FastElement, "_pow", counting_pow)
    monkeypatch.setattr(FastElement, "_mul", counting_mul)
    return group, counts


class TestDynamicVerification:
    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_setup_count(self, counted, n):
        group, counts = counted
        ssw_setup(group, n, random.Random(1))
        assert counts.exponentiations == ssw_setup_ops(n).exponentiations

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_encrypt_count(self, counted, n):
        group, counts = counted
        key = ssw_setup(group, n, random.Random(1))
        counts.exponentiations = counts.multiplications = 0
        ssw_encrypt(key, list(range(n)), random.Random(2))
        expected = ssw_encrypt_ops(n)
        assert counts.exponentiations == expected.exponentiations
        assert counts.multiplications == expected.multiplications

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_gen_token_count(self, counted, n):
        group, counts = counted
        key = ssw_setup(group, n, random.Random(1))
        counts.exponentiations = counts.multiplications = 0
        ssw_gen_token(key, list(range(n)), random.Random(2))
        expected = ssw_gen_token_ops(n)
        assert counts.exponentiations == expected.exponentiations
        assert counts.multiplications == expected.multiplications

    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_query_count(self, counted, n):
        group, counts = counted
        key = ssw_setup(group, n, random.Random(1))
        ct = ssw_encrypt(key, list(range(n)), random.Random(2))
        tk = ssw_gen_token(key, [0] * n, random.Random(3))
        counts.pairings = counts.final_exps = 0
        ssw_query(tk, ct)
        expected = ssw_query_ops(n)
        assert counts.pairings == expected.pairings
        assert counts.final_exps == expected.final_exps == 1


class TestOpCountAlgebra:
    def test_add_and_scale(self):
        a = OpCount(1, 2, 3, 4)
        b = OpCount(10, 20, 30, 40)
        assert a + b == OpCount(11, 22, 33, 44)
        assert 3 * a == OpCount(3, 6, 9, 12) == a * 3

    def test_query_shares_one_final_exponentiation(self):
        # 2n + 2 Miller loops, but the product-of-pairings evaluation pays
        # a single final exponentiation regardless of the vector length.
        assert ssw_query_ops(4).final_exps == 1
        assert crse2_search_record_ops(3, 2).final_exps == 3

    def test_crse2_composition(self):
        assert crse2_encrypt_ops(2) == ssw_encrypt_ops(4)
        assert crse2_gen_token_ops(5, 2) == 5 * ssw_gen_token_ops(4)
        assert crse2_search_record_ops(3, 2) == 3 * ssw_query_ops(4)
        assert crse1_search_record_ops(10) == ssw_query_ops(10)


class TestCostModel:
    def test_paper_model_reproduces_search_time(self):
        # R = 10 → m = 44, average hit after m/2 = 22 sub-tokens:
        # 22 × 10 pairings × 0.44 ms ≈ 97 ms (paper: 98.65 ms).
        ops = crse2_search_record_ops(evaluated=22, w=2)
        assert PAPER_EC2_MODEL.time_ms(ops) == pytest.approx(98.65, rel=0.05)

    def test_paper_model_reproduces_encrypt_time(self):
        # Paper Fig. 10: CRSE-II encryption ≈ 5.61 ms.
        ms = PAPER_EC2_MODEL.time_ms(crse2_encrypt_ops(2))
        assert ms == pytest.approx(5.61, rel=0.15)

    def test_paper_model_reproduces_token_time(self):
        # Paper: 329.47 ms for m = 44 at R = 10.
        ms = PAPER_EC2_MODEL.time_ms(crse2_gen_token_ops(44, 2))
        assert ms == pytest.approx(329.47, rel=0.15)

    def test_time_units(self):
        model = CostModel(1.0, 1.0, 1.0)
        assert model.time_s(OpCount(1000, 0, 0)) == pytest.approx(1.0)

    def test_final_exp_priced_separately(self):
        model = CostModel(1.0, 0.0, 0.0, final_exp_ms=5.0)
        assert model.time_ms(OpCount(pairings=10, final_exps=1)) == 15.0
        # The paper model prices complete pairings, so the shared final
        # exponentiation must not be double-charged there.
        assert PAPER_EC2_MODEL.final_exp_ms == 0.0

    def test_measure_calibration_runs(self):
        group = FastCompositeGroup(default_test_params().subgroup_primes)
        model = measure_calibration(group, repetitions=5)
        assert model.pairing_ms >= 0
        assert model.label == "FastCompositeGroup"
