"""The load-generation subsystem: recorder accuracy, runners, reports.

The recorder tests pin the HDR contract down numerically (exact below
128 µs, < 1/128 relative error above, exact min/max/mean).  The runner
tests drive a real :class:`~repro.service.server.ServiceServer` through
an :class:`~repro.service.aio.AsyncServiceClient` in both loop modes and
check zero-failure completion plus per-query result parity with the
blocking client.  Error-path tests use a deliberately broken fake client
so every outcome class (busy, deadline, failed) is observed.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.cloud.codec import encode_ciphertext
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import DataSpace
from repro.core.provision import group_for_crse2
from repro.datasets.workload import generate_query_stream
from repro.errors import (
    DeadlineExceededError,
    ParameterError,
    ServiceBusyError,
    ServiceError,
)
from repro.loadgen import (
    LatencyRecorder,
    render_report,
    render_sweep,
    run_closed_loop,
    run_open_loop,
    saturation_sweep,
    tokens_for_queries,
)
from repro.service import (
    AsyncServiceClient,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)


class TestLatencyRecorder:
    def test_small_values_exact(self):
        recorder = LatencyRecorder()
        for us in (1, 5, 42, 127):
            recorder.record(us / 1e6)
        assert recorder.count == 4
        assert recorder.min_ms == pytest.approx(0.001)
        assert recorder.max_ms == pytest.approx(0.127)
        assert recorder.percentile_ms(0.25) == pytest.approx(0.001)
        assert recorder.percentile_ms(1.0) == pytest.approx(0.127)

    def test_relative_error_bounded_across_magnitudes(self):
        rng = random.Random(0x11D8)
        for _ in range(200):
            # Values from microseconds to tens of seconds.
            seconds = 10 ** rng.uniform(-6, 1.5)
            recorder = LatencyRecorder()
            recorder.record(seconds)
            reported_ms = recorder.percentile_ms(0.5)
            assert reported_ms == pytest.approx(
                seconds * 1000.0, rel=1 / 128, abs=1e-3
            )

    def test_percentiles_on_known_distribution(self):
        recorder = LatencyRecorder()
        # 1..100 ms, one sample each: pN must sit within bucket error
        # of N ms.
        for ms in range(1, 101):
            recorder.record(ms / 1000.0)
        assert recorder.percentile_ms(0.50) == pytest.approx(50, rel=0.02)
        assert recorder.percentile_ms(0.95) == pytest.approx(95, rel=0.02)
        assert recorder.percentile_ms(0.99) == pytest.approx(99, rel=0.02)
        assert recorder.mean_ms == pytest.approx(50.5, rel=0.001)

    def test_merge_equals_single_recorder(self):
        rng = random.Random(0x11D9)
        samples = [rng.uniform(0, 0.2) for _ in range(500)]
        one = LatencyRecorder()
        left, right = LatencyRecorder(), LatencyRecorder()
        for index, sample in enumerate(samples):
            one.record(sample)
            (left if index % 2 else right).record(sample)
        left.merge(right)
        assert left.to_dict() == one.to_dict()

    def test_invalid_inputs_rejected(self):
        recorder = LatencyRecorder()
        with pytest.raises(ParameterError):
            recorder.record(-0.001)
        with pytest.raises(ParameterError):
            recorder.percentile_ms(0.0)
        with pytest.raises(ParameterError):
            recorder.percentile_ms(1.5)

    def test_empty_recorder_reads_zero(self):
        recorder = LatencyRecorder()
        assert recorder.percentile_ms(0.99) == 0.0
        assert recorder.to_dict()["count"] == 0
        assert recorder.mean_ms == 0.0


@pytest.fixture(scope="module")
def loaded_service():
    """A live single-host service with a small dataset, plus the tokens
    and the blocking client's per-query results for parity checks."""
    rng = random.Random(0x10AD)
    space = DataSpace(2, 16)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    records = tuple(
        UploadRecord(
            identifier=index,
            payload=encode_ciphertext(
                scheme,
                scheme.encrypt(
                    key,
                    tuple(rng.randrange(space.t) for _ in range(2)),
                    rng,
                ),
            ),
        )
        for index in range(6)
    )
    queries = generate_query_stream(space, 24, random.Random(2))
    payloads = tokens_for_queries(scheme, key, queries, random.Random(3))
    server = ServiceServer(scheme, ServiceConfig(workers=1, max_pending=64))
    with ServerThread(server) as thread:
        with ServiceClient("127.0.0.1", thread.port) as blocking:
            blocking.upload(UploadDataset(records=records))
            expected = [
                tuple(sorted(blocking.search(p)[0].identifiers))
                for p in payloads
            ]
        yield thread.port, payloads, expected


class TestRunnersAgainstService:
    def run(self, coro_factory, port):
        async def scenario():
            async with AsyncServiceClient(
                "127.0.0.1", port, max_in_flight=32
            ) as client:
                return await coro_factory(client)

        return asyncio.run(scenario())

    def test_closed_loop_completes_with_parity(self, loaded_service):
        port, payloads, expected = loaded_service
        result = self.run(
            lambda client: run_closed_loop(
                client, payloads, concurrency=4, collect_results=True
            ),
            port,
        )
        assert result.ok == len(payloads)
        assert result.busy == result.deadline == result.failed == 0
        assert result.results == expected
        assert result.latency.count == len(payloads)
        assert result.qps > 0

    def test_closed_loop_batched_parity(self, loaded_service):
        port, payloads, expected = loaded_service
        result = self.run(
            lambda client: run_closed_loop(
                client,
                payloads,
                concurrency=3,
                batch=4,
                collect_results=True,
            ),
            port,
        )
        assert result.ok == len(payloads)
        assert result.failed == 0
        assert result.results == expected

    def test_open_loop_completes_with_parity(self, loaded_service):
        port, payloads, expected = loaded_service
        result = self.run(
            lambda client: run_open_loop(
                client, payloads, rate_qps=400.0, collect_results=True
            ),
            port,
        )
        assert result.ok == len(payloads)
        assert result.failed == 0
        assert result.results == expected
        # The schedule alone takes requested/rate seconds.
        assert result.elapsed_s >= (len(payloads) - 1) / 400.0

    def test_saturation_sweep_levels(self, loaded_service):
        port, payloads, _ = loaded_service
        results = self.run(
            lambda client: saturation_sweep(
                client, payloads, concurrency_levels=[1, 4]
            ),
            port,
        )
        assert [r.concurrency for r in results] == [1, 4]
        assert all(r.ok == len(payloads) for r in results)
        table = render_sweep(results)
        assert "conc" in table and "qps" in table
        assert len(table.splitlines()) == 3

    def test_parameter_validation(self, loaded_service):
        port, payloads, _ = loaded_service

        async def scenario():
            client = AsyncServiceClient("127.0.0.1", port)
            with pytest.raises(ParameterError):
                await run_closed_loop(client, payloads, concurrency=0)
            with pytest.raises(ParameterError):
                await run_closed_loop(
                    client, payloads, concurrency=1, batch=0
                )
            with pytest.raises(ParameterError):
                await run_closed_loop(client, [], concurrency=1)
            with pytest.raises(ParameterError):
                await run_open_loop(client, payloads, rate_qps=0.0)
            await client.close()

        asyncio.run(scenario())


class FailingClient:
    """Scripted outcomes per query index, for error accounting tests."""

    def __init__(self, outcomes):
        self.outcomes = outcomes

    async def search(self, payload, deadline_ms=None):
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestFailureAccounting:
    def test_outcome_classes_counted(self):
        class FakeResponse:
            identifiers = (7,)

        outcomes = [
            (FakeResponse(), {}),
            ServiceBusyError("saturated"),
            DeadlineExceededError("too slow"),
            ServiceError("boom"),
        ]
        result = asyncio.run(
            run_closed_loop(
                FailingClient(outcomes),
                [b"t1", b"t2", b"t3", b"t4"],
                concurrency=1,
                collect_results=True,
            )
        )
        assert (result.ok, result.busy, result.deadline, result.failed) == (
            1,
            1,
            1,
            1,
        )
        assert result.results[0] == (7,)
        assert result.results[1] is None
        assert len(result.error_samples) == 3

    def test_report_renders_greppable_line(self):
        class FakeResponse:
            identifiers = ()

        outcomes = [(FakeResponse(), {}), ServiceError("boom")]
        result = asyncio.run(
            run_closed_loop(
                FailingClient(outcomes), [b"t1", b"t2"], concurrency=1
            )
        )
        report = render_report(result)
        first = report.splitlines()[0]
        assert "mode=closed" in first
        assert "ok=1" in first
        assert "failed=1" in first
        assert "latency_ms p50=" in report
        assert "ServiceError: boom" in report
