"""Tests for the SSW predicate encryption scheme."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.params import default_test_params, toy_params
from repro.crypto.ssw import (
    ssw_encrypt,
    ssw_gen_token,
    ssw_query,
    ssw_query_element_count,
    ssw_query_pairing_count,
    ssw_setup,
)
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def fast_group_40() -> FastCompositeGroup:
    """Fast backend with a 40-bit payload prime (negligible false matches)."""
    return FastCompositeGroup(default_test_params().subgroup_primes)


@pytest.fixture(scope="module")
def key4(fast_group_40):
    return ssw_setup(fast_group_40, 4, random.Random(1))


class TestCorrectnessFast:
    def test_zero_inner_product_matches(self, key4, rng):
        ct = ssw_encrypt(key4, (8, -4, -4, 1), rng)
        tk = ssw_gen_token(key4, (1, 3, 2, 12), rng)
        assert ssw_query(tk, ct) is True

    def test_nonzero_inner_product_rejects(self, key4, rng):
        ct = ssw_encrypt(key4, (10, -2, -6, 1), rng)
        tk = ssw_gen_token(key4, (1, 3, 2, 12), rng)
        assert ssw_query(tk, ct) is False

    @settings(max_examples=30, deadline=None)
    @given(
        x=st.lists(st.integers(-50, 50), min_size=4, max_size=4),
        v=st.lists(st.integers(-50, 50), min_size=4, max_size=4),
    )
    def test_matches_inner_product(self, key4, x, v):
        rng = random.Random(hash((tuple(x), tuple(v))) & 0xFFFF)
        ct = ssw_encrypt(key4, x, rng)
        tk = ssw_gen_token(key4, v, rng)
        expected = sum(a * b for a, b in zip(x, v)) == 0
        assert ssw_query(tk, ct) == expected

    def test_orthogonal_basis_vectors(self, key4, rng):
        ct = ssw_encrypt(key4, (1, 0, 0, 0), rng)
        tk = ssw_gen_token(key4, (0, 1, 0, 0), rng)
        assert ssw_query(tk, ct) is True

    def test_zero_vector_matches_everything(self, key4, rng):
        tk = ssw_gen_token(key4, (0, 0, 0, 0), rng)
        for x in ((1, 2, 3, 4), (0, 0, 0, 0), (-5, 5, -5, 5)):
            assert ssw_query(tk, ssw_encrypt(key4, x, rng))

    def test_negative_entries_reduced_mod_order(self, key4, rng, fast_group_40):
        n = fast_group_40.order
        ct = ssw_encrypt(key4, (8 - n, -4 + n, -4, 1), rng)
        tk = ssw_gen_token(key4, (1, 3 + n, 2, 12 - n), rng)
        assert ssw_query(tk, ct) is True


class TestCorrectnessPairing:
    """The same behaviour on the real curve backend."""

    def test_paper_worked_example(self, pairing_group):
        rng = random.Random(3)
        key = ssw_setup(pairing_group, 4, rng)
        tk = ssw_gen_token(key, (1, 3, 2, 12), rng)
        assert ssw_query(tk, ssw_encrypt(key, (8, -4, -4, 1), rng))
        assert not ssw_query(tk, ssw_encrypt(key, (10, -2, -6, 1), rng))

    def test_randomized_ciphertexts_differ(self, pairing_group):
        rng = random.Random(4)
        key = ssw_setup(pairing_group, 2, rng)
        c1 = ssw_encrypt(key, (1, 2), rng)
        c2 = ssw_encrypt(key, (1, 2), rng)
        assert c1.elements() != c2.elements()
        tk = ssw_gen_token(key, (2, -1), rng)
        assert ssw_query(tk, c1) and ssw_query(tk, c2)


class TestStructure:
    def test_ciphertext_element_count(self, key4, rng):
        ct = ssw_encrypt(key4, (1, 2, 3, 4), rng)
        assert len(ct.elements()) == ssw_query_element_count(4) == 10
        assert ct.n == 4

    def test_token_element_count(self, key4, rng):
        tk = ssw_gen_token(key4, (1, 2, 3, 4), rng)
        assert len(tk.elements()) == 10
        assert tk.n == 4

    def test_pairing_count_formula(self):
        assert ssw_query_pairing_count(4) == 10
        assert ssw_query_pairing_count(10) == 22


class TestMisuse:
    def test_wrong_vector_length(self, key4, rng):
        with pytest.raises(CryptoError):
            ssw_encrypt(key4, (1, 2, 3), rng)
        with pytest.raises(CryptoError):
            ssw_gen_token(key4, (1, 2, 3, 4, 5), rng)

    def test_length_mismatch_at_query(self, fast_group_40, rng):
        k4 = ssw_setup(fast_group_40, 4, rng)
        k3 = ssw_setup(fast_group_40, 3, rng)
        ct = ssw_encrypt(k4, (1, 2, 3, 4), rng)
        tk = ssw_gen_token(k3, (1, 2, 3), rng)
        with pytest.raises(CryptoError):
            ssw_query(tk, ct)

    def test_zero_length_setup_rejected(self, fast_group_40, rng):
        with pytest.raises(CryptoError):
            ssw_setup(fast_group_40, 0, rng)

    def test_wrong_key_rejects_match(self, fast_group_40, rng):
        key_a = ssw_setup(fast_group_40, 4, random.Random(10))
        key_b = ssw_setup(fast_group_40, 4, random.Random(20))
        ct = ssw_encrypt(key_a, (8, -4, -4, 1), rng)
        tk = ssw_gen_token(key_b, (1, 3, 2, 12), rng)
        # Same inner product, but under a different key: no match.
        assert ssw_query(tk, ct) is False


class TestSecurityMechanics:
    """Structural properties a curious server could otherwise exploit."""

    def test_tokens_are_randomized(self, key4, rng):
        t1 = ssw_gen_token(key4, (1, 3, 2, 12), rng)
        t2 = ssw_gen_token(key4, (1, 3, 2, 12), rng)
        assert t1.elements() != t2.elements()

    def test_scaled_vectors_both_match(self, key4, rng):
        # (x ∘ v) = 0 implies (x ∘ cv) = 0: predicate is projective.
        ct = ssw_encrypt(key4, (8, -4, -4, 1), rng)
        assert ssw_query(ssw_gen_token(key4, (2, 6, 4, 24), rng), ct)
