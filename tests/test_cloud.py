"""Tests for the simulated cloud deployment (repro.cloud)."""

from __future__ import annotations

import random

import pytest

from repro.cloud.codec import (
    decode_ciphertext,
    decode_token,
    encode_ciphertext,
    encode_token,
)
from repro.cloud.deployment import CloudDeployment
from repro.cloud.messages import (
    QueryRequest,
    SearchRequest,
    UploadDataset,
    UploadRecord,
)
from repro.cloud.network import Channel, LatencyModel
from repro.cloud.server import CloudServer
from repro.core.crse1 import CRSE1Scheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse1, group_for_crse2
from repro.errors import ProtocolError, SerializationError


@pytest.fixture(scope="module")
def deployment():
    rng = random.Random(61)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    dep = CloudDeployment.create(scheme, rng=rng)
    points = [(rng.randrange(32), rng.randrange(32)) for _ in range(30)]
    dep.outsource(points)
    return dep, points


class TestEndToEnd:
    def test_query_returns_exact_matches(self, deployment):
        dep, points = deployment
        q = Circle.from_radius((16, 16), 5)
        result = dep.query_points(q)
        expected = sorted(p for p in points if point_in_circle(p, q))
        assert sorted(result) == expected

    def test_one_round_per_query(self, deployment):
        dep, _ = deployment
        before = dep.server_channel.stats.messages
        dep.query(Circle.from_radius((10, 10), 2))
        after = dep.server_channel.stats.messages
        assert after - before == 2  # one request + one response

    def test_byte_accounting_grows_with_radius(self, deployment):
        dep, _ = deployment
        dep.server_channel.reset_stats()
        dep.query(Circle.from_radius((16, 16), 1))
        small = dep.server_channel.stats.bytes_sent
        dep.server_channel.reset_stats()
        dep.query(Circle.from_radius((16, 16), 5))
        large = dep.server_channel.stats.bytes_sent
        assert large > small  # token grows with m ~ R²

    def test_server_leakage_log(self, deployment):
        dep, _ = deployment
        q = Circle.from_radius((16, 16), 2)
        dep.query(q)
        log = dep.server.log
        assert log.records_stored == 30
        assert log.queries_served >= 1
        # Radius pattern: the sub-token count reveals m (here m(R=2) = 4).
        assert log.sub_token_counts[-1] == 4

    def test_radius_hiding_masks_sub_token_count(self, deployment):
        dep, _ = deployment
        dep.query(Circle.from_radius((16, 16), 1), hide_radius_to=15)
        dep.query(Circle.from_radius((16, 16), 3), hide_radius_to=15)
        assert dep.server.log.sub_token_counts[-2:] == [15, 15]

    def test_search_stats_exposed(self, deployment):
        dep, _ = deployment
        dep.query(Circle.from_radius((16, 16), 2))
        stats = dep.server.last_search_stats
        assert stats.records_scanned == 30
        assert stats.sub_token_evaluations >= 30  # at least one per record


class TestParallelSearch:
    def test_partitioned_results_match_serial(self, deployment):
        dep, points = deployment
        q = Circle.from_radius((16, 16), 5)
        token_payload = dep.owner.handle_query(QueryRequest(circle=q)).payload
        request = SearchRequest(payload=token_payload)
        serial = dep.server.handle_search(request)
        for instances in (1, 2, 4, 7):
            parallel, stats = dep.server.parallel_search(request, instances)
            assert sorted(parallel.identifiers) == sorted(serial.identifiers)
            assert stats.elapsed_ms >= 0
            assert len(stats.partitions) == instances
            assert stats.elapsed_ms == max(stats.partitions)

    def test_leakage_log_matches_serial_path(self, deployment):
        dep, _ = deployment
        q = Circle.from_radius((16, 16), 4)
        token_payload = dep.owner.handle_query(QueryRequest(circle=q)).payload
        request = SearchRequest(payload=token_payload)
        dep.server.handle_search(request)
        serial_stats = dep.server.last_search_stats
        queries, sizes, subs, access = (
            dep.server.log.queries_served,
            list(dep.server.log.token_sizes),
            list(dep.server.log.sub_token_counts),
            list(dep.server.log.access_pattern),
        )
        _, parallel_stats = dep.server.parallel_search(request, 3)
        # The recorded leakage function is identical on both paths.
        assert dep.server.log.queries_served == queries + 1
        assert dep.server.log.token_sizes == sizes + [request.size_bytes]
        assert dep.server.log.sub_token_counts == subs + [subs[-1]]
        assert dep.server.log.access_pattern[-1] == tuple(
            sorted(access[-1])
        )
        # CRSE-II early-exit accounting is preserved when partitioned.
        assert (
            parallel_stats.sub_token_evaluations
            == serial_stats.sub_token_evaluations
        )
        assert parallel_stats.records_scanned == serial_stats.records_scanned
        assert parallel_stats.matches == serial_stats.matches

    def test_zero_instances_rejected(self, deployment):
        dep, _ = deployment
        with pytest.raises(ProtocolError):
            dep.server.parallel_search(SearchRequest(payload=b""), 0)


class TestServerValidation:
    def test_duplicate_identifiers_rejected(self):
        rng = random.Random(62)
        space = DataSpace(2, 8)
        scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
        key = scheme.gen_key(rng)
        server = CloudServer(scheme)
        payload = encode_ciphertext(scheme, scheme.encrypt(key, (1, 1), rng))
        upload = UploadDataset(
            records=(
                UploadRecord(identifier=0, payload=payload),
                UploadRecord(identifier=0, payload=payload),
            )
        )
        with pytest.raises(ProtocolError):
            server.handle_upload(upload)

    def test_malformed_token_rejected(self, deployment):
        dep, _ = deployment
        with pytest.raises(SerializationError):
            dep.server.handle_search(SearchRequest(payload=b"\x00\x01garbage"))


class TestChannel:
    def test_latency_model(self):
        channel = Channel("test", LatencyModel(rtt_ms=10.0, bandwidth_mbps=8.0))
        message = SearchRequest(payload=b"x" * 1000)
        channel.deliver(message)
        assert channel.stats.messages == 1
        assert channel.stats.bytes_sent == 1000
        # 10 ms RTT + 8000 bits / 8000 bits-per-ms = 11 ms.
        assert channel.stats.simulated_ms == pytest.approx(11.0)

    def test_reset(self):
        channel = Channel("test")
        channel.deliver(SearchRequest(payload=b"abc"))
        channel.reset_stats()
        assert channel.stats.messages == 0


class TestCodec:
    def test_crse1_roundtrip(self):
        rng = random.Random(63)
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space, group_for_crse1(space, 1, "fast", rng), r_squared=1
        )
        key = scheme.gen_key(rng)
        ct = scheme.encrypt(key, (3, 3), rng)
        token = scheme.gen_token(key, Circle.from_radius((3, 3), 1), rng)
        ct2 = decode_ciphertext(scheme, encode_ciphertext(scheme, ct))
        tok2 = decode_token(scheme, encode_token(scheme, token))
        assert scheme.matches(tok2, ct2)

    def test_crse2_token_preserves_permuted_order(self, deployment):
        dep, _ = deployment
        scheme = dep.scheme
        rng = random.Random(64)
        key = dep.owner._key
        token = scheme.gen_token(key, Circle.from_radius((16, 16), 2), rng)
        restored = decode_token(scheme, encode_token(scheme, token))
        assert [t.elements() for t in restored.sub_tokens] == [
            t.elements() for t in token.sub_tokens
        ]

    def test_truncated_crse2_token(self, deployment):
        dep, _ = deployment
        with pytest.raises(SerializationError):
            decode_token(dep.scheme, b"\x00")

    def test_zero_count_token(self, deployment):
        dep, _ = deployment
        with pytest.raises(SerializationError):
            decode_token(dep.scheme, b"\x00\x00")


class TestOwner:
    def test_crse1_rejects_per_query_hiding(self):
        rng = random.Random(65)
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space, group_for_crse1(space, 1, "fast", rng), r_squared=1
        )
        dep = CloudDeployment.create(scheme, rng=rng)
        dep.outsource([(1, 1)])
        with pytest.raises(ProtocolError):
            dep.query(Circle.from_radius((1, 1), 1), hide_radius_to=5)

    def test_resolve(self, deployment):
        dep, points = deployment
        assert dep.owner.resolve([0, 2]) == [points[0], points[2]]
