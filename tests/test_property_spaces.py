"""Property tests across randomly sized data spaces.

The rest of the suite pins a handful of fixed spaces; here hypothesis picks
the space, the query, and the points, and the schemes must agree with the
plaintext predicates every time.  Groups are provisioned per space size
from a deterministic seed so example shrinking stays reproducible.
"""

from __future__ import annotations

import random
from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2
from repro.crypto.serialize import ElementSizeModel


@lru_cache(maxsize=None)
def _scheme_for(t: int, w: int):
    rng = random.Random(t * 31 + w)
    space = DataSpace(w, t)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    return scheme, key


@settings(max_examples=25, deadline=None)
@given(
    t=st.integers(4, 48),
    data=st.data(),
)
def test_crse2_matches_predicate_on_random_2d_spaces(t, data):
    scheme, key = _scheme_for(t, 2)
    coord = st.integers(0, t - 1)
    point = data.draw(st.tuples(coord, coord))
    center = data.draw(st.tuples(coord, coord))
    radius = data.draw(st.integers(0, max(1, t // 4)))
    rng = random.Random(hash((t, point, center, radius)) & 0xFFFFF)
    circle = Circle.from_radius(center, radius)
    token = scheme.gen_token(key, circle, rng)
    ciphertext = scheme.encrypt(key, point, rng)
    assert scheme.matches(token, ciphertext) == point_in_circle(point, circle)


@settings(max_examples=10, deadline=None)
@given(t=st.integers(4, 12), data=st.data())
def test_crse2_matches_predicate_on_random_3d_spaces(t, data):
    scheme, key = _scheme_for(t, 3)
    coord = st.integers(0, t - 1)
    point = data.draw(st.tuples(coord, coord, coord))
    center = data.draw(st.tuples(coord, coord, coord))
    radius = data.draw(st.integers(0, 2))
    rng = random.Random(hash((t, point, center, radius)) & 0xFFFFF)
    circle = Circle.from_radius(center, radius)
    token = scheme.gen_token(key, circle, rng)
    ciphertext = scheme.encrypt(key, point, rng)
    assert scheme.matches(token, ciphertext) == point_in_circle(point, circle)


@settings(max_examples=15, deadline=None)
@given(t=st.integers(4, 48), data=st.data())
def test_token_sizes_follow_size_model_on_random_spaces(t, data):
    from repro.cloud.codec import encode_token
    from repro.core.concircles import num_concentric_circles

    scheme, key = _scheme_for(t, 2)
    coord = st.integers(0, t - 1)
    center = data.draw(st.tuples(coord, coord))
    radius = data.draw(st.integers(0, max(1, t // 4)))
    rng = random.Random(hash((t, center, radius, "size")) & 0xFFFFF)
    token = scheme.gen_token(key, Circle.from_radius(center, radius), rng)
    m = num_concentric_circles(radius * radius)
    model = ElementSizeModel.for_group(scheme.group)
    # Wire layout: 2-byte sub-token count + m framed SSW objects.
    expected = 2 + m * (model.ssw_object_bytes(4) + 2)
    assert len(encode_token(scheme, token)) == expected
