"""Tests for the OPE cipher and the rectangular-range baseline."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ope import OPECipher
from repro.baselines.rect_range import OPERectangularScheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.errors import CryptoError, ParameterError


class TestOPECipher:
    def test_order_preserved(self):
        cipher = OPECipher(key=7, domain_size=500)
        previous = -1
        for x in range(500):
            ct = cipher.encrypt(x)
            assert ct > previous
            previous = ct

    def test_roundtrip(self):
        cipher = OPECipher(key=3, domain_size=200)
        for x in (0, 1, 57, 199):
            assert cipher.decrypt(cipher.encrypt(x)) == x

    def test_deterministic_per_key(self):
        a = OPECipher(key=9, domain_size=100)
        b = OPECipher(key=9, domain_size=100)
        c = OPECipher(key=10, domain_size=100)
        assert all(a.encrypt(x) == b.encrypt(x) for x in range(100))
        assert any(a.encrypt(x) != c.encrypt(x) for x in range(100))

    def test_domain_validation(self):
        cipher = OPECipher(key=1, domain_size=10)
        with pytest.raises(CryptoError):
            cipher.encrypt(10)
        with pytest.raises(CryptoError):
            cipher.encrypt(-1)
        with pytest.raises(ParameterError):
            OPECipher(key=1, domain_size=0)

    def test_invalid_ciphertext_rejected(self):
        cipher = OPECipher(key=1, domain_size=10)
        with pytest.raises(CryptoError):
            cipher.decrypt(cipher.encrypt(5) + 1)

    @given(st.integers(0, 99), st.integers(0, 99))
    def test_comparison_transfer(self, a, b):
        cipher = OPECipher(key=4, domain_size=100)
        assert (a < b) == (cipher.encrypt(a) < cipher.encrypt(b))


class TestRectangularBaseline:
    @pytest.fixture(scope="class")
    def space(self):
        return DataSpace(2, 64)

    def test_no_false_negatives(self, space):
        # The MBR covers the circle: every true match is a candidate.
        rng = random.Random(71)
        points = [(rng.randrange(64), rng.randrange(64)) for _ in range(150)]
        scheme = OPERectangularScheme(space, key=1)
        q = Circle.from_radius((32, 32), 9)
        true_pos, _ = scheme.false_positives(points, q)
        expected = [i for i, p in enumerate(points) if point_in_circle(p, q)]
        assert sorted(true_pos) == expected

    def test_false_positives_exist_and_are_corners(self, space):
        # A dense grid guarantees corner points: in the box, not the circle.
        points = [(x, y) for x in range(20, 45) for y in range(20, 45)]
        scheme = OPERectangularScheme(space, key=2)
        q = Circle.from_radius((32, 32), 10)
        true_pos, false_pos = scheme.false_positives(points, q)
        assert false_pos  # the paper's "many false positives"
        for identifier in false_pos:
            p = points[identifier]
            assert not point_in_circle(p, q)
            assert abs(p[0] - 32) <= 10 and abs(p[1] - 32) <= 10

    def test_false_positive_fraction_near_theory(self, space):
        # Uniform-density corners: 1 - π/4 ≈ 21.5% of the box area.
        points = [(x, y) for x in range(64) for y in range(64)]
        scheme = OPERectangularScheme(space, key=3)
        q = Circle.from_radius((32, 32), 20)
        true_pos, false_pos = scheme.false_positives(points, q)
        fraction = len(false_pos) / (len(false_pos) + len(true_pos))
        assert 0.15 < fraction < 0.27

    def test_irrational_radius_mbr_ceils(self, space):
        # r² = 2 → radius ⌈√2⌉ = 2 on each side.
        scheme = OPERectangularScheme(space, key=4)
        token = scheme.gen_token(Circle((32, 32), 2))
        lows = [OPECipher(key=4000 + d, domain_size=64).decrypt(c) for d, c in enumerate(token.lows)]
        assert lows == [30, 30]

    def test_clamping_at_space_edges(self, space):
        scheme = OPERectangularScheme(space, key=5)
        token = scheme.gen_token(Circle.from_radius((1, 62), 5))
        records = scheme.encrypt_dataset([(0, 63), (10, 63)])
        hits = scheme.server_search(token, records)
        assert hits == [0]

    def test_empty_token_rejected(self):
        from repro.baselines.rect_range import RectToken

        with pytest.raises(ParameterError):
            OPERectangularScheme.server_search(RectToken((), ()), [])
