"""Tests for SSW serialization and the element size model."""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.params import toy_params
from repro.crypto.serialize import (
    PAPER_ELEMENT_BYTES,
    ElementSizeModel,
    deserialize_ciphertext,
    deserialize_token,
    serialize_ciphertext,
    serialize_token,
)
from repro.crypto.ssw import ssw_encrypt, ssw_gen_token, ssw_query, ssw_setup
from repro.errors import SerializationError


@pytest.fixture(scope="module")
def setup():
    group = FastCompositeGroup(toy_params().subgroup_primes)
    rng = random.Random(8)
    key = ssw_setup(group, 4, rng)
    return group, key


class TestRoundTrip:
    def test_ciphertext(self, setup, rng):
        group, key = setup
        ct = ssw_encrypt(key, (8, -4, -4, 1), rng)
        restored = deserialize_ciphertext(group, serialize_ciphertext(group, ct))
        assert restored.elements() == ct.elements()

    def test_token(self, setup, rng):
        group, key = setup
        tk = ssw_gen_token(key, (1, 3, 2, 12), rng)
        restored = deserialize_token(group, serialize_token(group, tk))
        assert restored.elements() == tk.elements()

    def test_restored_objects_still_work(self, setup, rng):
        group, key = setup
        ct = deserialize_ciphertext(
            group, serialize_ciphertext(group, ssw_encrypt(key, (8, -4, -4, 1), rng))
        )
        tk = deserialize_token(
            group, serialize_token(group, ssw_gen_token(key, (1, 3, 2, 12), rng))
        )
        assert ssw_query(tk, ct) is True

    def test_roundtrip_on_pairing_backend(self, pairing_group):
        rng = random.Random(9)
        key = ssw_setup(pairing_group, 3, rng)
        ct = ssw_encrypt(key, (1, -2, 1), rng)
        data = serialize_ciphertext(pairing_group, ct)
        assert deserialize_ciphertext(pairing_group, data).elements() == ct.elements()


class TestMalformedInput:
    def test_truncated(self, setup):
        group, _ = setup
        with pytest.raises(SerializationError):
            deserialize_ciphertext(group, b"\x00")

    def test_wrong_total_length(self, setup, rng):
        group, key = setup
        data = serialize_ciphertext(group, ssw_encrypt(key, (1, 2, 3, 4), rng))
        with pytest.raises(SerializationError):
            deserialize_ciphertext(group, data[:-1])

    def test_odd_element_count(self, setup, rng):
        group, key = setup
        data = bytearray(
            serialize_ciphertext(group, ssw_encrypt(key, (1, 2, 3, 4), rng))
        )
        # Claim 9 elements but supply 10 element bodies: length mismatch.
        data[0:2] = (9).to_bytes(2, "big")
        with pytest.raises(SerializationError):
            deserialize_ciphertext(group, bytes(data))


class TestSizeModel:
    def test_paper_crse2_ciphertext_is_640_bytes(self):
        # Fig. 13: ciphertext = (2α+2)·64 = 640 B at α = 4, 512-bit field.
        model = ElementSizeModel.paper()
        assert model.element_bytes == PAPER_ELEMENT_BYTES == 64
        assert model.crse2_ciphertext_bytes(w=2) == 640

    def test_paper_crse2_token_at_r10_is_28_16_kb(self):
        # Fig. 14: m(R=10) = 44 sub-tokens → 44·640 B = 28.16 KB.
        model = ElementSizeModel.paper()
        assert model.crse2_token_bytes(m=44, w=2) == 28_160

    def test_measured_model_matches_actual_encoding(self, setup, rng):
        group, key = setup
        model = ElementSizeModel.for_group(group)
        ct_bytes = serialize_ciphertext(group, ssw_encrypt(key, (1, 2, 3, 4), rng))
        # 2-byte count prefix on the wire; the model counts elements only.
        assert len(ct_bytes) == model.ssw_object_bytes(4) + 2

    def test_object_bytes_formula(self):
        model = ElementSizeModel(10)
        assert model.ssw_object_bytes(4) == 100
        assert model.crse2_token_bytes(m=3, w=2) == 300
