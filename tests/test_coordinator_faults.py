"""Fault injection for the distributed coordinator.

Three failure families, each asserted to produce *typed* degradation
rather than hangs, crashes, or silent data loss:

* **process death** — a real ``repro serve`` backend is SIGKILLed while a
  search is in flight; the coordinator answers with
  ``SHARD_UNAVAILABLE`` carrying the partial matches the surviving shard
  attested to, and keeps serving afterwards;
* **wire corruption** — a TCP proxy shim truncates a shard's reply frame
  mid-body; the coordinator converts the shard's framing failure into
  the same typed error instead of propagating junk;
* **backpressure storms** — the proxy answers ``BUSY`` N times before
  letting a request through; the per-shard client retries (without
  re-querying shards that already answered — each shard has its own
  client), and an upload whose ack is dropped is *not* blindly retried,
  so it can never double-apply.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.errors import ShardUnavailableError
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    protocol,
)


# ----------------------------------------------------------------------
# Fault-injecting TCP proxy
# ----------------------------------------------------------------------
class FaultProxy:
    """A one-request-per-connection TCP shim in front of a backend.

    Modes:
      * ``"pass"``       — relay request and reply untouched;
      * ``"busy"``       — answer the next ``busy_budget`` requests with a
        retryable BUSY error (without contacting the backend), then pass;
      * ``"truncate"``   — relay the request, then forward only half of
        the backend's reply frame and close the connection;
      * ``"drop_reply"`` — relay the request, let the backend execute it,
        read the reply, and close without forwarding it;
      * ``"stall"``      — read the request and sit on it silently (the
        connection stays open) for ``stall_s`` seconds: a replica that
        is alive but too slow to answer inside any reasonable deadline;
      * ``"partial_write"`` — forge a success ack echoing the request id
        without ever contacting the backend: a replica that acks a
        write and is killed before its commit lands.
    """

    def __init__(
        self,
        backend_port: int,
        mode: str = "pass",
        busy_budget: int = 0,
        stall_s: float = 30.0,
    ):
        self.backend_port = backend_port
        self.mode = mode
        self.busy_budget = busy_budget
        self.stall_s = stall_s
        self.connections = 0
        self.forwarded = 0
        self._lock = threading.Lock()
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._closing = False
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_one, args=(conn,), daemon=True
            ).start()

    def _read_frame(self, sock: socket.socket) -> bytes | None:
        chunks = b""
        while len(chunks) < 4:
            data = sock.recv(4 - len(chunks))
            if not data:
                return None
            chunks += data
        length = int.from_bytes(chunks, "big")
        body = b""
        while len(body) < length:
            data = sock.recv(length - len(body))
            if not data:
                return None
            body += data
        return chunks + body

    def _serve_one(self, conn: socket.socket) -> None:
        try:
            self._serve_request(conn)
        finally:
            # shutdown(), not just close(): backend engines fork worker
            # processes that inherit this fd, so a bare close() would
            # leave the duplicate open and the peer would never see EOF.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    def _serve_request(self, conn: socket.socket) -> None:
        with conn:
            conn.settimeout(10)
            with self._lock:
                self.connections += 1
                mode = self.mode
                if mode == "busy":
                    if self.busy_budget > 0:
                        self.busy_budget -= 1
                    else:
                        mode = "pass"
            request = self._read_frame(conn)
            if request is None:
                return
            if mode == "busy":
                body = protocol.encode_error(
                    0,
                    protocol.ERR_BUSY,
                    "proxy-injected backpressure",
                    retryable=True,
                )
                conn.sendall(len(body).to_bytes(4, "big") + body)
                return
            if mode == "stall":
                deadline = time.monotonic() + self.stall_s
                while time.monotonic() < deadline and not self._closing:
                    time.sleep(0.05)
                return
            if mode == "partial_write":
                decoded = protocol.decode_request(request[4:])
                fields = {}
                if decoded.verb == "upload":
                    fields["stored"] = len(decoded.fields.get("records", ()))
                elif decoded.verb == "delete":
                    fields["removed"] = len(
                        decoded.fields.get("identifiers", ())
                    )
                body = protocol.encode_ok(decoded.request_id, fields)
                conn.sendall(len(body).to_bytes(4, "big") + body)
                return
            upstream = socket.create_connection(
                ("127.0.0.1", self.backend_port), timeout=10
            )
            with upstream:
                upstream.sendall(request)
                reply = self._read_frame(upstream)
            if reply is None:
                return
            with self._lock:
                self.forwarded += 1
            if mode == "truncate":
                conn.sendall(reply[: max(5, len(reply) // 2)])
                return
            if mode == "drop_reply":
                return
            conn.sendall(reply)

    def close(self) -> None:
        self._closing = True
        self._listener.close()


# ----------------------------------------------------------------------
# Shared fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def env():
    rng = random.Random(0xFA17)
    space = DataSpace(2, 16)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    points = [
        (rng.randrange(space.t), rng.randrange(space.t)) for _ in range(12)
    ]
    dataset = UploadDataset(
        records=tuple(
            UploadRecord(
                identifier=i,
                payload=encode_ciphertext(scheme, scheme.encrypt(key, p, rng)),
                content=f"record-{i}".encode(),
            )
            for i, p in enumerate(points)
        )
    )
    token = encode_token(
        scheme, scheme.gen_token(key, Circle.from_radius((8, 8), 5), rng)
    )
    return scheme, dataset, token


def _in_process_shard(scheme) -> ServerThread:
    handle = ServerThread(ServiceServer(scheme, config=ServiceConfig()))
    handle.start()
    return handle


def _coordinator_over(ports, **config_kwargs) -> ServerThread:
    handle = ServerThread(
        Coordinator(
            [f"127.0.0.1:{port}" for port in ports],
            CoordinatorConfig(**config_kwargs),
        )
    )
    handle.start()
    return handle


# ----------------------------------------------------------------------
# Process death
# ----------------------------------------------------------------------
class TestShardDeath:
    @pytest.fixture()
    def cli_cluster(self, tmp_path):
        """Two real ``repro serve`` subprocesses behind a coordinator."""
        env_vars = dict(os.environ)
        env_vars["PYTHONPATH"] = "src"
        key = tmp_path / "demo.key"
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "keygen",
                "--size", "16", "--dims", "2", "--backend", "fast",
                "--seed", "21", "--out", str(key),
            ],
            capture_output=True, text=True, env=env_vars, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        procs, ports = [], []
        for i in range(2):
            port_file = tmp_path / f"port{i}"
            procs.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "serve",
                        "--key", str(key), "--port", "0",
                        "--port-file", str(port_file), "--workers", "1",
                    ],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.STDOUT,
                    env=env_vars,
                )
            )
            deadline = time.monotonic() + 60
            while not port_file.exists() and time.monotonic() < deadline:
                assert procs[-1].poll() is None, "backend died on startup"
                time.sleep(0.1)
            ports.append(int(port_file.read_text()))
        coordinator = _coordinator_over(ports, shard_timeout_s=5.0)
        try:
            yield procs, ports, coordinator
        finally:
            coordinator.stop()
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=30)

    def test_sigkill_mid_search_yields_typed_partial_results(
        self, env, cli_cluster
    ):
        _, dataset, token = env
        procs, _, coordinator = cli_cluster
        client = ServiceClient("127.0.0.1", coordinator.port)
        client.upload(dataset)
        victim = procs[1]
        # Freeze the victim so the fanned-out search is genuinely in
        # flight against it, then kill it mid-request.
        os.kill(victim.pid, signal.SIGSTOP)
        outcome: dict = {}

        def run_search() -> None:
            try:
                outcome["result"] = client.search(token)
            except BaseException as exc:
                outcome["error"] = exc

        searcher = threading.Thread(target=run_search)
        searcher.start()
        time.sleep(0.5)  # let the fan-out reach the frozen shard
        os.kill(victim.pid, signal.SIGKILL)
        searcher.join(timeout=30)
        assert not searcher.is_alive(), "search hung after shard death"

        error = outcome.get("error")
        assert isinstance(error, ShardUnavailableError), outcome
        # The partial results cover exactly the surviving shard's slice.
        reports = {r["addr"]: r for r in error.shards}
        assert len(reports) == 2
        assert sum(1 for r in reports.values() if r["ok"]) == 1
        survivor_map = coordinator.server.partition_map
        dead_addr = next(a for a, r in reports.items() if not r["ok"])
        dead_pid = survivor_map.partition_of(dead_addr)
        live_ids = {
            i
            for i, pid in survivor_map.assignments.items()
            if pid != dead_pid
        }
        assert set(error.partial_identifiers) <= live_ids
        assert all(
            isinstance(i, int) for i in error.partial_identifiers
        )

    def test_coordinator_survives_and_stays_typed(self, env, cli_cluster):
        _, dataset, token = env
        procs, _, coordinator = cli_cluster
        client = ServiceClient("127.0.0.1", coordinator.port)
        client.upload(dataset)
        procs[0].kill()
        procs[0].wait(timeout=30)
        # Health degrades but answers; searches fail typed, repeatedly.
        health = client.health()
        assert health["status"] == "degraded"
        assert health["coordinator"] is True
        assert health["shards_healthy"] == 1
        for _ in range(2):
            with pytest.raises(ShardUnavailableError):
                client.search(token)
        # The surviving shard still answers through the coordinator.
        health = client.health()
        assert health["shards_healthy"] == 1


# ----------------------------------------------------------------------
# Wire corruption and BUSY storms (proxy shim)
# ----------------------------------------------------------------------
class TestProxyFaults:
    @pytest.fixture()
    def shards(self, env):
        scheme, _, _ = env
        handles = [_in_process_shard(scheme) for _ in range(2)]
        yield handles
        for handle in handles:
            handle.stop()

    def test_truncated_reply_frame_is_typed_shard_loss(self, env, shards):
        _, dataset, token = env
        proxy = FaultProxy(shards[1].port, mode="pass")
        coordinator = _coordinator_over([shards[0].port, proxy.port])
        try:
            client = ServiceClient("127.0.0.1", coordinator.port)
            client.upload(dataset)
            proxy.mode = "truncate"
            with pytest.raises(ShardUnavailableError) as excinfo:
                client.search(token)
            error = excinfo.value
            ok_flags = sorted(r["ok"] for r in error.shards)
            assert ok_flags == [False, True]
            # The healthy shard's matches still came back.
            healthy_ids = set(
                coordinator.server.partition_map.ids_on(
                    f"127.0.0.1:{shards[0].port}"
                )
            )
            assert set(error.partial_identifiers) <= healthy_ids
        finally:
            coordinator.stop()
            proxy.close()

    def test_busy_storm_retries_only_the_busy_shard(self, env, shards):
        _, dataset, token = env
        proxy = FaultProxy(shards[1].port, mode="pass")
        coordinator = _coordinator_over([shards[0].port, proxy.port])
        try:
            client = ServiceClient("127.0.0.1", coordinator.port)
            client.upload(dataset)
            proxy.mode = "busy"
            proxy.busy_budget = 2
            proxy.connections = 0
            proxy.forwarded = 0
            snapshot = shards[0].server.metrics.snapshot()["verbs"]
            direct_before = (
                snapshot["search"]["requests"] if "search" in snapshot else 0
            )
            response, _ = client.search(token)
            # The stormed shard ate the whole busy budget plus one real
            # request; the healthy shard was asked exactly once.
            assert proxy.connections >= 3
            assert proxy.forwarded == 1
            direct_after = shards[0].server.metrics.snapshot()["verbs"][
                "search"
            ]["requests"]
            assert direct_after == direct_before + 1
            assert sorted(response.identifiers) == list(
                response.identifiers
            )
        finally:
            coordinator.stop()
            proxy.close()

    def test_busy_retried_upload_applies_once(self, env, shards):
        _, dataset, _ = env
        proxy = FaultProxy(shards[1].port, mode="busy", busy_budget=1)
        coordinator = _coordinator_over([shards[0].port, proxy.port])
        try:
            client = ServiceClient("127.0.0.1", coordinator.port)
            stored = client.upload(dataset)
            assert stored == len(dataset.records)
            counts = [s.server.cloud.record_count for s in shards]
            assert sum(counts) == len(dataset.records)
            # One logical upload per shard — the BUSY rejections never
            # reached the backend, so no double-apply was possible.
            assert [s.server.cloud.log.uploads for s in shards] == [1, 1]
        finally:
            coordinator.stop()
            proxy.close()

    def test_stats_mid_scrape_death_degrades_to_unreachable_marker(
        self, env
    ):
        """A shard dying mid-scrape must not fail the whole ``stats``
        aggregate: its report degrades to an ``unreachable`` marker and
        the survivors' sections still come back."""
        scheme, dataset, _ = env
        shards = [_in_process_shard(scheme) for _ in range(2)]
        coordinator = _coordinator_over(
            [s.port for s in shards], probe_timeout_s=2.0
        )
        try:
            client = ServiceClient("127.0.0.1", coordinator.port)
            client.upload(dataset)
            dead_addr = f"127.0.0.1:{shards[1].port}"
            shards[1].stop(drain=False)
            snapshot = client.stats()  # must degrade, never raise
            reports = {r["addr"]: r for r in snapshot["shards"]}
            assert reports[dead_addr]["ok"] is False
            assert reports[dead_addr]["unreachable"] is True
            assert "error" in reports[dead_addr]
            live_addr = f"127.0.0.1:{shards[0].port}"
            assert reports[live_addr]["ok"] is True
            assert "unreachable" not in reports[live_addr]
            assert snapshot["cluster"]["shards_reporting"] == 1
            # The aggregate still reflects the whole dataset: counts
            # come from the map, not from whoever answered the probe.
            assert snapshot["records"] == len(dataset.records)
        finally:
            coordinator.stop()
            shards[0].stop()

    def test_dropped_upload_ack_is_not_blindly_retried(self, env, shards):
        _, dataset, _ = env
        proxy = FaultProxy(shards[1].port, mode="drop_reply")
        coordinator = _coordinator_over([shards[0].port, proxy.port])
        try:
            client = ServiceClient("127.0.0.1", coordinator.port)
            with pytest.raises(ShardUnavailableError) as excinfo:
                client.upload(dataset)
            # The shard behind the proxy executed the request exactly
            # once (mid-request failures must not be replayed: the
            # server may have committed, and indeed it did).
            assert proxy.connections == 1
            assert shards[1].server.cloud.log.uploads == 1
            # The coordinator only recorded what was acked: the healthy
            # shard's sub-batch.
            acked = set(excinfo.value.partial_identifiers)
            map_ids = set(
                coordinator.server.partition_map.assignments
            )
            assert map_ids == acked
            assert (
                shards[0].server.cloud.record_count == len(acked)
            )
        finally:
            coordinator.stop()
            proxy.close()


# ----------------------------------------------------------------------
# Replication faults: stalls, failover, and re-replication convergence
# ----------------------------------------------------------------------
class TestReplicationFaults:
    @pytest.fixture()
    def replica_pair(self, env):
        """One partition at R=2: a proxied replica plus a direct sibling."""
        scheme, _, _ = env
        backends = [_in_process_shard(scheme) for _ in range(2)]
        proxy = FaultProxy(backends[0].port, mode="pass")
        coordinator = _coordinator_over(
            [proxy.port, backends[1].port],
            replication=2,
            shard_timeout_s=5.0,
        )
        yield backends, proxy, coordinator
        coordinator.stop()
        proxy.close()
        for backend in backends:
            backend.stop()

    @staticmethod
    def _steer_reads_to(coordinator, preferred_addr: str) -> None:
        """Bias replica selection so *preferred_addr* is tried first."""
        coord = coordinator.server
        with coord._state_lock:
            for addr in coord.partition_map.replicas("p0"):
                coord._loads[addr] = 0 if addr == preferred_addr else 100

    def test_stalled_replica_fails_over_within_deadline(
        self, env, replica_pair
    ):
        _, dataset, token = env
        backends, proxy, coordinator = replica_pair
        client = ServiceClient("127.0.0.1", coordinator.port)
        client.upload(dataset)
        reference, _ = client.search(token)
        proxy_addr = f"127.0.0.1:{proxy.port}"
        self._steer_reads_to(coordinator, proxy_addr)
        proxy.mode = "stall"
        contacted_before = proxy.connections
        started = time.monotonic()
        response, _ = client.search(token, deadline_ms=4000)
        elapsed = time.monotonic() - started
        # The stalled replica was genuinely attempted, the sibling
        # answered inside the original deadline, results are complete.
        assert proxy.connections > contacted_before
        assert elapsed < 4.0
        assert sorted(response.identifiers) == sorted(
            reference.identifiers
        )

    def test_upload_during_stall_marks_dirty_and_repair_converges(
        self, env, replica_pair
    ):
        _, dataset, _ = env
        backends, proxy, coordinator = replica_pair
        coord = coordinator.server
        client = ServiceClient("127.0.0.1", coordinator.port)
        proxy.mode = "stall"
        stored = client.upload(dataset, deadline_ms=2500)
        assert stored == len(dataset.records)
        proxy_addr = f"127.0.0.1:{proxy.port}"
        all_ids = {record.identifier for record in dataset.records}
        # The sibling committed; the stalled replica owes every row.
        assert backends[1].server.cloud.record_count == len(all_ids)
        assert backends[0].server.cloud.record_count == 0
        assert set(coord.partition_map.dirty_on(proxy_addr)) == all_ids
        # Un-stall and re-replicate: the replica converges and serves.
        proxy.mode = "pass"
        healed = coord.repair()
        assert healed == {proxy_addr: len(all_ids)}
        assert not coord.partition_map.dirty_on(proxy_addr)
        assert backends[0].server.cloud.record_count == len(all_ids)

    def test_forged_write_ack_is_audited_and_repaired(
        self, env, replica_pair
    ):
        _, dataset, token = env
        backends, proxy, coordinator = replica_pair
        coord = coordinator.server
        client = ServiceClient("127.0.0.1", coordinator.port)
        proxy.mode = "partial_write"
        stored = client.upload(dataset)
        assert stored == len(dataset.records)
        proxy_addr = f"127.0.0.1:{proxy.port}"
        # The forged ack left no trace in the map — and no rows in the
        # replica behind the proxy.
        assert not coord.partition_map.dirty_on(proxy_addr)
        assert backends[0].server.cloud.record_count == 0
        assert backends[1].server.cloud.record_count == len(
            dataset.records
        )
        proxy.mode = "pass"
        flagged = coord.audit_replicas()
        assert flagged == {proxy_addr: -len(dataset.records)}
        healed = coord.repair()
        assert healed == {proxy_addr: len(dataset.records)}
        assert backends[0].server.cloud.record_count == len(
            dataset.records
        )
        # The healed replica serves reads again, with full results —
        # reference comes from the sibling that always held the data.
        sibling_addr = f"127.0.0.1:{backends[1].port}"
        self._steer_reads_to(coordinator, sibling_addr)
        reference, _ = client.search(token)
        self._steer_reads_to(coordinator, proxy_addr)
        contacted_before = proxy.forwarded
        response, _ = client.search(token)
        assert proxy.forwarded > contacted_before
        assert sorted(response.identifiers) == sorted(
            reference.identifiers
        )
