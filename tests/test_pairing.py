"""Tests for the Tate pairing and the real group backend."""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups.base import (
    SUBGROUP_P,
    SUBGROUP_Q,
    SUBGROUP_R,
    SUBGROUP_S,
)
from repro.crypto.groups.pairing import SupersingularPairingGroup
from repro.crypto.groups.params import toy_params
from repro.errors import CryptoError, SerializationError


@pytest.fixture(scope="module")
def group() -> SupersingularPairingGroup:
    return SupersingularPairingGroup(toy_params())


@pytest.fixture(scope="module")
def rng_mod() -> random.Random:
    return random.Random(0xABCD)


class TestBilinearity:
    def test_bilinear_in_both_arguments(self, group, rng_mod):
        g = group.generator()
        base = group.pair(g, g)
        for _ in range(3):
            a = rng_mod.randrange(1, group.order)
            b = rng_mod.randrange(1, group.order)
            assert group.pair(g**a, g**b) == base ** (a * b)

    def test_symmetry(self, group, rng_mod):
        g = group.generator()
        a = g ** rng_mod.randrange(1, group.order)
        b = g ** rng_mod.randrange(1, group.order)
        assert group.pair(a, b) == group.pair(b, a)

    def test_multiplicativity(self, group, rng_mod):
        g = group.generator()
        a = g ** rng_mod.randrange(1, group.order)
        b = g ** rng_mod.randrange(1, group.order)
        c = g ** rng_mod.randrange(1, group.order)
        assert group.pair(a * b, c) == group.pair(a, c) * group.pair(b, c)

    def test_identity_pairs_to_one(self, group):
        g = group.generator()
        assert group.pair(group.identity(), g).is_identity()
        assert group.pair(g, group.identity()).is_identity()


class TestNonDegeneracy:
    def test_generator_pairing_has_full_order(self, group):
        e = group.pair(group.generator(), group.generator())
        assert not e.is_identity()
        for p in group.subgroup_primes:
            assert not (e ** (group.order // p)).is_identity()

    def test_pairing_order_divides_n(self, group):
        e = group.pair(group.generator(), group.generator())
        assert (e**group.order).is_identity()


class TestSubgroups:
    def test_orthogonality(self, group):
        for i in range(4):
            for j in range(4):
                e = group.pair(
                    group.subgroup_generator(i), group.subgroup_generator(j)
                )
                assert e.is_identity() == (i != j), (i, j)

    def test_subgroup_generator_order(self, group):
        for index, prime in enumerate(group.subgroup_primes):
            g_i = group.subgroup_generator(index)
            assert (g_i**prime).is_identity()
            assert not g_i.is_identity()

    def test_random_subgroup_element_stays_in_subgroup(self, group, rng_mod):
        for index, prime in enumerate(group.subgroup_primes):
            element = group.random_subgroup_element(index, rng_mod)
            assert (element**prime).is_identity()

    def test_bad_subgroup_index(self, group):
        with pytest.raises(CryptoError):
            group.subgroup_generator(4)


class TestElements:
    def test_inverse_and_identity(self, group, rng_mod):
        g = group.generator()
        a = g ** rng_mod.randrange(1, group.order)
        assert (a * ~a).is_identity()
        assert (a ** group.order).is_identity()

    def test_cross_group_mix_rejected(self, group):
        other = SupersingularPairingGroup(toy_params(seed=2))
        with pytest.raises(CryptoError):
            _ = group.generator() * other.generator()
        with pytest.raises(CryptoError):
            group.pair(group.generator(), other.generator())

    def test_serialize_roundtrip(self, group, rng_mod):
        g = group.generator()
        for _ in range(4):
            element = g ** rng_mod.randrange(group.order)
            data = group.serialize_element(element)
            assert len(data) == group.element_byte_length
            assert group.deserialize_element(data) == element

    def test_serialize_identity(self, group):
        data = group.serialize_element(group.identity())
        assert group.deserialize_element(data).is_identity()

    def test_deserialize_garbage_rejected(self, group):
        with pytest.raises(SerializationError):
            group.deserialize_element(b"\xff" * group.element_byte_length)


class TestTargetElements:
    def test_pow_and_inverse(self, group, rng_mod):
        e = group.pair(group.generator(), group.generator())
        k = rng_mod.randrange(1, group.order)
        assert (e**k) * (e**-k) == group.gt_identity()

    def test_gt_identity(self, group):
        one = group.gt_identity()
        assert one.is_identity()
        e = group.pair(group.generator(), group.generator())
        assert e * one == e


class TestInteroperability:
    def test_same_params_same_generator(self):
        # Two groups from equal params must agree on elements.
        g1 = SupersingularPairingGroup(toy_params())
        g2 = SupersingularPairingGroup(toy_params())
        assert g1.generator().point == g2.generator().point

    def test_roles_match_constants(self, group):
        assert (SUBGROUP_P, SUBGROUP_Q, SUBGROUP_R, SUBGROUP_S) == (0, 1, 2, 3)
