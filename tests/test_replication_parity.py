"""Replication parity: an R-replicated cluster ≡ a single server.

Replication must be an invisible optimization, exactly like the
partitioning it composes with.  For R=2 and R=3 clusters these tests pin:

* **result parity** — the coordinator's merged matches equal the single
  unreplicated server's, query by query;
* **leakage parity** — every query is served by exactly one replica per
  partition, and whichever replica that was observed exactly the single
  server's leakage restricted to its partition: same token bytes, and
  access patterns that union (across partitions) to the single server's;
* **proof parity** — verified queries pass the client's
  :class:`~repro.integrity.ResultVerifier` against the same client-side
  :class:`~repro.integrity.IntegrityState`, no matter which replica
  attested each partition;
* **failover parity** — all of the above survive killing a replica
  mid-life and re-replicating onto a fresh one.

The kill/replace test must run last in each parameter group: it mutates
the module-scoped cluster (the coordinator is rebuilt on a new port).
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2
from repro.integrity import (
    IntegrityState,
    ResultVerifier,
    TagKeys,
    membership_tag,
    record_tag,
)
from repro.service import (
    ReplicatedCluster,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

N_RECORDS = 18
N_PARTITIONS = 2
QUERIES = (
    ((16, 16), 12),
    ((16, 16), 12),  # repeated query: search-pattern parity
    ((6, 6), 4),
)


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0x5EED)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    keys = TagKeys.derive(scheme, key)
    points = [
        (rng.randrange(space.t), rng.randrange(space.t))
        for _ in range(N_RECORDS)
    ]
    records = []
    for identifier, point in enumerate(points):
        payload = encode_ciphertext(scheme, scheme.encrypt(key, point, rng))
        records.append(
            UploadRecord(
                identifier=identifier,
                payload=payload,
                tag=record_tag(keys, identifier, payload),
                mtag=membership_tag(keys, identifier),
            )
        )
    dataset = UploadDataset(records=tuple(records))
    tokens = tuple(
        encode_token(
            scheme,
            scheme.gen_token(key, Circle.from_radius(center, radius), rng),
        )
        for center, radius in QUERIES
    )
    return scheme, points, dataset, tokens, keys


@pytest.fixture(scope="module")
def single(env):
    """The unreplicated reference: one server holding everything."""
    scheme, _, dataset, tokens, _ = env
    handle = ServerThread(ServiceServer(scheme, config=ServiceConfig()))
    port = handle.start()
    try:
        client = ServiceClient("127.0.0.1", port)
        client.upload(dataset)
        results = [client.search(token) for token in tokens]
        # Leakage snapshots taken now: later verified queries append to
        # the live log, and the parity tests compare per-query history.
        log = handle.server.cloud.log
        token_sizes = list(log.token_sizes)
        access_pattern = [list(hits) for hits in log.access_pattern]
        yield {
            "server": handle.server,
            "client": client,
            "results": results,
            "token_sizes": token_sizes,
            "access_pattern": access_pattern,
        }
    finally:
        handle.stop()


@pytest.fixture(scope="module", params=(2, 3), ids=("R2", "R3"))
def replicated(request, env):
    """A partitions×R cluster with the same dataset and query history."""
    scheme, _, dataset, tokens, keys = env
    cluster = ReplicatedCluster(
        lambda: ServiceServer(scheme, config=ServiceConfig()),
        partitions=N_PARTITIONS,
        replication=request.param,
    )
    cluster.start()
    try:
        client = ServiceClient("127.0.0.1", cluster.coordinator_port)
        client.upload(dataset)
        state = IntegrityState()
        state.note_upload(keys, (r.identifier for r in dataset.records))
        results = [client.search(token) for token in tokens]
        yield {
            "replication": request.param,
            "cluster": cluster,
            "client": client,
            "results": results,
            "state": state,
        }
    finally:
        cluster.stop()


class TestReplicatedParity:
    def test_results_match_single_server(self, single, replicated):
        for (single_resp, _), (coord_resp, _) in zip(
            single["results"], replicated["results"]
        ):
            assert sorted(coord_resp.identifiers) == sorted(
                single_resp.identifiers
            )

    def test_results_match_plaintext_filter(self, env, replicated):
        _, points, _, _, _ = env
        for (center, radius), (coord_resp, _) in zip(
            QUERIES, replicated["results"]
        ):
            circle = Circle.from_radius(center, radius)
            expected = sorted(
                i
                for i, point in enumerate(points)
                if point_in_circle(point, circle)
            )
            assert sorted(coord_resp.identifiers) == expected

    def test_scan_work_is_single_server_work_not_r_times(
        self, single, replicated
    ):
        # R replicas hold R copies, but each query scans each record
        # once: replication buys availability, not extra leakage or work.
        for (_, single_stats), (_, coord_stats) in zip(
            single["results"], replicated["results"]
        ):
            assert (
                coord_stats["records_scanned"]
                == single_stats["records_scanned"]
                == N_RECORDS
            )
            assert (
                coord_stats["sub_token_evaluations"]
                == single_stats["sub_token_evaluations"]
            )

    def test_each_query_served_by_one_replica_per_partition(
        self, replicated
    ):
        cluster = replicated["cluster"]
        coordinator = cluster.coordinator
        for pid in sorted(coordinator.partition_map.partitions):
            logs = [
                cluster.backend(addr).cloud.log
                for addr in coordinator.partition_map.replicas(pid)
            ]
            assert sum(log.queries_served for log in logs) == len(QUERIES)

    def test_leakage_unions_to_single_server(self, single, replicated):
        """Whichever replica served, it observed the single server's
        leakage restricted to its partition — nothing more."""
        cluster = replicated["cluster"]
        coordinator = cluster.coordinator
        for pid in sorted(coordinator.partition_map.partitions):
            partition_ids = set(coordinator.partition_map.ids_in(pid))
            expected_patterns = Counter(
                frozenset(set(single["access_pattern"][q]) & partition_ids)
                for q in range(len(QUERIES))
            )
            expected_sizes = Counter(single["token_sizes"])
            observed_patterns: Counter = Counter()
            observed_sizes: Counter = Counter()
            for addr in coordinator.partition_map.replicas(pid):
                log = cluster.backend(addr).cloud.log
                observed_patterns.update(
                    frozenset(hits) for hits in log.access_pattern
                )
                observed_sizes.update(log.token_sizes)
            assert observed_patterns == expected_patterns
            assert observed_sizes == expected_sizes

    def test_replicas_of_a_partition_hold_identical_data(self, replicated):
        cluster = replicated["cluster"]
        coordinator = cluster.coordinator
        for pid in sorted(coordinator.partition_map.partitions):
            canonical = set(coordinator.partition_map.ids_in(pid))
            for addr in coordinator.partition_map.replicas(pid):
                assert (
                    cluster.backend(addr).cloud.record_count
                    == len(canonical)
                )

    def test_verified_search_passes_whoever_attests(
        self, env, single, replicated
    ):
        _, _, _, tokens, keys = env
        verifier = ResultVerifier(keys)
        response, _, section = replicated["client"].search_verified(
            tokens[0]
        )
        report = verifier.verify(
            tokens[0], response.identifiers, section, replicated["state"]
        )
        assert report.shards == N_PARTITIONS
        single_resp, _, single_section = (
            single["client"].search_verified(tokens[0])
        )
        assert sorted(response.identifiers) == sorted(
            single_resp.identifiers
        )
        single_report = verifier.verify(
            tokens[0],
            single_resp.identifiers,
            single_section,
            replicated["state"],
        )
        assert report.records == single_report.records

    def test_zz_parity_survives_kill_and_re_replication(
        self, env, single, replicated
    ):
        """Runs last: kills a replica, verifies degraded parity, then
        re-replicates onto a fresh backend and verifies full parity."""
        _, _, _, tokens, keys = env
        cluster = replicated["cluster"]
        victim = cluster.addrs[0]
        victim_pid = cluster.coordinator.partition_map.partition_of(victim)
        cluster.kill(victim)
        client = replicated["client"]
        verifier = ResultVerifier(keys)
        # Degraded: the sibling replica serves, results and proofs hold.
        for token, (single_resp, _) in zip(tokens, single["results"]):
            response, _ = client.search(token, deadline_ms=10_000)
            assert sorted(response.identifiers) == sorted(
                single_resp.identifiers
            )
        response, _, section = client.search_verified(
            tokens[0], deadline_ms=10_000
        )
        report = verifier.verify(
            tokens[0], response.identifiers, section, replicated["state"]
        )
        assert report.shards == N_PARTITIONS
        # Re-replicate onto a fresh empty backend and re-check parity.
        new_addr = cluster.replace(victim)
        client = ServiceClient("127.0.0.1", cluster.coordinator_port)
        coordinator = cluster.coordinator
        assert not coordinator.partition_map.dirty_on(new_addr)
        canonical = set(coordinator.partition_map.ids_in(victim_pid))
        assert cluster.backend(new_addr).cloud.record_count == len(
            canonical
        )
        for token, (single_resp, _) in zip(tokens, single["results"]):
            response, _ = client.search(token, deadline_ms=10_000)
            assert sorted(response.identifiers) == sorted(
                single_resp.identifiers
            )
        response, _, section = client.search_verified(
            tokens[0], deadline_ms=10_000
        )
        report = verifier.verify(
            tokens[0], response.identifiers, section, replicated["state"]
        )
        assert report.shards == N_PARTITIONS
