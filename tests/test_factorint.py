"""Tests for repro.math.factorint."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math.factorint import divisors, factorint, squarefree_part
from repro.math.primes import is_prime


def _reassemble(factors: dict[int, int]) -> int:
    return math.prod(p**e for p, e in factors.items())


class TestFactorint:
    def test_one(self):
        assert factorint(1) == {}

    def test_rejects_nonpositive(self):
        for n in (0, -4):
            with pytest.raises(ValueError):
                factorint(n)

    def test_known_factorizations(self):
        assert factorint(2**10) == {2: 10}
        assert factorint(360) == {2: 3, 3: 2, 5: 1}
        assert factorint(97) == {97: 1}

    @given(st.integers(1, 200_000))
    def test_roundtrip_and_primality(self, n):
        factors = factorint(n)
        assert _reassemble(factors) == n
        assert all(is_prime(p) for p in factors)
        assert all(e >= 1 for e in factors.values())

    def test_large_semiprime_needs_rho(self):
        # Both factors exceed the trial-division bound of 1000.
        p, q = 1_000_003, 1_000_033
        assert factorint(p * q) == {p: 1, q: 1}

    def test_perfect_square_of_large_prime(self):
        p = 1_000_003
        assert factorint(p * p) == {p: 2}

    def test_mixed_large(self):
        n = 2**5 * 1_000_003 * 999_983
        factors = factorint(n)
        assert _reassemble(factors) == n
        assert factors[2] == 5


class TestDivisors:
    def test_small(self):
        assert divisors(1) == [1]
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(13) == [1, 13]

    @given(st.integers(1, 2000))
    def test_matches_naive(self, n):
        naive = [d for d in range(1, n + 1) if n % d == 0]
        assert divisors(n) == naive


class TestSquarefreePart:
    def test_examples(self):
        assert squarefree_part(1) == 1
        assert squarefree_part(12) == 3  # 12 = 2² · 3
        assert squarefree_part(49) == 1
        assert squarefree_part(30) == 30

    @given(st.integers(1, 5000))
    def test_definition(self, n):
        s = squarefree_part(n)
        assert n % s == 0
        quotient = n // s
        root = math.isqrt(quotient)
        assert root * root == quotient
