"""Tests for general lattice-region queries (repro.core.region)."""

from __future__ import annotations

import random

import pytest

from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import DataSpace
from repro.core.provision import group_for_crse2
from repro.core.region import Rectangle, gen_region_token
from repro.errors import ParameterError, SchemeError


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(0x4E6)
    space = DataSpace(2, 24)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    return scheme, key, rng


class TestRectangle:
    def test_contains(self):
        box = Rectangle((2, 3), (5, 6))
        assert box.contains((2, 3)) and box.contains((5, 6))
        assert box.contains((4, 4))
        assert not box.contains((1, 4))
        assert not box.contains((4, 7))
        assert not box.contains((4,))

    def test_lattice_points(self):
        box = Rectangle((0, 0), (2, 1))
        assert len(box.lattice_points()) == box.point_count() == 6

    def test_degenerate_box_is_a_point(self):
        box = Rectangle((3, 3), (3, 3))
        assert box.lattice_points() == [(3, 3)]

    def test_invalid(self):
        with pytest.raises(ParameterError):
            Rectangle((2, 2), (1, 3))
        with pytest.raises(ParameterError):
            Rectangle((1,), (1, 2))
        with pytest.raises(ParameterError):
            Rectangle((), ())

    def test_3d(self):
        box = Rectangle((0, 0, 0), (1, 1, 1))
        assert box.point_count() == 8


class TestRegionToken:
    def test_exact_rectangle_query(self, setup):
        scheme, key, rng = setup
        box = Rectangle((4, 4), (7, 6))
        token = gen_region_token(scheme, key, box.lattice_points(), rng)
        for x in range(2, 10):
            for y in range(2, 9):
                got = scheme.matches(token, scheme.encrypt(key, (x, y), rng))
                assert got == box.contains((x, y)), (x, y)

    def test_exact_rectangular_search_has_no_false_positives(self, setup):
        # Unlike the OPE/MBR baseline, the region token answers the box
        # exactly — the "rectangular range search" of Related Work, done
        # with the paper's own machinery.
        scheme, key, rng = setup
        box = Rectangle((10, 10), (12, 12))
        token = gen_region_token(scheme, key, box.lattice_points(), rng)
        corner_outside = (13, 13)
        assert not scheme.matches(
            token, scheme.encrypt(key, corner_outside, rng)
        )

    def test_arbitrary_disconnected_region(self, setup):
        scheme, key, rng = setup
        region = [(1, 1), (20, 20), (5, 17)]
        token = gen_region_token(scheme, key, region, rng)
        for point in region:
            assert scheme.matches(token, scheme.encrypt(key, point, rng))
        assert not scheme.matches(token, scheme.encrypt(key, (2, 1), rng))

    def test_duplicates_deduplicated(self, setup):
        scheme, key, rng = setup
        token = gen_region_token(scheme, key, [(3, 3), (3, 3), (4, 4)], rng)
        assert token.num_sub_tokens == 2

    def test_count_hiding(self, setup):
        scheme, key, rng = setup
        token = gen_region_token(
            scheme, key, [(3, 3), (4, 4)], rng, hide_count_to=9
        )
        assert token.num_sub_tokens == 9
        assert scheme.matches(token, scheme.encrypt(key, (3, 3), rng))
        assert not scheme.matches(token, scheme.encrypt(key, (9, 9), rng))

    def test_empty_region_rejected(self, setup):
        scheme, key, rng = setup
        with pytest.raises(SchemeError):
            gen_region_token(scheme, key, [], rng)

    def test_out_of_space_rejected(self, setup):
        scheme, key, rng = setup
        with pytest.raises(ParameterError):
            gen_region_token(scheme, key, [(30, 0)], rng)

    def test_insufficient_padding_rejected(self, setup):
        scheme, key, rng = setup
        with pytest.raises(SchemeError):
            gen_region_token(
                scheme, key, [(1, 1), (2, 2)], rng, hide_count_to=1
            )
