"""Durable service tests: replay equivalence with the in-memory server.

A :class:`ServiceServer` built over a :class:`RecordStore` must be
indistinguishable — in search results, in :class:`SearchStats`, and in
the paper's leakage log — from a twin server that never restarted.
These tests drive the request dispatcher directly (no TCP) with real
ciphertexts and a real single-worker engine, shut the durable server
down, rebuild it from the same data directory, and compare against the
twin after every combination of upload, delete, compaction, and replay.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.errors import StorageError
from repro.service import protocol
from repro.service.engine import SearchEngine
from repro.service.schemeio import scheme_header
from repro.service.server import ServiceConfig, ServiceServer
from repro.storage import RecordStore


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0x570E)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    points = [(16, 16), (17, 17), (30, 2), (2, 30), (10, 10), (16, 18)]
    dataset = UploadDataset(
        records=tuple(
            UploadRecord(
                identifier=i,
                payload=encode_ciphertext(
                    scheme, scheme.encrypt(key, point, rng)
                ),
                content=f"record-{i}".encode(),
            )
            for i, point in enumerate(points)
        )
    )
    token_near = encode_token(
        scheme, scheme.gen_token(key, Circle.from_radius((16, 16), 3), rng)
    )
    token_wide = encode_token(
        scheme, scheme.gen_token(key, Circle.from_radius((16, 16), 9), rng)
    )
    return scheme, dataset, token_near, token_wide


def dispatch(server: ServiceServer, verb: str, fields: dict) -> dict:
    """Push one request through the server's dispatcher, no sockets."""
    request = protocol.Request(
        verb=verb, request_id=1, deadline_ms=None, fields=fields
    )
    return asyncio.run(server._dispatch(request))


def make_server(scheme, store=None) -> ServiceServer:
    return ServiceServer(
        scheme,
        config=ServiceConfig(workers=1),
        engine=SearchEngine(scheme, workers=1),
        store=store,
    )


def stop(server: ServiceServer) -> None:
    server.engine.close(wait=True)
    if server.store is not None:
        server.store.close()


def search_fields(token: bytes) -> dict:
    from repro.cloud.messages import SearchRequest

    return protocol.search_fields(SearchRequest(payload=token))


def leakage_view(server: ServiceServer) -> dict:
    log = server.cloud.log
    return {
        "uploads": log.uploads,
        "records_stored": log.records_stored,
        "token_sizes": list(log.token_sizes),
        "sub_token_counts": list(log.sub_token_counts),
        "access_pattern": list(log.access_pattern),
    }


class TestReplayEquivalence:
    def test_restart_matches_never_restarted_twin(self, env, tmp_path):
        scheme, dataset, token_near, token_wide = env

        # The twin: same requests, never restarted, no disk.
        twin = make_server(scheme)
        dispatch(twin, "upload", protocol.upload_fields(dataset))
        dispatch(twin, "delete", {"ids": [1, 5]})
        twin_near = dispatch(twin, "search", search_fields(token_near))

        # The durable server: same requests, then a rebuild from disk.
        store = RecordStore.create(tmp_path / "data", scheme_header(scheme))
        durable = make_server(scheme, store=store)
        dispatch(durable, "upload", protocol.upload_fields(dataset))
        dispatch(durable, "delete", {"ids": [1, 5]})
        stop(durable)  # fsynced state only; no graceful handoff needed

        reborn = make_server(
            scheme, store=RecordStore.open(tmp_path / "data")
        )
        reborn_near = dispatch(reborn, "search", search_fields(token_near))

        assert reborn_near["identifiers"] == twin_near["identifiers"]
        near_stats = reborn_near["stats"]
        twin_stats = twin_near["stats"]
        assert near_stats["records_scanned"] == twin_stats["records_scanned"]
        assert near_stats["matches"] == twin_stats["matches"]
        assert (
            near_stats["sub_token_evaluations"]
            == twin_stats["sub_token_evaluations"]
        )

        # Leakage-log parity: the restart is invisible to a curious
        # server's notebook.
        assert leakage_view(reborn) == leakage_view(twin)

        # Content fetch survives the restart too.
        fetched = dispatch(reborn, "fetch", {"ids": [0]})
        assert fetched["contents"] == [[0, "cmVjb3JkLTA="]]  # b64("record-0")
        stop(twin)
        stop(reborn)

    def test_delete_compact_replay_equivalence(self, env, tmp_path):
        scheme, dataset, token_near, token_wide = env

        twin = make_server(scheme)
        dispatch(twin, "upload", protocol.upload_fields(dataset))
        dispatch(twin, "delete", {"ids": [0, 2]})

        store = RecordStore.create(tmp_path / "data", scheme_header(scheme))
        durable = make_server(scheme, store=store)
        dispatch(durable, "upload", protocol.upload_fields(dataset))
        dispatch(durable, "delete", {"ids": [0, 2]})
        stop(durable)

        # Offline maintenance between the crash and the restart.
        with RecordStore.open(tmp_path / "data") as offline:
            assert offline.snapshot().dead_records == 2
            offline.compact()
            assert offline.snapshot().dead_records == 0

        reborn = make_server(
            scheme, store=RecordStore.open(tmp_path / "data")
        )
        for token in (token_near, token_wide):
            ours = dispatch(reborn, "search", search_fields(token))
            theirs = dispatch(twin, "search", search_fields(token))
            assert ours["identifiers"] == theirs["identifiers"]
            assert (
                ours["stats"]["records_scanned"]
                == theirs["stats"]["records_scanned"]
            )
        assert leakage_view(reborn) == leakage_view(twin)
        stop(twin)
        stop(reborn)

    def test_stats_verb_reflects_durable_state(self, env, tmp_path):
        scheme, dataset, _, _ = env
        store = RecordStore.create(tmp_path / "data", scheme_header(scheme))
        server = make_server(scheme, store=store)
        dispatch(server, "upload", protocol.upload_fields(dataset))
        dispatch(server, "delete", {"ids": [3]})

        snapshot = dispatch(server, "stats", {})
        assert snapshot["engine"]["record_count"] == 5
        assert snapshot["records"] == 5
        assert snapshot["store"]["live_records"] == 5
        assert snapshot["store"]["dead_records"] == 1
        assert snapshot["store"]["uploads"] == 1
        assert snapshot["store"]["deletes"] == 1
        assert snapshot["store"]["segments"] == 1
        assert snapshot["store"]["compactions"] == 0

        health = dispatch(server, "health", {})
        assert health["durable"] is True
        stop(server)

        # Without a store the snapshot omits the store section entirely.
        ephemeral = make_server(scheme)
        snapshot = dispatch(ephemeral, "stats", {})
        assert "store" not in snapshot
        assert dispatch(ephemeral, "health", {})["durable"] is False
        stop(ephemeral)

    def test_scheme_mismatch_store_refused(self, env, tmp_path):
        scheme, _, _, _ = env
        other_header = dict(scheme_header(scheme))
        other_header["space"] = {"w": 2, "t": 64}
        store = RecordStore.create(tmp_path / "other", other_header)
        try:
            with pytest.raises(StorageError, match="different scheme"):
                make_server(scheme, store=store)
        finally:
            store.close()

    def test_rejected_upload_never_reaches_the_log(self, env, tmp_path):
        scheme, dataset, _, _ = env
        store = RecordStore.create(tmp_path / "data", scheme_header(scheme))
        server = make_server(scheme, store=store)
        dispatch(server, "upload", protocol.upload_fields(dataset))

        # A duplicate batch is rejected by validation *before* the disk
        # write — the store must not grow a doomed batch.
        logged_before = server.store.snapshot().records_logged
        reply = asyncio.run(
            server._handle_request(
                protocol.Request(
                    verb="upload",
                    request_id=7,
                    deadline_ms=None,
                    fields=protocol.upload_fields(dataset),
                )
            )
        )
        assert b"duplicate" in reply
        assert server.store.snapshot().records_logged == logged_before
        stop(server)
