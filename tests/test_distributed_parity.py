"""Correctness parity: distributed search ≡ single server ≡ plaintext.

The coordinator must be an invisible optimization.  For a seeded dataset
and a battery of queries, these tests pin three-way equality of results:

* the coordinator's merged matches,
* a single ``ServiceServer`` holding the whole dataset,
* the plaintext circle filter (ground truth).

And — the paper's security story — leakage parity: partitioning the
dataset across shards must not change what the (collective) servers
observe.  The union of the per-shard leakage logs has to equal the
single server's log, query by query: same token sizes, same sub-token
counts, and access patterns that union to the same identifier sets.
Every server here runs in-process so each shard's
:class:`~repro.cloud.server._ServerLog` is directly inspectable.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.plaintext import linear_circular_search
from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2
from repro.errors import IntegrityError
from repro.integrity import (
    IntegrityState,
    ResultVerifier,
    TagKeys,
    membership_tag,
    record_tag,
)
from repro.service import (
    Coordinator,
    CoordinatorConfig,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)

N_RECORDS = 24
N_SHARDS = 3
QUERIES = (
    ((8, 8), 3),
    ((8, 8), 3),  # repeated query: search-pattern parity
    ((20, 20), 4),
    ((1, 1), 2),
    ((16, 5), 0),
)


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0xD157)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    points = [
        (rng.randrange(space.t), rng.randrange(space.t))
        for _ in range(N_RECORDS)
    ]
    dataset = UploadDataset(
        records=tuple(
            UploadRecord(
                identifier=i,
                payload=encode_ciphertext(scheme, scheme.encrypt(key, p, rng)),
                content=f"record-{i}".encode(),
            )
            for i, p in enumerate(points)
        )
    )
    tokens = tuple(
        encode_token(
            scheme,
            scheme.gen_token(key, Circle.from_radius(center, radius), rng),
        )
        for center, radius in QUERIES
    )
    return scheme, points, dataset, tokens


@pytest.fixture(scope="module")
def cluster(env):
    """One single server and a 3-shard coordinator cluster, both queried."""
    scheme, points, dataset, tokens = env
    single = ServerThread(ServiceServer(scheme, config=ServiceConfig()))
    backends = [
        ServerThread(ServiceServer(scheme, config=ServiceConfig()))
        for _ in range(N_SHARDS)
    ]
    single_port = single.start()
    ports = [backend.start() for backend in backends]
    coordinator = ServerThread(
        Coordinator(
            [f"127.0.0.1:{port}" for port in ports], CoordinatorConfig()
        )
    )
    coord_port = coordinator.start()
    try:
        single_client = ServiceClient("127.0.0.1", single_port)
        coord_client = ServiceClient("127.0.0.1", coord_port)
        single_client.upload(dataset)
        coord_client.upload(dataset)
        single_results = [single_client.search(t) for t in tokens]
        coord_results = [coord_client.search(t) for t in tokens]
        yield {
            "single_server": single.server,
            "shard_servers": [backend.server for backend in backends],
            "coordinator": coordinator.server,
            "single_results": single_results,
            "coord_results": coord_results,
        }
    finally:
        coordinator.stop()
        for backend in backends:
            backend.stop()
        single.stop()


class TestResultParity:
    def test_coordinator_matches_single_server(self, cluster):
        for (single_resp, _), (coord_resp, _) in zip(
            cluster["single_results"], cluster["coord_results"]
        ):
            assert sorted(coord_resp.identifiers) == sorted(
                single_resp.identifiers
            )

    def test_matches_equal_plaintext_filter(self, env, cluster):
        _, points, _, _ = env
        for (center, radius), (coord_resp, _) in zip(
            QUERIES, cluster["coord_results"]
        ):
            circle = Circle.from_radius(center, radius)
            expected_ids = sorted(
                i
                for i, point in enumerate(points)
                if point_in_circle(point, circle)
            )
            assert sorted(coord_resp.identifiers) == expected_ids
            # The matched points are exactly the plaintext baseline's.
            assert sorted(
                points[i] for i in coord_resp.identifiers
            ) == sorted(linear_circular_search(points, circle))

    def test_every_record_scanned_exactly_once(self, cluster):
        for _, stats in cluster["coord_results"]:
            assert stats["records_scanned"] == N_RECORDS
            assert len(stats["partitions"]) == N_SHARDS

    def test_aggregate_scan_work_matches_single_server(self, cluster):
        for (_, single_stats), (_, coord_stats) in zip(
            cluster["single_results"], cluster["coord_results"]
        ):
            assert (
                coord_stats["sub_token_evaluations"]
                == single_stats["sub_token_evaluations"]
            )


class TestLeakageParity:
    """Union of per-shard logs == the single server's log."""

    def test_size_pattern(self, cluster):
        shard_logs = [s.cloud.log for s in cluster["shard_servers"]]
        single_log = cluster["single_server"].cloud.log
        assert (
            sum(log.records_stored for log in shard_logs)
            == single_log.records_stored
            == N_RECORDS
        )
        # Every shard received exactly one upload batch, like the single
        # server did: the coordinator splits bytes, not history.
        assert [log.uploads for log in shard_logs] == [1] * N_SHARDS

    def test_query_count(self, cluster):
        single_log = cluster["single_server"].cloud.log
        assert single_log.queries_served == len(QUERIES)
        for server in cluster["shard_servers"]:
            assert server.cloud.log.queries_served == len(QUERIES)

    def test_token_size_pattern_identical_per_shard(self, cluster):
        # The coordinator forwards the token verbatim, so every shard
        # sees byte-identical tokens — including the repeated query,
        # which repeats on every shard (search-pattern parity).
        single_sizes = cluster["single_server"].cloud.log.token_sizes
        for server in cluster["shard_servers"]:
            assert server.cloud.log.token_sizes == single_sizes

    def test_radius_pattern_identical_per_shard(self, cluster):
        single_counts = cluster["single_server"].cloud.log.sub_token_counts
        for server in cluster["shard_servers"]:
            assert server.cloud.log.sub_token_counts == single_counts

    def test_access_pattern_unions_to_single_server(self, cluster):
        single_log = cluster["single_server"].cloud.log
        shard_logs = [s.cloud.log for s in cluster["shard_servers"]]
        for query_index in range(len(QUERIES)):
            union = set()
            for log in shard_logs:
                hits = set(log.access_pattern[query_index])
                assert not (union & hits), "records stored on two shards"
                union |= hits
            assert union == set(single_log.access_pattern[query_index])

    def test_shards_partition_the_dataset(self, cluster):
        counts = [
            s.cloud.record_count for s in cluster["shard_servers"]
        ]
        assert sum(counts) == N_RECORDS
        # Least-loaded assignment keeps the partition balanced.
        assert max(counts) - min(counts) <= 1

    def test_coordinator_reports_cover_all_shards(self, cluster):
        coordinator = cluster["coordinator"]
        addrs = {spec.addr for spec in coordinator.shards}
        assert set(coordinator.partition_map.counts()) == addrs
        assert coordinator.partition_map.record_count == N_RECORDS


@pytest.fixture(scope="module")
def verified_cluster():
    """A tagged dataset on a 3-shard coordinator plus a single-server twin."""
    rng = random.Random(0x7AC5)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    keys = TagKeys.derive(scheme, key)
    points = [
        (rng.randrange(space.t), rng.randrange(space.t)) for _ in range(12)
    ]
    records = []
    for identifier, point in enumerate(points):
        payload = encode_ciphertext(scheme, scheme.encrypt(key, point, rng))
        records.append(
            UploadRecord(
                identifier=identifier,
                payload=payload,
                tag=record_tag(keys, identifier, payload),
                mtag=membership_tag(keys, identifier),
            )
        )
    dataset = UploadDataset(records=tuple(records))
    token = encode_token(
        scheme,
        scheme.gen_token(key, Circle.from_radius((16, 16), 12), rng),
    )
    single = ServerThread(ServiceServer(scheme, config=ServiceConfig()))
    backends = [
        ServerThread(ServiceServer(scheme, config=ServiceConfig()))
        for _ in range(N_SHARDS)
    ]
    single_port = single.start()
    ports = [backend.start() for backend in backends]
    coordinator = ServerThread(
        Coordinator(
            [f"127.0.0.1:{port}" for port in ports], CoordinatorConfig()
        )
    )
    coord_port = coordinator.start()
    try:
        single_client = ServiceClient("127.0.0.1", single_port)
        coord_client = ServiceClient("127.0.0.1", coord_port)
        single_client.upload(dataset)
        coord_client.upload(dataset)
        state = IntegrityState()
        state.note_upload(keys, (r.identifier for r in records))
        yield {
            "keys": keys,
            "token": token,
            "state": state,
            "single_client": single_client,
            "coord_client": coord_client,
        }
    finally:
        coordinator.stop()
        for backend in backends:
            backend.stop()
        single.stop()


class TestVerifiedDistributedSearch:
    """Verified queries through the coordinator: parity plus tampers."""

    def test_honest_parity_with_verification_on(self, verified_cluster):
        vc = verified_cluster
        verifier = ResultVerifier(vc["keys"])
        single_resp, _, single_section = vc["single_client"].search_verified(
            vc["token"]
        )
        coord_resp, _, coord_section = vc["coord_client"].search_verified(
            vc["token"]
        )
        assert sorted(coord_resp.identifiers) == sorted(
            single_resp.identifiers
        )
        single_report = verifier.verify(
            vc["token"], single_resp.identifiers, single_section, vc["state"]
        )
        coord_report = verifier.verify(
            vc["token"], coord_resp.identifiers, coord_section, vc["state"]
        )
        assert single_report.shards == 1
        assert coord_report.shards == N_SHARDS
        assert coord_report.records == single_report.records

    def test_merged_section_carries_shard_indices(self, verified_cluster):
        vc = verified_cluster
        _, _, section = vc["coord_client"].search_verified(vc["token"])
        assert len(section["shards"]) == N_SHARDS
        assert all(len(entry) == 4 for entry in section["matches"])
        addrs = {proof["addr"] for proof in section["shards"]}
        assert len(addrs) == N_SHARDS

    def test_shard_omitted_from_merge_detected(self, verified_cluster):
        vc = verified_cluster
        resp, _, section = vc["coord_client"].search_verified(vc["token"])
        omitted = len(section["shards"]) - 1
        pruned = {
            "matches": [
                entry
                for entry in section["matches"]
                if entry[3] != omitted
            ],
            "shards": section["shards"][:omitted],
        }
        surviving = [
            identifier
            for identifier in resp.identifiers
            if identifier in {entry[0] for entry in pruned["matches"]}
        ]
        with pytest.raises(IntegrityError, match="shard omitted|expected state"):
            ResultVerifier(vc["keys"]).verify(
                vc["token"], surviving, pruned, vc["state"]
            )

    def test_double_attestation_detected(self, verified_cluster):
        vc = verified_cluster
        resp, _, section = vc["coord_client"].search_verified(vc["token"])
        doubled = {
            "matches": [*section["matches"], list(section["matches"][0])],
            "shards": section["shards"],
        }
        with pytest.raises(IntegrityError, match="more than one entry"):
            ResultVerifier(vc["keys"]).verify(
                vc["token"], resp.identifiers, doubled, vc["state"]
            )

    def test_aggregate_integrity_in_coordinator_stats(self, verified_cluster):
        vc = verified_cluster
        snapshot = vc["coord_client"].stats()
        section = snapshot["integrity"]
        assert section["records"] == 12
        assert section["tags"] == 12
        assert section["complete"] is True
        assert section["shards_reporting"] == N_SHARDS
        assert section["root"] == vc["state"].root.hex()


class TestCoordinatorBatchAndClusterStats:
    """The fan-out ``search_batch`` verb and cluster saturation gauges."""

    def test_search_batch_matches_sequential_searches(self, env, cluster):
        _, _, _, tokens = env
        expected = [
            sorted(response.identifiers)
            for response, _ in cluster["coord_results"]
        ]
        with ServiceClient(
            "127.0.0.1", cluster["coordinator"].port
        ) as client:
            batched = client.search_batch(tokens)
        assert [
            sorted(response.identifiers) for response, _ in batched
        ] == expected
        # The batch is N independent searches: every token's stats still
        # account for every record across the shards exactly once.
        for _, stats in batched:
            assert stats["records_scanned"] == N_RECORDS
            assert len(stats["partitions"]) == N_SHARDS

    def test_stats_aggregates_cluster_gauges(self, cluster):
        with ServiceClient(
            "127.0.0.1", cluster["coordinator"].port
        ) as client:
            snapshot = client.stats()
        # The coordinator's own queue gauges plus the summed view of the
        # reachable shards' queues.
        assert snapshot["queue"]["limit"] > 0
        assert snapshot["connections"]["total"] >= 1
        aggregate = snapshot["cluster"]
        assert aggregate["shards_reporting"] == N_SHARDS
        # Probing the shards puts one stats request in flight per shard.
        assert aggregate["peak_in_flight"] >= N_SHARDS
        assert aggregate["rejected_busy"] == 0
