"""Hypothesis stateful testing: random interleavings of the full deployment.

A rule-based state machine uploads, queries, deletes, and fetches in
arbitrary orders while mirroring the expected plaintext state; the system
must track it exactly.  This explores interleavings (delete-then-re-query,
fetch-after-delete, repeated uploads) beyond what the hand-written traces
cover.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cloud.deployment import CloudDeployment
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2

_SPACE = DataSpace(2, 12)
_GROUP = group_for_crse2(_SPACE, "fast", random.Random(0x57F))

coords = st.integers(0, _SPACE.t - 1)
points = st.tuples(coords, coords)


class DeploymentMachine(RuleBasedStateMachine):
    """Drives one deployment against a plaintext shadow."""

    @initialize()
    def setup(self):
        rng = random.Random(0x57F1)
        scheme = CRSE2Scheme(_SPACE, _GROUP)
        self.deployment = CloudDeployment.create(scheme, rng=rng)
        self.shadow: dict[int, tuple[int, int]] = {}
        self.contents: dict[int, bytes] = {}

    # ------------------------------------------------------------------
    @rule(batch=st.lists(points, min_size=1, max_size=3))
    def upload(self, batch):
        before = set(self.deployment.owner.directory)
        bodies = [f"rec-{p}".encode() for p in batch]
        self.deployment.outsource(batch, contents=bodies)
        new_ids = sorted(set(self.deployment.owner.directory) - before)
        for identifier, point, body in zip(new_ids, batch, bodies):
            self.shadow[identifier] = tuple(point)
            self.contents[identifier] = body

    @rule(center=points, radius=st.integers(0, 3))
    def query(self, center, radius):
        circle = Circle.from_radius(center, radius)
        response = self.deployment.query(circle)
        expected = sorted(
            identifier
            for identifier, point in self.shadow.items()
            if point_in_circle(point, circle)
        )
        assert sorted(response.identifiers) == expected

    @rule(pick=st.integers(0, 30))
    def delete(self, pick):
        if not self.shadow:
            return
        victim = sorted(self.shadow)[pick % len(self.shadow)]
        removed = self.deployment.delete([victim])
        assert removed == 1
        del self.shadow[victim]
        self.contents.pop(victim, None)

    @rule(pick=st.integers(0, 30))
    def fetch(self, pick):
        if not self.shadow:
            return
        identifier = sorted(self.shadow)[pick % len(self.shadow)]
        fetched = self.deployment.user.fetch_contents((identifier,))
        assert fetched[identifier] == self.contents[identifier]

    # ------------------------------------------------------------------
    @invariant()
    def record_counts_agree(self):
        if hasattr(self, "deployment"):
            assert self.deployment.server.record_count == len(self.shadow)


TestDeploymentStateMachine = DeploymentMachine.TestCase
TestDeploymentStateMachine.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
