"""Tests for trace replay and the regression-fit helpers."""

from __future__ import annotations

import random

import pytest

from repro.analysis.fit import linear_fit, power_fit
from repro.cloud.deployment import CloudDeployment
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.datasets.workload import (
    DeleteOp,
    QueryOp,
    UploadOp,
    generate_trace,
    replay,
)
from repro.errors import ParameterError


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_r2(self):
        rng = random.Random(1)
        x = list(range(50))
        y = [3 * v + 10 + rng.gauss(0, 1) for v in x]
        fit = linear_fit(x, y)
        assert fit.slope == pytest.approx(3.0, abs=0.1)
        assert fit.r_squared > 0.99

    def test_constant_y(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_degenerate_inputs(self):
        with pytest.raises(ParameterError):
            linear_fit([1], [2])
        with pytest.raises(ParameterError):
            linear_fit([2, 2], [1, 3])


class TestPowerFit:
    def test_exact_square_law(self):
        x = [1, 2, 4, 8, 16]
        y = [3 * v * v for v in x]
        fit = power_fit(x, y)
        assert fit.slope == pytest.approx(2.0)

    def test_paper_growth_claims(self):
        # m(R) grows like R²/√log — the fitted exponent sits just below 2.
        from repro.core.concircles import num_concentric_circles

        radii = list(range(5, 51, 5))
        m = [num_concentric_circles(r * r) for r in radii]
        fit = power_fit(radii, m)
        assert 1.7 < fit.slope < 2.0
        assert fit.r_squared > 0.999

    def test_positivity(self):
        with pytest.raises(ParameterError):
            power_fit([0, 1], [1, 2])


@pytest.fixture()
def deployment():
    rng = random.Random(0x4E9)
    space = DataSpace(2, 24)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    return CloudDeployment.create(scheme, rng=rng)


class TestReplay:
    def test_generated_trace_verifies(self, deployment):
        rng = random.Random(0x4EA)
        trace = generate_trace(deployment.scheme.space, 25, rng, max_radius=3)
        report = replay(deployment, trace)
        assert report.queries == report.verified_queries
        assert report.records_added >= 5
        assert not report.mismatches

    def test_handwritten_trace(self, deployment):
        trace = [
            UploadOp(points=((5, 5), (6, 6), (20, 20))),
            QueryOp(circle=Circle.from_radius((5, 5), 2)),
            DeleteOp(live_indices=(0,)),
            QueryOp(circle=Circle.from_radius((5, 5), 2)),
            UploadOp(points=((5, 6),), contents=(b"back",)),
            QueryOp(circle=Circle.from_radius((5, 5), 2), hide_radius_to=9),
        ]
        report = replay(deployment, trace)
        assert report.uploads == 2
        assert report.deletes == 1
        assert report.verified_queries == 3
        # First query sees (5,5) and (6,6); second loses the deleted (5,5);
        # third regains the re-uploaded (5,6).
        assert report.total_matches == 2 + 1 + 2

    def test_verification_catches_tampering(self, deployment):
        replay(deployment, [UploadOp(points=((5, 5), (9, 9)))])
        # Corrupt the server: drop a record behind the owner's back.
        deployment.server._records.pop(0)
        with pytest.raises(AssertionError):
            replay(
                deployment,
                [QueryOp(circle=Circle.from_radius((5, 5), 1))],
            )

    def test_unverified_replay_reports_only(self, deployment):
        replay(deployment, [UploadOp(points=((5, 5),))])
        deployment.server._records.pop(0)
        report = replay(
            deployment,
            [QueryOp(circle=Circle.from_radius((5, 5), 1))],
            verify=False,
        )
        assert report.queries == 1 and not report.mismatches

    def test_trace_generator_validation(self, deployment):
        with pytest.raises(ParameterError):
            generate_trace(deployment.scheme.space, 0, random.Random(1))

    def test_trace_reproducible(self, deployment):
        space = deployment.scheme.space
        a = generate_trace(space, 10, random.Random(9))
        b = generate_trace(space, 10, random.Random(9))
        assert a == b
