"""Cross-checks tying the implementation to the paper's reported numbers.

These tests assert the *structural* facts that make our benchmarks
comparable to the paper's Tables I-III and Figures 9-16: the concentric
circle counts, the vector lengths, the element counts behind every size the
paper reports, and the operation counts behind every time.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.opcount import (
    crse1_search_record_ops,
    crse2_search_record_ops,
)
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.core.concircles import num_concentric_circles
from repro.core.crse1 import CRSE1Scheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1, group_for_crse2
from repro.core.split import optimized_alpha
from repro.crypto.serialize import ElementSizeModel


class TestFig9:
    """m vs R, bounded by R²."""

    def test_m_grows_and_stays_under_square(self):
        previous = 0
        for radius in range(1, 51):
            m = num_concentric_circles(radius * radius)
            assert previous < m <= radius * radius + 1
            previous = m

    def test_known_anchors(self):
        assert num_concentric_circles(1) == 2
        assert num_concentric_circles(100) == 44
        # R = 50: the sum-of-two-squares density (Landau-Ramanujan) puts m
        # well below R² but in the high hundreds.
        m50 = num_concentric_circles(2500)
        assert 700 < m50 < 1100


class TestTableI:
    """CRSE-I growth: m = 2, 4, 7 and the α blow-up."""

    def test_m_and_alpha(self):
        for radius, m in ((1, 2), (2, 4), (3, 7)):
            assert num_concentric_circles(radius * radius) == m
            assert optimized_alpha(2, m) == {2: 10, 4: 35, 7: 120}[m]

    def test_search_time_ratio_matches_paper_order(self):
        # Paper Table I: Search grows 0.009 → 0.050 → 1.96 s.  The driver is
        # α: 2α+2 pairings per record.
        times = [
            PAPER_EC2_MODEL.time_s(
                crse1_search_record_ops(optimized_alpha(2, m))
            )
            for m in (2, 4, 7)
        ]
        assert times[0] < times[1] < times[2]
        assert times[2] / times[0] > 10


class TestTableII:
    """CRSE-I ciphertext/token sizes: equal, and exploding with R."""

    def test_ciphertext_equals_token_size(self):
        model = ElementSizeModel.paper()
        for m in (2, 4, 7):
            alpha = optimized_alpha(2, m)
            assert model.ssw_object_bytes(alpha) == model.ssw_object_bytes(alpha)

    def test_growth_pattern(self):
        model = ElementSizeModel.paper()
        sizes = [model.ssw_object_bytes(optimized_alpha(2, m)) for m in (2, 4, 7)]
        assert sizes[0] < sizes[1] < sizes[2]


class TestFig13Fig14:
    """CRSE-II sizes: flat ciphertext, quadratic token."""

    def test_ciphertext_is_640_bytes_at_paper_field(self):
        model = ElementSizeModel.paper()
        assert model.crse2_ciphertext_bytes(w=2) == 640

    def test_token_size_at_r10(self):
        model = ElementSizeModel.paper()
        m = num_concentric_circles(100)
        assert model.crse2_token_bytes(m) == 28_160  # 28.16 KB (Fig. 14)

    def test_ciphertext_independent_of_radius(self, rng):
        space = DataSpace(2, 64)
        scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
        key = scheme.gen_key(rng)
        # Ciphertext structure never references any radius.
        ct = scheme.encrypt(key, (10, 10), rng)
        assert ct.alpha == 4


class TestFig10ToFig12:
    """CRSE-II times: flat encryption, quadratic token/search."""

    def test_paper_scale_values(self):
        from repro.analysis.opcount import crse2_encrypt_ops, crse2_gen_token_ops

        enc_ms = PAPER_EC2_MODEL.time_ms(crse2_encrypt_ops(2))
        assert enc_ms == pytest.approx(5.61, rel=0.2)
        token_ms = PAPER_EC2_MODEL.time_ms(crse2_gen_token_ops(44, 2))
        assert token_ms == pytest.approx(329.47, rel=0.2)
        search_ms = PAPER_EC2_MODEL.time_ms(crse2_search_record_ops(22, 2))
        assert search_ms == pytest.approx(98.65, rel=0.1)

    def test_fig16_anchor_values(self):
        # Fig. 16 at n = 1000: R = 10 → 98.65 s, R = 1 → 4.44 s total.
        ms_r10 = 1000 * PAPER_EC2_MODEL.time_ms(crse2_search_record_ops(22, 2))
        assert ms_r10 / 1000 == pytest.approx(98.65, rel=0.1)
        # R = 1: m = 2; average evaluated ≈ 1 for hits, 2 for misses; the
        # paper's 4.44 s/1000 records ≈ 4.4 ms ≈ one 10-pairing sub-token.
        ms_r1 = 1000 * PAPER_EC2_MODEL.time_ms(crse2_search_record_ops(1, 2))
        assert ms_r1 / 1000 == pytest.approx(4.44, rel=0.1)


class TestSchemeComparison:
    """CRSE-II is 'much efficient' vs CRSE-I (paper's O(α^m) vs O(αm))."""

    def test_crse2_search_cheaper_than_crse1_at_same_radius(self):
        for radius in (1, 2, 3):
            m = num_concentric_circles(radius * radius)
            crse1_ops = crse1_search_record_ops(optimized_alpha(2, m))
            crse2_ops = crse2_search_record_ops(m, 2)  # even worst case
            assert crse2_ops.pairings <= crse1_ops.pairings

    def test_functional_equivalence_on_fast_backend(self):
        rng = random.Random(91)
        space = DataSpace(2, 8)
        q = Circle.from_radius((4, 4), 2)
        s1 = CRSE1Scheme(
            space, group_for_crse1(space, 4, "fast", rng), r_squared=4
        )
        s2 = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
        k1, k2 = s1.gen_key(rng), s2.gen_key(rng)
        t1 = s1.gen_token(k1, q, rng)
        t2 = s2.gen_token(k2, q, rng)
        for point in space.iter_points():
            r1 = s1.matches(t1, s1.encrypt(k1, point, rng))
            r2 = s2.matches(t2, s2.encrypt(k2, point, rng))
            assert r1 == r2, point
