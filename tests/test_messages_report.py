"""Unit tests for protocol message sizes and the CSV report exports."""

from __future__ import annotations

import pytest

from repro.analysis.report import Series, TextTable, series_to_csv
from repro.cloud.messages import (
    DeleteRequest,
    FetchRequest,
    FetchResponse,
    QueryRequest,
    SearchRequest,
    SearchResponse,
    TokenResponse,
    UploadDataset,
    UploadRecord,
)
from repro.core.geometry import Circle


class TestMessageSizes:
    def test_upload_record_counts_both_parts(self):
        record = UploadRecord(identifier=1, payload=b"x" * 100, content=b"y" * 40)
        assert record.size_bytes == 140

    def test_upload_record_without_content(self):
        assert UploadRecord(identifier=1, payload=b"x" * 7).size_bytes == 7

    def test_upload_dataset_sums_records(self):
        dataset = UploadDataset(
            records=(
                UploadRecord(0, b"a" * 10),
                UploadRecord(1, b"b" * 20, b"c" * 5),
            )
        )
        assert dataset.size_bytes == 35

    def test_token_and_search_sizes_equal_payload(self):
        assert TokenResponse(payload=b"t" * 64).size_bytes == 64
        assert SearchRequest(payload=b"t" * 64).size_bytes == 64

    def test_search_response_eight_bytes_per_id(self):
        assert SearchResponse(identifiers=(1, 2, 3)).size_bytes == 24
        assert SearchResponse().size_bytes == 0

    def test_fetch_sizes(self):
        assert FetchRequest(identifiers=(1, 2)).size_bytes == 16
        response = FetchResponse(contents=((1, b"x" * 10), (2, b"y" * 20)))
        assert response.size_bytes == 8 + 10 + 8 + 20

    def test_delete_request_size(self):
        assert DeleteRequest(identifiers=(5, 6, 7)).size_bytes == 24

    def test_query_request_carries_circle(self):
        request = QueryRequest(circle=Circle.from_radius((1, 2), 3))
        assert request.circle.r_squared == 9
        assert request.hide_radius_to is None


class TestCsvExports:
    def test_table_to_csv(self):
        table = TextTable("t", ["R", "m"])
        table.add_row(1, 2)
        table.add_row(10, 44)
        assert table.to_csv() == "R,m\n1,2\n10,44"

    def test_series_to_csv_multi(self):
        a = Series("measured")
        b = Series("paper")
        for x in (1, 2):
            a.add(x, x * 10)
            b.add(x, x * 20)
        csv = series_to_csv([a, b])
        assert csv.splitlines()[0] == "x,measured,paper"
        assert csv.splitlines()[2] == "2,20,40"

    def test_series_to_csv_empty(self):
        assert series_to_csv([]) == ""

    def test_csv_float_formatting_consistent_with_table(self):
        table = TextTable("t", ["v"])
        table.add_row(1234567.0)
        assert "1.23e+06" in table.to_csv()

    def test_ragged_series_padded_with_nan(self):
        a = Series("a")
        b = Series("b")
        a.add(1, 10)
        a.add(2, 20)
        b.add(1, 5)
        assert "nan" in series_to_csv([a, b])
