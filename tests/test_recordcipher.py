"""Tests for the record-content encryption layer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.recordcipher import RecordCipher
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def cipher() -> RecordCipher:
    return RecordCipher(b"0123456789abcdef0123456789abcdef")


class TestRoundTrip:
    @given(st.binary(max_size=500))
    def test_encrypt_decrypt(self, cipher, plaintext):
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_empty_plaintext(self, cipher):
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_long_plaintext_spans_blocks(self, cipher):
        data = bytes(range(256)) * 20
        assert cipher.decrypt(cipher.encrypt(data)) == data

    def test_randomized_nonces(self, cipher):
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_fixed_nonce_deterministic(self, cipher):
        nonce = b"\x01" * 16
        assert cipher.encrypt(b"x", nonce) == cipher.encrypt(b"x", nonce)


class TestAuthentication:
    def test_tampered_body_rejected(self, cipher):
        blob = bytearray(cipher.encrypt(b"patient record"))
        blob[20] ^= 1
        with pytest.raises(CryptoError):
            cipher.decrypt(bytes(blob))

    def test_tampered_tag_rejected(self, cipher):
        blob = bytearray(cipher.encrypt(b"patient record"))
        blob[-1] ^= 1
        with pytest.raises(CryptoError):
            cipher.decrypt(bytes(blob))

    def test_truncated_rejected(self, cipher):
        with pytest.raises(CryptoError):
            cipher.decrypt(b"\x00" * 10)

    def test_wrong_key_rejected(self, cipher):
        other = RecordCipher(b"another-key-another-key-another!")
        with pytest.raises(CryptoError):
            other.decrypt(cipher.encrypt(b"secret"))


class TestKeyHandling:
    def test_short_key_rejected(self):
        with pytest.raises(CryptoError):
            RecordCipher(b"short")

    def test_generate_key(self):
        key = RecordCipher.generate_key()
        assert len(key) == 32
        assert key != RecordCipher.generate_key()

    def test_bad_nonce_length(self, cipher):
        with pytest.raises(CryptoError):
            cipher.encrypt(b"x", nonce=b"short")

    def test_keystream_not_reused_across_lengths(self, cipher):
        # Same nonce, different plaintexts: XOR of ciphertext bodies must
        # equal XOR of plaintexts (stream property), never leak beyond it.
        nonce = b"\x02" * 16
        c1 = cipher.encrypt(b"aaaa", nonce)[16:-32]
        c2 = cipher.encrypt(b"bbbb", nonce)[16:-32]
        xored = bytes(a ^ b for a, b in zip(c1, c2))
        assert xored == bytes(a ^ b for a, b in zip(b"aaaa", b"bbbb"))
