"""Tests for Type-A1 parameter generation."""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups.params import (
    PairingParams,
    default_test_params,
    generate_params,
    params_for_bound,
    toy_params,
)
from repro.errors import ParameterError
from repro.math.primes import is_prime


class TestGeneration:
    def test_validates(self, rng):
        params = generate_params(rng=rng)
        params.validate()

    def test_field_prime_relation(self, rng):
        params = generate_params(rng=rng)
        assert params.field_prime == params.cofactor * params.group_order - 1
        assert params.field_prime % 4 == 3
        assert is_prime(params.field_prime)

    def test_requested_bit_lengths(self, rng):
        params = generate_params((12, 20, 12, 12), rng=rng)
        bits = [p.bit_length() for p in params.subgroup_primes]
        assert bits == [12, 20, 12, 12]

    def test_cofactor_divisible_by_four(self, rng):
        # N is odd, so q ≡ 3 (mod 4) forces 4 | l.
        params = generate_params(rng=rng)
        assert params.cofactor % 4 == 0

    def test_deterministic_under_seed(self):
        a = generate_params(rng=random.Random(42))
        b = generate_params(rng=random.Random(42))
        assert a == b


class TestParamsForBound:
    def test_payload_exceeds_bound(self, rng):
        for bound in (100, 10_000, 1 << 30):
            params = params_for_bound(bound, rng=rng)
            assert params.subgroup_primes[1] > bound

    def test_negative_bound_rejected(self, rng):
        with pytest.raises(ParameterError):
            params_for_bound(-1, rng=rng)


class TestValidation:
    def test_duplicate_primes_rejected(self):
        with pytest.raises(ParameterError):
            PairingParams((101, 101, 103, 107), 4, 4 * 101 * 101 * 103 * 107 - 1).validate()

    def test_composite_subgroup_rejected(self):
        with pytest.raises(ParameterError):
            PairingParams((100, 103, 107, 109), 4, 1).validate()

    def test_wrong_field_prime_rejected(self):
        good = toy_params()
        bad = PairingParams(
            good.subgroup_primes, good.cofactor, good.field_prime + 4
        )
        with pytest.raises(ParameterError):
            bad.validate()


class TestPresets:
    def test_toy_params_cached(self):
        assert toy_params() is toy_params()

    def test_default_test_params_payload_size(self):
        params = default_test_params()
        assert params.subgroup_primes[1].bit_length() == 40
        params.validate()
