"""Tests for the query-latency estimator and Jacobi's r₂(n) formula."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud.costmodel import PAPER_EC2_MODEL, estimate_query_latency
from repro.core.concircles import num_concentric_circles
from repro.math.sumsquares import (
    lattice_points_on_circle,
    representation_count,
)


class TestRepresentationCount:
    @given(st.integers(0, 2000))
    def test_matches_enumeration(self, n):
        assert representation_count(n) == len(
            lattice_points_on_circle((0, 0), n)
        )

    def test_classical_values(self):
        assert representation_count(0) == 1
        assert representation_count(1) == 4
        assert representation_count(2) == 4
        assert representation_count(3) == 0
        assert representation_count(5) == 8
        assert representation_count(25) == 12

    def test_negative(self):
        assert representation_count(-4) == 0

    def test_multiplicative_on_coprime_sums(self):
        # r₂ is not multiplicative in general, but r₂(n)/4 is for coprime
        # arguments — the classical identity behind the divisor formula.
        for a, b in ((5, 13), (2, 25), (9, 10)):
            lhs = representation_count(a * b) // 4
            rhs = (representation_count(a) // 4) * (
                representation_count(b) // 4
            )
            assert lhs == rhs, (a, b)


class TestLatencyEstimate:
    def test_reproduces_fig16_anchor(self):
        # n = 1000 matching records at R = 10 (avg case) ≈ the paper's
        # 98.65 s total search.
        m = num_concentric_circles(100)
        estimate = estimate_query_latency(
            m=m, n_records=1000, model=PAPER_EC2_MODEL, expected_matches=1000
        )
        assert estimate.server_search_ms / 1000 == pytest.approx(97.2, rel=0.02)

    def test_token_phase_matches_fig11(self):
        m = num_concentric_circles(100)
        estimate = estimate_query_latency(m=m, n_records=1, model=PAPER_EC2_MODEL)
        assert estimate.token_generation_ms == pytest.approx(306, rel=0.1)

    def test_network_terms(self):
        m = 44
        estimate = estimate_query_latency(
            m=m,
            n_records=10,
            model=PAPER_EC2_MODEL,
            expected_matches=2,
            rtt_ms=20.0,
            bandwidth_mbps=100.0,
        )
        # Token ≈ 28.16 KB → 20 ms RTT + ~2.25 ms on a 100 Mbps link.
        assert estimate.token_transfer_ms == pytest.approx(22.25, rel=0.05)
        assert estimate.response_transfer_ms >= 20.0
        assert estimate.total_ms > estimate.server_search_ms

    def test_misses_cost_more_than_hits(self):
        m = 44
        all_hits = estimate_query_latency(
            m=m, n_records=100, model=PAPER_EC2_MODEL, expected_matches=100
        )
        all_misses = estimate_query_latency(
            m=m, n_records=100, model=PAPER_EC2_MODEL, expected_matches=0
        )
        assert all_misses.server_search_ms > all_hits.server_search_ms
