"""Meta-tests: documentation coverage and API hygiene across the package.

A release-quality library documents every public item and keeps its
``__all__`` lists honest; these tests make both properties regression-proof.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_items_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            item = getattr(module, name)
            if inspect.isfunction(item) or inspect.isclass(item):
                if item.__module__ != module.__name__:
                    continue  # re-export; documented at its home
                if not inspect.getdoc(item):
                    undocumented.append(name)
                if inspect.isclass(item):
                    for method_name, method in vars(item).items():
                        if method_name.startswith("_"):
                            continue
                        # getattr on the class resolves inherited docs for
                        # overrides of documented abstract methods.
                        if inspect.isfunction(method) and not inspect.getdoc(
                            getattr(item, method_name)
                        ):
                            undocumented.append(f"{name}.{method_name}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestAllLists:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_all_names_resolve(self, module):
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module.__name__}.{name}"

    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_sorted_no_duplicates(self, module):
        names = list(module.__all__)
        assert len(names) == len(set(names)), f"{module.__name__} duplicates"


class TestPackageShape:
    def test_py_typed_marker_present(self):
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        assert (root / "py.typed").exists()

    def test_version_is_semver(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))
