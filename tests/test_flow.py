"""Tests for the project-wide flow tier (CRS008–CRS011).

Fixture mini-packages are written under ``tmp_path`` with ``crypto/`` /
``core/`` path segments so the scoped parameter-name sources apply, then
analyzed with :func:`analyze_flow`.  The suite covers the flow shapes the
issue calls out — direct, one-hop interprocedural, attribute-carried, and
sanitized-negative — plus the async rules, inline suppression, baselines,
and the no-false-positives check on the real tree.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.staticcheck import (
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.staticcheck.cli import run_lint
from repro.analysis.staticcheck.flow import analyze_flow

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def write_pkg(tmp_path: Path, files: dict[str, str]) -> Path:
    """Materialize a fixture package and return its root."""
    root = tmp_path / "proj"
    for relpath, source in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    for directory in {p.parent for p in root.rglob("*.py")}:
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
    return root


def flow_findings(root: Path, select=None):
    return analyze_flow([root], root=root, select=select)


def rules_at(findings, path_fragment: str) -> list[str]:
    return [f.rule for f in findings if path_fragment in f.path]


class TestCRS008Direct:
    def test_secret_param_into_exception(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "crypto/keys.py": """
                def check(key):
                    if key > 10:
                        raise ValueError(f"bad key {key}")
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]
        assert "keys.py" in findings[0].path
        assert "key" in findings[0].message

    def test_secret_param_into_log(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "crypto/keys.py": """
                import logging

                logger = logging.getLogger(__name__)

                def note(secret_key):
                    logger.info("loaded %s", secret_key)
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]
        assert "log record" in findings[0].message

    def test_clean_function_no_findings(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "crypto/keys.py": """
                def check(key):
                    if key > 10:
                        raise ValueError("key out of range")
                    return key * 2
                """
            },
        )
        assert flow_findings(root) == []

    def test_secret_type_annotation_outside_scoped_paths(self, tmp_path):
        # Annotation-based sources work anywhere, not just crypto/core.
        root = write_pkg(
            tmp_path,
            {
                "util/fmt.py": """
                class OwnerSecretKey:
                    pass

                def show(material: OwnerSecretKey):
                    raise RuntimeError(f"cannot format {material}")
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]


class TestCRS008Interprocedural:
    def test_one_hop_call_flow(self, tmp_path):
        # The sink lives in a helper module; taint enters one call away.
        root = write_pkg(
            tmp_path,
            {
                "crypto/report.py": """
                def fail_with(value):
                    raise ValueError(f"value was {value}")
                """,
                "crypto/scheme.py": """
                from crypto.report import fail_with

                def validate(key):
                    if key < 0:
                        fail_with(key)
                """,
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]
        # The finding anchors at the sink (the raise in report.py) and
        # names the caller chain.
        assert "report.py" in findings[0].path
        assert "via" in findings[0].message

    def test_attribute_carried_flow(self, tmp_path):
        # __init__ stores the secret on self; another method leaks it.
        root = write_pkg(
            tmp_path,
            {
                "crypto/holder.py": """
                class Holder:
                    def __init__(self, key):
                        self._sk = key

                    def describe(self):
                        raise RuntimeError(f"holder of {self._sk}")
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]
        assert "describe" in findings[0].snippet or "holder of" in str(
            findings[0].snippet
        )

    def test_sanitized_flow_is_negative(self, tmp_path):
        # Hashing and len() are approved projections — no finding.
        root = write_pkg(
            tmp_path,
            {
                "crypto/clean.py": """
                import hashlib

                def fingerprint(key):
                    digest = hashlib.sha256(bytes(key)).hexdigest()
                    raise ValueError(f"rejected key {digest} ({len(bytes(key))} bytes)")
                """
            },
        )
        assert flow_findings(root) == []

    def test_source_call_taints_return(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "crypto/gen.py": """
                def ssw_setup(n):
                    return object()

                def boom():
                    master = ssw_setup(4)
                    raise RuntimeError(f"made {master}")
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]
        assert "SSW master key" in findings[0].message

    def test_masked_tuple_unpack_only_taints_secret_slot(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "crypto/ks.py": """
                def load_crse2_key(blob):
                    return object(), object()

                def describe_scheme(blob):
                    scheme, key = load_crse2_key(blob)
                    raise ValueError(f"scheme {scheme}")

                def describe_key(blob):
                    scheme, key = load_crse2_key(blob)
                    raise ValueError(f"key {key}")
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]
        assert "describe_key" not in findings[0].message  # anchored at raise
        assert findings[0].snippet == 'raise ValueError(f"key {key}")'


class TestCRS009:
    def test_secret_to_wire_frame(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "crypto/wire.py": """
                def write_frame(sock, body):
                    pass

                def send_key(sock, key):
                    write_frame(sock, key)
                """
            },
        )
        findings = flow_findings(root)
        assert "CRS009" in [f.rule for f in findings]

    def test_secret_to_socket_write(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "crypto/push.py": """
                def leak(sock, secret_key):
                    sock.sendall(secret_key)
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS009"]

    def test_encrypted_payload_is_clean(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "crypto/push.py": """
                def ssw_encrypt(key, x, rng):
                    return b"ciphertext"

                def send(sock, key, x, rng):
                    sock.sendall(ssw_encrypt(key, x, rng))
                """
            },
        )
        assert flow_findings(root) == []


class TestCRS010:
    def test_direct_blocking_call_in_async(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "svc/server.py": """
                import os
                import time

                async def handler(fd):
                    time.sleep(0.1)
                    os.fsync(fd)
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS010", "CRS010"]

    def test_transitive_blocking_through_helper(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "svc/store.py": """
                import os

                def persist(fd):
                    os.fsync(fd)

                async def commit(fd):
                    persist(fd)
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS010"]
        assert "persist" in findings[0].message

    def test_executor_reference_is_exempt(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "svc/store.py": """
                import asyncio
                import os

                def persist(fd):
                    os.fsync(fd)

                async def commit(fd):
                    await asyncio.to_thread(persist, fd)

                async def commit2(loop, fd):
                    await loop.run_in_executor(None, persist, fd)
                """
            },
        )
        assert flow_findings(root) == []

    def test_sync_caller_is_exempt(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "svc/store.py": """
                import os

                def persist(fd):
                    os.fsync(fd)

                def commit(fd):
                    persist(fd)
                """
            },
        )
        assert flow_findings(root) == []


class TestCRS010AsyncClientShapes:
    """CRS010 over the shapes :mod:`repro.service.aio` is built from."""

    def test_blocking_dial_in_async_client_flagged(self, tmp_path):
        # A multiplexing client that dials with the *blocking* socket API
        # inside a coroutine stalls its own reader loop.
        root = write_pkg(
            tmp_path,
            {
                "svc/aio.py": """
                import socket

                class AsyncClient:
                    async def _ensure_connection(self, sock, addr):
                        sock.connect(addr)
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS010"]
        assert "connect" in findings[0].message

    def test_multiplexing_client_shape_is_clean(self, tmp_path):
        # The real client's shape: awaited asyncio transport calls plus a
        # sync bookkeeping closure (futures registry) inside the coroutine.
        root = write_pkg(
            tmp_path,
            {
                "svc/aio.py": """
                import asyncio

                class AsyncClient:
                    async def _ensure_connection(self, host, port):
                        reader, writer = await asyncio.open_connection(
                            host, port
                        )

                        def register(request_id, future):
                            self._pending[request_id] = future

                        return reader, writer, register
                """
            },
        )
        assert flow_findings(root) == []

    def test_loadgen_worker_shape_is_clean(self, tmp_path):
        # A closed-loop worker awaits the client and keeps time with
        # perf_counter — nothing here blocks the loop.
        root = write_pkg(
            tmp_path,
            {
                "loadgen/runner.py": """
                import time

                async def run_one(client, payload, deadline_ms, recorder):
                    started = time.perf_counter()
                    await client.search(payload, deadline_ms=deadline_ms)
                    recorder.record(time.perf_counter() - started)
                """
            },
        )
        assert flow_findings(root) == []


class TestCRS011:
    FIXTURE = {
        "svc/coord.py": """
        class Coordinator:
            def __init__(self, client):
                self._client = client

            async def _fan_out(self, specs, call):
                return [call(spec) for spec in specs]

            def _remaining_ms(self, request, started):
                return 50.0

            async def _do_search(self, request):
                def ask(spec):
                    return self._client(spec).search(request)

                return await self._fan_out([1], ask)
        """
    }

    def test_missing_deadline_flagged(self, tmp_path):
        findings = flow_findings(write_pkg(tmp_path, dict(self.FIXTURE)))
        assert [f.rule for f in findings] == ["CRS011"]
        assert "deadline" in findings[0].message

    def test_forwarded_deadline_is_clean(self, tmp_path):
        fixed = {
            "svc/coord.py": self.FIXTURE["svc/coord.py"].replace(
                ".search(request)",
                ".search(request, deadline_ms=self._remaining_ms(request, 0))",
            )
        }
        assert flow_findings(write_pkg(tmp_path, fixed)) == []

    def test_batch_fan_out_without_deadline_flagged(self, tmp_path):
        # search_batch is a deadline-carrying verb like the rest: a
        # coordinator fanning a token vector out must forward the budget.
        fixture = {
            "svc/coord.py": self.FIXTURE["svc/coord.py"].replace(
                ".search(request)", ".search_batch(request)"
            )
        }
        findings = flow_findings(write_pkg(tmp_path, fixture))
        assert [f.rule for f in findings] == ["CRS011"]
        assert "search_batch" in findings[0].message

    def test_batch_fan_out_with_deadline_clean(self, tmp_path):
        fixture = {
            "svc/coord.py": self.FIXTURE["svc/coord.py"].replace(
                ".search(request)",
                ".search_batch(request, deadline_ms=self._remaining_ms(request, 0))",
            )
        }
        assert flow_findings(write_pkg(tmp_path, fixture)) == []

    def test_verified_retry_path_without_deadline_flagged(self, tmp_path):
        # The failover retry path re-issues the verb against a sibling
        # replica; the retry must carry the *remaining* budget too, or a
        # failed first attempt silently doubles the caller's deadline.
        fixture = {
            "svc/coord.py": self.FIXTURE["svc/coord.py"].replace(
                ".search(request)", ".search_verified(request)"
            )
        }
        findings = flow_findings(write_pkg(tmp_path, fixture))
        assert [f.rule for f in findings] == ["CRS011"]
        assert "search_verified" in findings[0].message

    def test_verified_retry_path_with_deadline_clean(self, tmp_path):
        fixture = {
            "svc/coord.py": self.FIXTURE["svc/coord.py"].replace(
                ".search(request)",
                ".search_verified("
                "request, deadline_ms=self._remaining_ms(request, 0))",
            )
        }
        assert flow_findings(write_pkg(tmp_path, fixture)) == []

    def test_cluster_probe_without_deadline_flagged(self, tmp_path):
        fixture = {
            "svc/coord.py": self.FIXTURE["svc/coord.py"].replace(
                ".search(request)", ".cluster(request)"
            )
        }
        findings = flow_findings(write_pkg(tmp_path, fixture))
        assert [f.rule for f in findings] == ["CRS011"]
        assert "cluster" in findings[0].message

    def test_class_without_fan_out_is_exempt(self, tmp_path):
        fixture = {
            "svc/plain.py": """
            class Plain:
                async def _do_search(self, request):
                    return self.client.search(request)
            """
        }
        assert flow_findings(write_pkg(tmp_path, fixture)) == []


class TestSuppressionAndBaseline:
    LEAKY = {
        "crypto/keys.py": """
        def check(key):
            raise ValueError(f"bad key {key}")
        """
    }

    def test_inline_ignore_suppresses_flow_finding(self, tmp_path):
        suppressed = {
            "crypto/keys.py": """
            def check(key):
                raise ValueError(f"bad key {key}")  # reprolint: ignore[CRS008]
            """
        }
        assert flow_findings(write_pkg(tmp_path, suppressed)) == []

    def test_inline_ignore_other_rule_does_not_suppress(self, tmp_path):
        wrong_rule = {
            "crypto/keys.py": """
            def check(key):
                raise ValueError(f"bad key {key}")  # reprolint: ignore[CRS002]
            """
        }
        findings = flow_findings(write_pkg(tmp_path, wrong_rule))
        assert [f.rule for f in findings] == ["CRS008"]

    def test_baseline_round_trip_for_flow_findings(self, tmp_path):
        root = write_pkg(tmp_path, dict(self.LEAKY))
        findings = flow_findings(root)
        assert findings
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        known = load_baseline(baseline_file)
        new, suppressed = partition_findings(flow_findings(root), known)
        assert new == []
        assert len(suppressed) == len(findings)

    def test_select_restricts_rules(self, tmp_path):
        both = {
            "crypto/mix.py": """
            import os
            import time

            def check(key):
                raise ValueError(f"bad key {key}")

            async def commit(fd):
                os.fsync(fd)
            """
        }
        root = write_pkg(tmp_path, both)
        assert {f.rule for f in flow_findings(root)} == {"CRS008", "CRS010"}
        assert {f.rule for f in flow_findings(root, ["CRS010"])} == {"CRS010"}


class TestCliIntegration:
    def test_run_lint_flow_strict_on_fixture(self, tmp_path, capsys):
        root = write_pkg(tmp_path, dict(TestSuppressionAndBaseline.LEAKY))
        code = run_lint(
            [root], root=root, flow=True, strict=True, no_baseline=True
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "CRS008" in out

    def test_strict_fails_on_stale_baseline(self, tmp_path, capsys):
        root = write_pkg(tmp_path, dict(TestSuppressionAndBaseline.LEAKY))
        baseline_file = root / ".reprolint-baseline.json"
        code = run_lint(
            [root], root=root, flow=True, write_baseline_file=True
        )
        assert code == 0
        # Fix the leak; the baseline entry is now stale.
        (root / "crypto" / "keys.py").write_text(
            "def check(key):\n    raise ValueError('bad key')\n",
            encoding="utf-8",
        )
        relaxed = run_lint(
            [root], root=root, flow=True, baseline=baseline_file
        )
        strict = run_lint(
            [root], root=root, flow=True, strict=True, baseline=baseline_file
        )
        out = capsys.readouterr().out
        assert relaxed == 0
        assert strict == 1
        assert "stale" in out

    def test_sarif_output_shape(self, tmp_path, capsys):
        import json

        root = write_pkg(tmp_path, dict(TestSuppressionAndBaseline.LEAKY))
        code = run_lint(
            [root],
            root=root,
            flow=True,
            no_baseline=True,
            output_format="sarif",
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert results and results[0]["ruleId"] == "CRS008"
        rule_ids = {
            r["id"] for r in payload["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"CRS001", "CRS008", "CRS011"} <= rule_ids


class TestIntegrityTaintModel:
    """The integrity subsystem's key material is covered by the model."""

    def test_derive_integrity_secret_is_source(self, tmp_path):
        root = write_pkg(
            tmp_path,
            {
                "integrity/ks.py": """
                def derive_integrity_secret(a, b):
                    return b"s"

                def boom(a, b):
                    s = derive_integrity_secret(a, b)
                    raise RuntimeError(f"derived {s}")
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]
        assert "integrity tag-key secret" in findings[0].message

    def test_secret_param_in_integrity_path(self, tmp_path):
        # "integrity" is a scoped path segment: a parameter named
        # ``secret`` there is key material, same as in crypto/.
        root = write_pkg(
            tmp_path,
            {
                "integrity/tags.py": """
                def mint(secret):
                    raise ValueError(f"cannot mint with {secret}")
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS008"]

    def test_tagkeys_annotation_to_wire_is_flagged(self, tmp_path):
        # TagKeys is a secret annotation type everywhere, not just under
        # the scoped paths.
        root = write_pkg(
            tmp_path,
            {
                "util/push.py": """
                class TagKeys:
                    pass

                def leak(sock, keys: TagKeys):
                    sock.sendall(keys)
                """
            },
        )
        findings = flow_findings(root)
        assert [f.rule for f in findings] == ["CRS009"]

    def test_minted_tag_is_clean_on_the_wire(self, tmp_path):
        # An HMAC tag minted from the keys is the approved projection —
        # shipping it is the subsystem's whole point.
        root = write_pkg(
            tmp_path,
            {
                "integrity/tags.py": """
                def record_tag(keys, identifier, payload):
                    return b"mac"

                def ship(sock, secret, identifier, payload):
                    sock.sendall(record_tag(secret, identifier, payload))
                """
            },
        )
        assert flow_findings(root) == []


class TestRealTreeIsClean:
    def test_no_flow_findings_on_src_repro(self):
        findings = analyze_flow([SRC_ROOT], root=REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)
