"""Tests for CRSE-I (paper Sec. VI-B)."""

from __future__ import annotations

import random

import pytest

from repro.core.crse1 import CRSE1Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse1
from repro.errors import SchemeError


@pytest.fixture(scope="module")
def setup_r1():
    """CRSE-I fixed to R = 1 on an 8×8 space."""
    rng = random.Random(41)
    space = DataSpace(2, 8)
    scheme = CRSE1Scheme(
        space, group_for_crse1(space, 1, "fast", rng), r_squared=1
    )
    return scheme, scheme.gen_key(rng)


@pytest.fixture(scope="module")
def setup_r2():
    """CRSE-I fixed to R = 2 (m = 4, α = 35 optimized)."""
    rng = random.Random(43)
    space = DataSpace(2, 8)
    scheme = CRSE1Scheme(
        space, group_for_crse1(space, 4, "fast", rng), r_squared=4
    )
    return scheme, scheme.gen_key(rng)


class TestPaperExample:
    def test_fig5_example(self, setup_r1, rng):
        scheme, key = setup_r1
        assert scheme.m == 2  # Table I: R = 1 → m = 2
        q = Circle.from_radius((3, 2), 1)
        token = scheme.gen_token(key, q, rng)
        assert scheme.matches(token, scheme.encrypt(key, (2, 2), rng))
        assert not scheme.matches(token, scheme.encrypt(key, (1, 3), rng))

    def test_alpha_values(self, setup_r1, setup_r2):
        # Optimized α = C(m+3, 3): m=2 → 10, m=4 → 35.
        assert setup_r1[0].alpha == 10
        assert setup_r2[0].alpha == 35


class TestExhaustiveCorrectness:
    def test_all_points_r1(self, setup_r1, rng):
        scheme, key = setup_r1
        q = Circle.from_radius((4, 4), 1)
        token = scheme.gen_token(key, q, rng)
        for point in scheme.space.iter_points():
            got = scheme.matches(token, scheme.encrypt(key, point, rng))
            assert got == point_in_circle(point, q), point

    def test_all_points_r2(self, setup_r2, rng):
        scheme, key = setup_r2
        q = Circle.from_radius((3, 5), 2)
        token = scheme.gen_token(key, q, rng)
        for point in scheme.space.iter_points():
            got = scheme.matches(token, scheme.encrypt(key, point, rng))
            assert got == point_in_circle(point, q), point

    def test_naive_split_variant_agrees(self, rng):
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space,
            group_for_crse1(space, 1, "fast", rng),
            r_squared=1,
            optimize_split=False,
        )
        assert scheme.alpha == 16
        key = scheme.gen_key(rng)
        q = Circle.from_radius((4, 4), 1)
        token = scheme.gen_token(key, q, rng)
        for point in ((4, 4), (4, 5), (5, 5), (6, 4)):
            got = scheme.matches(token, scheme.encrypt(key, point, rng))
            assert got == point_in_circle(point, q)


class TestStaticRadiusLimitation:
    def test_wrong_radius_token_rejected(self, setup_r1, rng):
        scheme, key = setup_r1
        with pytest.raises(SchemeError):
            scheme.gen_token(key, Circle.from_radius((4, 4), 2), rng)

    def test_same_key_multiple_centers(self, setup_r1, rng):
        # The radius is fixed; the center is per-query.
        scheme, key = setup_r1
        for center in ((1, 1), (4, 6), (6, 2)):
            token = scheme.gen_token(key, Circle.from_radius(center, 1), rng)
            assert scheme.matches(token, scheme.encrypt(key, center, rng))

    def test_cross_configuration_key_rejected(self, setup_r1, setup_r2, rng):
        scheme_r1, _ = setup_r1
        _, key_r2 = setup_r2
        with pytest.raises(SchemeError):
            scheme_r1.encrypt(key_r2, (1, 1), rng)

    def test_cross_configuration_objects_rejected(self, setup_r1, setup_r2, rng):
        scheme_r1, key_r1 = setup_r1
        scheme_r2, key_r2 = setup_r2
        token_r2 = scheme_r2.gen_token(
            key_r2, Circle.from_radius((4, 4), 2), rng
        )
        ct_r1 = scheme_r1.encrypt(key_r1, (4, 4), rng)
        with pytest.raises(SchemeError):
            scheme_r1.matches(token_r2, ct_r1)


class TestRadiusHiding:
    def test_padded_product_still_correct(self, rng):
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space,
            group_for_crse1(space, 1, "fast", rng, hide_radius_to=3),
            r_squared=1,
            hide_radius_to=3,
        )
        assert scheme.m == 3  # 2 real + 1 dummy factor
        key = scheme.gen_key(rng)
        q = Circle.from_radius((4, 4), 1)
        token = scheme.gen_token(key, q, rng)
        assert scheme.matches(token, scheme.encrypt(key, (4, 5), rng))
        assert not scheme.matches(token, scheme.encrypt(key, (6, 6), rng))

    def test_k_below_m_rejected(self, rng):
        space = DataSpace(2, 8)
        with pytest.raises(SchemeError):
            CRSE1Scheme(
                space,
                group_for_crse1(space, 4, "fast", rng),
                r_squared=4,
                hide_radius_to=2,
            )


class TestBoundSizing:
    def test_required_bound_grows_with_m(self):
        space = DataSpace(2, 8)
        b1 = CRSE1Scheme.required_inner_product_bound(space, 1)
        b2 = CRSE1Scheme.required_inner_product_bound(space, 4)
        assert b2 > b1
        # Single-factor bound is max(w(T-1)², maxdist+1) = 99 here.
        assert b1 == 99**2
        assert b2 == 99**4

    def test_scheme_checks_group_size(self, rng):
        space = DataSpace(2, 8)
        small_group = group_for_crse1(space, 1, "fast", rng)
        # A group sized for m=2 cannot back an R=3 (m=7) scheme.
        with pytest.raises(SchemeError):
            CRSE1Scheme(space, small_group, r_squared=9)


class TestHigherDimensions:
    def test_crse1_three_dimensional_sphere(self, rng):
        # Sec. VI-D: both schemes extend beyond the plane; CRSE-I's m then
        # follows Legendre's three-square count.
        space = DataSpace(3, 6)
        scheme = CRSE1Scheme(
            space, group_for_crse1(space, 1, "fast", rng), r_squared=1
        )
        assert scheme.m == 2  # {0, 1} are sums of three squares
        assert scheme.alpha == 15  # C(2 + 4, 4)
        key = scheme.gen_key(rng)
        q = Circle.from_radius((3, 3, 3), 1)
        token = scheme.gen_token(key, q, rng)
        for point in ((3, 3, 3), (3, 3, 4), (4, 4, 3), (0, 0, 0)):
            got = scheme.matches(token, scheme.encrypt(key, point, rng))
            assert got == point_in_circle(point, q), point
