"""Tests for Paillier AHE and the two-server compute-then-compare strawman."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.strawman import StrawmanSystem
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.crypto.paillier import paillier_keygen
from repro.errors import CryptoError, ParameterError


@pytest.fixture(scope="module")
def keys():
    return paillier_keygen(128, random.Random(0x9A1))


class TestPaillier:
    @settings(max_examples=25, deadline=None)
    @given(m=st.integers(-10**9, 10**9))
    def test_roundtrip(self, keys, m):
        rng = random.Random(m & 0xFFFF)
        assert keys.decrypt(keys.public.encrypt(m, rng)) == m

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6))
    def test_additive_homomorphism(self, keys, a, b):
        rng = random.Random((a * 31 + b) & 0xFFFF)
        ea = keys.public.encrypt(a, rng)
        eb = keys.public.encrypt(b, rng)
        assert keys.decrypt(keys.public.add(ea, eb)) == a + b

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(-10**6, 10**6), k=st.integers(-1000, 1000))
    def test_scalar_multiplication(self, keys, a, k):
        rng = random.Random((a ^ k) & 0xFFFF)
        ea = keys.public.encrypt(a, rng)
        assert keys.decrypt(keys.public.scalar_mul(ea, k)) == a * k

    def test_probabilistic_encryption(self, keys):
        rng = random.Random(7)
        assert keys.public.encrypt(5, rng) != keys.public.encrypt(5, rng)

    def test_rerandomize_preserves_plaintext(self, keys):
        rng = random.Random(8)
        ct = keys.public.encrypt(42, rng)
        ct2 = keys.public.rerandomize(ct, rng)
        assert ct2 != ct and keys.decrypt(ct2) == 42

    def test_message_bounds(self, keys):
        rng = random.Random(9)
        with pytest.raises(CryptoError):
            keys.public.encrypt(keys.public.n, rng)

    def test_ciphertext_bounds(self, keys):
        with pytest.raises(CryptoError):
            keys.decrypt(0)

    def test_keygen_validation(self):
        with pytest.raises(CryptoError):
            paillier_keygen(8, random.Random(1))

    def test_signed_decoding_extremes(self, keys):
        rng = random.Random(10)
        big = keys.public.n // 2 - 1
        assert keys.decrypt(keys.public.encrypt(big, rng)) == big
        assert keys.decrypt(keys.public.encrypt(-big, rng)) == -big


@pytest.fixture(scope="module")
def strawman():
    rng = random.Random(0x9A2)
    space = DataSpace(2, 32)
    system = StrawmanSystem(space, rng, modulus_bits=128)
    points = [(rng.randrange(32), rng.randrange(32)) for _ in range(15)]
    system.outsource(points)
    return system, points


class TestStrawmanCorrectness:
    def test_matches_plaintext_predicate(self, strawman):
        system, points = strawman
        for center, radius in (((16, 16), 5), ((0, 0), 10), ((31, 31), 3)):
            circle = Circle.from_radius(center, radius)
            got = system.circular_search(circle)
            want = [
                i for i, p in enumerate(points) if point_in_circle(p, circle)
            ]
            assert got == want, (center, radius)

    def test_boundary_point_included(self, strawman):
        system, points = strawman
        rng = random.Random(3)
        space = DataSpace(2, 16)
        fresh = StrawmanSystem(space, rng, modulus_bits=128)
        fresh.outsource([(5, 5), (5, 7), (9, 9)])
        # (5,7) is exactly on the boundary of radius-2 circle at (5,5).
        got = fresh.circular_search(Circle.from_radius((5, 5), 2))
        assert got == [0, 1]

    def test_empty_result(self, strawman):
        system, points = strawman
        circle = Circle((16, 16), 0)
        got = system.circular_search(circle)
        want = [i for i, p in enumerate(points) if p == (16, 16)]
        assert got == want


class TestStrawmanCost:
    """The quantitative version of the paper's Sec. III rejection."""

    def test_interactions_scale_per_record(self, strawman):
        system, points = strawman
        system.stats.interactions = 0
        system.stats.secure_multiplications = 0
        system.circular_search(Circle.from_radius((16, 16), 4))
        # w = 2 secure multiplications per record, each one interaction.
        assert system.stats.secure_multiplications == 2 * len(points)
        # Plus at least one comparison interaction per record.
        assert system.stats.interactions >= 3 * len(points)

    def test_crse_needs_no_per_record_interaction(self):
        # The contrast: a CRSE-II query is a single client→server message
        # regardless of n (asserted throughout the cloud tests); here we
        # assert the strawman's cost is Ω(n).
        rng = random.Random(0x9A3)
        space = DataSpace(2, 16)
        small = StrawmanSystem(space, rng, modulus_bits=128)
        small.outsource([(1, 1)] * 3)
        small.circular_search(Circle.from_radius((1, 1), 1))
        per_record = small.stats.interactions / 3
        assert per_record >= 3

    def test_two_servers_required(self, strawman):
        # Structural: S1 holds no key material; only S2 can decrypt.
        system, _ = strawman
        assert not hasattr(system, "_lam")
        assert system.s2._secret.public == system.public


class TestStrawmanValidation:
    def test_modulus_too_small_for_space(self):
        rng = random.Random(1)
        with pytest.raises(ParameterError):
            StrawmanSystem(DataSpace(2, 1 << 40), rng, modulus_bits=64)

    def test_circle_validation(self, strawman):
        system, _ = strawman
        with pytest.raises(ParameterError):
            system.circular_search(Circle.from_radius((99, 0), 1))
