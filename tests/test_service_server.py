"""End-to-end tests for the TCP service: verbs, backpressure, deadlines.

A real :class:`~repro.service.server.ServiceServer` runs on an asyncio
loop in a background thread; tests talk to it over real sockets through
the blocking :class:`~repro.service.client.ServiceClient`.  Slow-path
behaviour (BUSY, DEADLINE) is driven by a fake engine whose searches
block for a configurable time, so the tests stay fast and deterministic.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time

import pytest

from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.cloud.server import SearchStats
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ServiceBusyError,
    ServiceConnectionError,
    WireFormatError,
)
from repro.service import protocol
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.engine import EngineSearchResult, SearchEngine
from repro.service.server import ServiceConfig, ServiceServer


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
class ServerHandle:
    """Run a ServiceServer on its own loop in a daemon thread."""

    def __init__(self, scheme, config=None, engine=None):
        self.server = ServiceServer(scheme, config=config, engine=engine)
        self.port: int | None = None
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self._main())
        self._loop.close()

    async def _main(self) -> None:
        self.port = await self.server.start()
        self._started.set()
        await self.server.serve_forever()

    def start(self) -> int:
        self._thread.start()
        assert self._started.wait(10), "server did not start"
        assert self.port is not None
        return self.port

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=True), self._loop
        )
        future.result(timeout=15)
        self._thread.join(timeout=10)
        assert not self._thread.is_alive()


class SlowEngine:
    """Engine stand-in whose searches block for a fixed time."""

    def __init__(self, delay_s: float):
        self.delay_s = delay_s
        self.searches = 0
        self.workers = 1
        self.record_count = 0

    def load(self, records) -> int:
        self.record_count += len(list(records))
        return self.record_count

    def delete(self, identifiers) -> int:
        return 0

    def search(self, token_payload: bytes) -> EngineSearchResult:
        self.searches += 1
        time.sleep(self.delay_s)
        stats = SearchStats()
        stats.partitions = (self.delay_s * 1000.0,)
        stats.elapsed_ms = self.delay_s * 1000.0
        return EngineSearchResult(identifiers=(), stats=stats)

    def warm_up(self) -> None:
        """No processes to warm."""

    def close(self, wait: bool = True) -> None:
        """Nothing to close."""


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0x5E4)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    points = [(16, 16), (17, 17), (30, 2), (2, 30), (10, 10), (16, 18)]
    dataset = UploadDataset(
        records=tuple(
            UploadRecord(
                identifier=i,
                payload=encode_ciphertext(
                    scheme, scheme.encrypt(key, point, rng)
                ),
                content=f"record-{i}".encode(),
            )
            for i, point in enumerate(points)
        )
    )
    token = encode_token(
        scheme, scheme.gen_token(key, Circle.from_radius((16, 16), 3), rng)
    )
    return scheme, dataset, token


@pytest.fixture(scope="module")
def live_server(env):
    scheme, _, _ = env
    handle = ServerHandle(
        scheme,
        config=ServiceConfig(workers=2),
        engine=SearchEngine(scheme, workers=2),
    )
    handle.start()
    yield handle
    handle.stop()


def _client(handle: ServerHandle, **kwargs) -> ServiceClient:
    kwargs.setdefault("timeout_s", 30.0)
    kwargs.setdefault("rng", random.Random(7))
    return ServiceClient("127.0.0.1", handle.port, **kwargs)


# ----------------------------------------------------------------------
# Happy path
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_full_round(self, env, live_server):
        _, dataset, token = env
        client = _client(live_server)

        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2

        stored = client.upload(dataset)
        assert stored == len(dataset.records)

        response, stats = client.search(token)
        assert (0, 1, 5) == response.identifiers
        assert stats["records_scanned"] == len(dataset.records)
        assert stats["matches"] == 3
        assert len(stats["partitions"]) == 2

        contents = client.fetch(response.identifiers)
        assert contents == {0: b"record-0", 1: b"record-1", 5: b"record-5"}

        removed = client.delete((5, 999))
        assert removed == 1
        response, _ = client.search(token)
        assert (0, 1) == response.identifiers

        snapshot = client.stats()
        verbs = snapshot["verbs"]
        assert verbs["search"]["requests"] >= 2
        assert verbs["upload"]["requests"] >= 1
        assert snapshot["records"] == len(dataset.records) - 1
        assert snapshot["queue"]["limit"] == 32

    def test_internal_error_is_typed_not_fatal(self, env, live_server):
        _, dataset, _ = env
        client = _client(live_server)
        # Re-uploading the same identifiers violates the store's
        # uniqueness rule: the server must answer INTERNAL, not die.
        with pytest.raises(Exception) as excinfo:
            client.upload(dataset)
        assert "INTERNAL" in str(excinfo.value) or "duplicate" in str(
            excinfo.value
        ).lower()
        assert client.health()["status"] == "ok"


# ----------------------------------------------------------------------
# Hostile bytes on the wire
# ----------------------------------------------------------------------
class TestWireFaults:
    def test_hostile_length_prefix_closes_connection(self, live_server):
        with socket.create_connection(
            ("127.0.0.1", live_server.port), timeout=10
        ) as sock:
            sock.settimeout(10)
            sock.sendall(b"\xff\xff\xff\xff")
            reply = protocol.decode_reply(protocol.recv_frame(sock))
            assert not reply.ok
            assert reply.error_code == protocol.ERR_PROTOCOL
            assert reply.request_id == 0
            # Stream alignment is unrecoverable: server hangs up.
            with pytest.raises(WireFormatError):
                protocol.recv_frame(sock)
        # ... and keeps serving everyone else.
        assert _client(live_server).health()["status"] == "ok"

    def test_junk_envelope_keeps_connection(self, live_server):
        with socket.create_connection(
            ("127.0.0.1", live_server.port), timeout=10
        ) as sock:
            sock.settimeout(10)
            protocol.send_frame(sock, b"this is not json")
            reply = protocol.decode_reply(protocol.recv_frame(sock))
            assert not reply.ok
            assert reply.error_code == protocol.ERR_PROTOCOL
            # Framing survived, so the same connection still works.
            protocol.send_frame(sock, protocol.encode_request("health", 3))
            reply = protocol.decode_reply(protocol.recv_frame(sock))
            assert reply.ok and reply.request_id == 3

    def test_malformed_token_rejected_as_protocol_error(self, live_server):
        client = _client(live_server)
        with pytest.raises(ProtocolError):
            client.search(b"\x00\x01not-a-token")
        assert client.health()["status"] == "ok"


# ----------------------------------------------------------------------
# Deadlines (acceptance: typed timeout, server keeps serving)
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_exceeded_is_typed_and_server_survives(self, env):
        scheme, _, token = env
        handle = ServerHandle(scheme, engine=SlowEngine(delay_s=1.5))
        handle.start()
        try:
            client = _client(handle)
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.search(token, deadline_ms=150.0)
            # The reply must arrive at the deadline, not after the full
            # 1.5 s scan the worker is still burning through.
            assert time.monotonic() - started < 1.2
            # The server is still alive and still answering.
            assert client.health()["status"] == "ok"
            snapshot = client.stats()
            assert snapshot["deadline_exceeded"] == 1
        finally:
            handle.stop()

    def test_fast_request_beats_its_deadline(self, env, live_server):
        client = _client(live_server)
        assert client._request("health", deadline_ms=5_000.0)["status"] == "ok"


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_busy_rejection_is_typed_and_retryable(self, env):
        scheme, _, token = env
        handle = ServerHandle(
            scheme,
            config=ServiceConfig(max_pending=1),
            engine=SlowEngine(delay_s=1.0),
        )
        handle.start()
        try:
            slow_error: list = []

            def occupy() -> None:
                try:
                    _client(handle).search(token)
                except Exception as exc:  # pragma: no cover - diagnostics
                    slow_error.append(exc)

            occupier = threading.Thread(target=occupy)
            occupier.start()
            time.sleep(0.3)  # let the slow search take the only slot

            # No retries: the BUSY rejection surfaces immediately.
            with pytest.raises(ServiceBusyError):
                _client(handle, retry=RetryPolicy(attempts=1)).health()

            # With retries, the same call rides out the backpressure.
            patient = _client(
                handle,
                retry=RetryPolicy(attempts=8, base_delay_s=0.2, jitter=0.0),
            )
            assert patient.health()["status"] == "ok"

            occupier.join(timeout=10)
            assert not slow_error, f"slow search failed: {slow_error}"
            assert handle.server.metrics.snapshot()["rejected_busy"] >= 1
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Client retry + shutdown
# ----------------------------------------------------------------------
class TestClientRetry:
    def test_unreachable_server_raises_connection_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        client = ServiceClient(
            "127.0.0.1",
            dead_port,
            timeout_s=1.0,
            retry=RetryPolicy(attempts=2, base_delay_s=0.01),
            rng=random.Random(1),
        )
        with pytest.raises(ServiceConnectionError):
            client.health()

    def test_retry_policy_backoff_shape(self):
        policy = RetryPolicy(
            attempts=4, base_delay_s=0.1, max_delay_s=0.5, jitter=0.0
        )
        rng = random.Random(0)
        assert policy.delay_s(0, rng) == pytest.approx(0.1)
        assert policy.delay_s(1, rng) == pytest.approx(0.2)
        assert policy.delay_s(3, rng) == pytest.approx(0.5)  # capped
        jittered = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        for i in range(4):
            delay = jittered.delay_s(0, rng)
            assert 0.05 <= delay <= 0.1


class TestShutdown:
    def test_drain_completes_inflight_then_refuses(self, env):
        scheme, _, token = env
        handle = ServerHandle(scheme, engine=SlowEngine(delay_s=0.6))
        port = handle.start()
        results: list = []

        def slow_search() -> None:
            try:
                results.append(_client(handle).search(token))
            except Exception as exc:  # pragma: no cover - diagnostics
                results.append(exc)

        searcher = threading.Thread(target=slow_search)
        searcher.start()
        time.sleep(0.2)  # the search is now in flight
        handle.stop()  # graceful drain
        searcher.join(timeout=10)
        assert len(results) == 1
        assert not isinstance(results[0], Exception), results[0]
        # After drain the listener is gone.
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5)


class TestRequestIdCheck:
    """Regression: a success reply must echo the request id.

    The id-0 placeholder exists for servers that could not even parse the
    request id out of a malformed frame — which can only ever be an
    *error* reply.  A success reply carrying id 0 (or any other mismatch)
    means the client would be accepting some other request's answer, so
    it must be rejected as a protocol violation.
    """

    @staticmethod
    def _one_shot_server(reply_builder):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]

        def serve() -> None:
            conn, _ = listener.accept()
            with conn:
                body = protocol.recv_frame(conn)
                request = protocol.decode_request(body)
                protocol.send_frame(conn, reply_builder(request))
            listener.close()

        threading.Thread(target=serve, daemon=True).start()
        return port

    def _client(self, port) -> ServiceClient:
        return ServiceClient(
            "127.0.0.1", port, timeout_s=10.0,
            retry=RetryPolicy(attempts=1),
        )

    def test_success_reply_with_zero_id_rejected(self):
        port = self._one_shot_server(
            lambda request: protocol.encode_ok(0, {"status": "ok"})
        )
        with pytest.raises(ProtocolError, match="reply for request 0"):
            self._client(port).health()

    def test_success_reply_with_wrong_id_rejected(self):
        port = self._one_shot_server(
            lambda request: protocol.encode_ok(
                request.request_id + 1, {"status": "ok"}
            )
        )
        with pytest.raises(ProtocolError, match="expected"):
            self._client(port).health()

    def test_error_reply_with_zero_id_accepted_as_typed_error(self):
        port = self._one_shot_server(
            lambda request: protocol.encode_error(
                0, protocol.ERR_PROTOCOL, "could not parse your id"
            )
        )
        with pytest.raises(ProtocolError, match="could not parse your id"):
            self._client(port).health()

    def test_error_reply_with_wrong_nonzero_id_rejected(self):
        port = self._one_shot_server(
            lambda request: protocol.encode_error(
                request.request_id + 7, protocol.ERR_INTERNAL, "boom"
            )
        )
        with pytest.raises(ProtocolError, match="reply for request"):
            self._client(port).health()

    def test_matching_id_still_accepted(self, live_server):
        health = ServiceClient("127.0.0.1", live_server.port).health()
        assert health["status"] == "ok"
