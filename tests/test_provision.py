"""Tests for group provisioning (repro.core.provision)."""

from __future__ import annotations

import pytest

from repro.core.geometry import DataSpace
from repro.core.provision import group_for_crse1, group_for_crse2, provision_group
from repro.crypto.groups.base import SUBGROUP_Q
from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.pairing import SupersingularPairingGroup
from repro.errors import ParameterError


class TestProvisionGroup:
    def test_fast_backend(self, rng):
        group = provision_group(1000, "fast", rng)
        assert isinstance(group, FastCompositeGroup)
        assert group.exponent_bound_ok(1000)

    def test_pairing_backend(self, rng):
        group = provision_group(1000, "pairing", rng, noise_bits=16)
        assert isinstance(group, SupersingularPairingGroup)
        assert group.exponent_bound_ok(1000)

    def test_payload_floor_applies(self, rng):
        group = provision_group(10, "fast", rng)
        # Even a tiny bound gets the 40-bit anti-collision floor.
        assert group.subgroup_primes[SUBGROUP_Q].bit_length() >= 40

    def test_large_bound(self, rng):
        bound = 1 << 100
        group = provision_group(bound, "fast", rng)
        assert group.subgroup_primes[SUBGROUP_Q] > bound

    def test_unknown_backend(self, rng):
        with pytest.raises(ParameterError):
            provision_group(100, "quantum", rng)


class TestSchemeSizing:
    def test_crse2_group_fits_space(self, rng):
        space = DataSpace(2, 1 << 15)
        group = group_for_crse2(space, "fast", rng)
        assert group.exponent_bound_ok(space.max_distance_squared() + 1)

    def test_crse1_group_scales_with_radius(self, rng):
        space = DataSpace(2, 8)
        g_r1 = group_for_crse1(space, 1, "fast", rng)
        g_r3 = group_for_crse1(space, 9, "fast", rng)
        assert (
            g_r3.subgroup_primes[SUBGROUP_Q].bit_length()
            > g_r1.subgroup_primes[SUBGROUP_Q].bit_length()
        )

    def test_crse1_hide_radius_bound(self, rng):
        space = DataSpace(2, 8)
        # K = 8 dummy-padded factors push the product bound past the 40-bit
        # payload floor (99^8 ≈ 2^53), so the padded group must be larger.
        padded = group_for_crse1(space, 1, "fast", rng, hide_radius_to=8)
        plain = group_for_crse1(space, 1, "fast", rng)
        assert (
            padded.subgroup_primes[SUBGROUP_Q].bit_length()
            > plain.subgroup_primes[SUBGROUP_Q].bit_length()
        )

    def test_crse1_hide_radius_too_small(self, rng):
        space = DataSpace(2, 8)
        with pytest.raises(ParameterError):
            group_for_crse1(space, 4, "fast", rng, hide_radius_to=1)
