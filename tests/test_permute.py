"""Tests for the Permute algorithm (repro.core.permute)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.permute import permutation_from_beta, permute, random_beta
from repro.errors import ParameterError


class TestPermutationFromBeta:
    def test_enumerates_all_permutations(self):
        n = 4
        seen = {
            tuple(permutation_from_beta(n, beta))
            for beta in range(1, math.factorial(n) + 1)
        }
        assert len(seen) == math.factorial(n)

    def test_identity_is_beta_one(self):
        assert permutation_from_beta(5, 1) == [0, 1, 2, 3, 4]

    def test_last_beta_is_reversal(self):
        # The largest Lehmer code picks the largest remaining index each time.
        assert permutation_from_beta(4, math.factorial(4)) == [3, 2, 1, 0]

    @given(st.integers(0, 6), st.data())
    def test_always_a_permutation(self, n, data):
        beta = data.draw(st.integers(1, math.factorial(n)))
        perm = permutation_from_beta(n, beta)
        assert sorted(perm) == list(range(n))

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            permutation_from_beta(3, 0)
        with pytest.raises(ParameterError):
            permutation_from_beta(3, 7)
        with pytest.raises(ParameterError):
            permutation_from_beta(-1, 1)


class TestPermute:
    @given(st.lists(st.integers(), max_size=6), st.data())
    def test_is_rearrangement(self, items, data):
        beta = data.draw(st.integers(1, math.factorial(len(items))))
        assert sorted(permute(items, beta)) == sorted(items)

    def test_concrete(self):
        assert permute(["a", "b", "c"], 1) == ["a", "b", "c"]
        results = {tuple(permute([1, 2, 3], b)) for b in range(1, 7)}
        assert len(results) == 6


class TestRandomBeta:
    def test_range(self, rng):
        for n in (1, 3, 6):
            for _ in range(50):
                beta = random_beta(n, rng)
                assert 1 <= beta <= math.factorial(n)

    def test_covers_space(self):
        rng = random.Random(1)
        seen = {random_beta(3, rng) for _ in range(200)}
        assert seen == set(range(1, 7))

    def test_negative_rejected(self, rng):
        with pytest.raises(ParameterError):
            random_beta(-1, rng)
