"""Tests for repro.math.primes."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.primes import (
    is_prime,
    next_prime,
    prev_prime,
    primes_up_to,
    random_prime,
    small_primes,
)


def _naive_is_prime(n: int) -> bool:
    if n < 2:
        return False
    return all(n % d for d in range(2, int(n**0.5) + 1))


class TestIsPrime:
    def test_small_values(self):
        for n in range(-5, 500):
            assert is_prime(n) == _naive_is_prime(n), n

    def test_known_primes(self):
        for p in (2, 3, 65537, 2**31 - 1, 2**61 - 1):
            assert is_prime(p)

    def test_known_composites(self):
        # Carmichael numbers are the classic Fermat-test traps.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911, 2**32 - 1):
            assert not is_prime(n)

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime (beyond the deterministic range).
        assert is_prime(2**127 - 1)

    def test_large_composite(self):
        assert not is_prime((2**127 - 1) * (2**89 - 1))

    @given(st.integers(min_value=2, max_value=10_000))
    def test_matches_naive(self, n):
        assert is_prime(n) == _naive_is_prime(n)


class TestPrimesUpTo:
    def test_matches_naive(self):
        assert primes_up_to(100) == [n for n in range(101) if _naive_is_prime(n)]

    def test_edge_cases(self):
        assert primes_up_to(1) == []
        assert primes_up_to(2) == [2]
        assert primes_up_to(-5) == []

    def test_small_primes_cache(self):
        cached = small_primes()
        assert cached == primes_up_to(999)
        # The accessor must return a copy, not the module cache.
        cached.append(-1)
        assert small_primes()[-1] != -1


class TestNextPrevPrime:
    def test_next_prime(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(14) == 17
        assert next_prime(2**16) == 65537

    def test_prev_prime(self):
        assert prev_prime(3) == 2
        assert prev_prime(100) == 97
        assert prev_prime(65538) == 65537

    def test_prev_prime_raises_below_two(self):
        with pytest.raises(ValueError):
            prev_prime(2)

    @given(st.integers(min_value=0, max_value=5000))
    def test_next_prime_is_prime_and_minimal(self, n):
        p = next_prime(n)
        assert p > n and is_prime(p)
        assert all(not _naive_is_prime(k) for k in range(n + 1, p))


class TestRandomPrime:
    def test_exact_bit_length(self, rng):
        for bits in (2, 8, 16, 32, 64):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_rejects_tiny_request(self, rng):
        with pytest.raises(ValueError):
            random_prime(1, rng)

    def test_deterministic_under_seed(self):
        assert random_prime(24, random.Random(5)) == random_prime(
            24, random.Random(5)
        )
