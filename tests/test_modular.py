"""Tests for repro.math.modular."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math.modular import (
    crt,
    crt_pair,
    egcd,
    is_quadratic_residue,
    jacobi,
    modinv,
    sqrt_mod,
)
from repro.math.primes import primes_up_to

_ODD_PRIMES = [p for p in primes_up_to(200) if p > 2]


class TestEgcd:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert g == math.gcd(a, b) or g == -math.gcd(a, b)

    def test_zero_cases(self):
        assert egcd(0, 0)[0] == 0
        g, x, _ = egcd(7, 0)
        assert g == 7 and 7 * x == 7


class TestModinv:
    @given(st.integers(1, 10**6), st.integers(2, 10**6))
    def test_inverse_property(self, a, n):
        if math.gcd(a, n) != 1:
            with pytest.raises(ValueError):
                modinv(a, n)
        else:
            assert a * modinv(a, n) % n == 1

    def test_negative_input(self):
        assert (-3) * modinv(-3, 7) % 7 == 1


class TestJacobi:
    def test_matches_legendre_for_primes(self):
        for p in _ODD_PRIMES[:15]:
            residues = {pow(x, 2, p) for x in range(1, p)}
            for a in range(1, p):
                expected = 1 if a in residues else -1
                assert jacobi(a, p) == expected, (a, p)

    def test_zero_when_shared_factor(self):
        assert jacobi(6, 9) == 0
        assert jacobi(0, 5) == 0

    def test_multiplicative_in_numerator(self):
        n = 15
        for a in range(1, 30):
            for b in range(1, 30):
                assert jacobi(a * b, n) == jacobi(a, n) * jacobi(b, n)

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            jacobi(3, 8)


class TestSqrtMod:
    def test_all_residues_small_primes(self):
        for p in _ODD_PRIMES[:20]:
            for a in range(p):
                if is_quadratic_residue(a, p):
                    r = sqrt_mod(a, p)
                    assert r * r % p == a
                else:
                    with pytest.raises(ValueError):
                        sqrt_mod(a, p)

    def test_tonelli_shanks_path(self):
        # p ≡ 1 (mod 4) forces the general algorithm.
        p = 1000033
        assert p % 4 == 1
        for x in (2, 999, 123456):
            a = x * x % p
            r = sqrt_mod(a, p)
            assert r * r % p == a

    def test_fast_path_3_mod_4(self):
        p = 1000003
        assert p % 4 == 3
        a = 55**2 % p
        r = sqrt_mod(a, p)
        assert r in (55, p - 55)

    def test_zero(self):
        assert sqrt_mod(0, 13) == 0


class TestCrt:
    @given(st.integers(0, 10**4), st.sampled_from([(3, 5, 7), (11, 13), (2, 9, 25)]))
    def test_reconstruction(self, x, moduli):
        moduli = list(moduli)
        residues = [x % n for n in moduli]
        total = math.prod(moduli)
        assert crt(residues, moduli) == x % total

    def test_inconsistent_raises(self):
        with pytest.raises(ValueError):
            crt_pair(1, 4, 2, 6)  # x≡1 (4) and x≡2 (6) conflict mod 2

    def test_consistent_non_coprime(self):
        r, n = crt_pair(1, 4, 3, 6)
        assert n == 12 and r % 4 == 1 and r % 6 == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            crt([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            crt([1], [3, 5])
