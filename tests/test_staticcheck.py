"""Tests for ``reprolint`` (:mod:`repro.analysis.staticcheck`).

Each rule gets at least one positive fixture (the rule fires) and one
negative fixture (the compliant rewrite passes), exercised through the
public :func:`lint_paths` API exactly as the CLI uses it.  Fixtures are
written under ``tmp_path`` into directories mirroring the repo layout
(``crypto/``, ``core/``, …) because the rules scope themselves by path.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.staticcheck import (
    BASELINE_FILENAME,
    FLOW_RULES,
    REGISTRY,
    lint_paths,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.staticcheck.cli import main as lint_main
from repro.cli import main as repro_main
from repro.errors import StaticAnalysisError

REPO_ROOT = Path(__file__).resolve().parent.parent

ALL_RULES = (
    "CRS001",
    "CRS002",
    "CRS003",
    "CRS004",
    "CRS005",
    "CRS006",
    "CRS007",
)


def lint_snippet(tmp_path: Path, relpath: str, source: str) -> list:
    """Write *source* at *relpath* under tmp_path and lint it."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return lint_paths([target], root=tmp_path)


def rule_ids(findings) -> set[str]:
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_rules_registered(self):
        lint_paths([], root=REPO_ROOT)  # force rule-pack import
        for rule_id in ALL_RULES:
            assert rule_id in REGISTRY

    def test_rules_carry_documentation(self):
        lint_paths([], root=REPO_ROOT)
        for rule_id in ALL_RULES:
            rule = REGISTRY[rule_id]
            assert rule.title and rule.rationale

    def test_unknown_rule_selection_rejected(self):
        with pytest.raises(StaticAnalysisError):
            lint_paths([], root=REPO_ROOT, select=["CRS999"])

    def test_missing_path_rejected(self):
        with pytest.raises(StaticAnalysisError):
            lint_paths([REPO_ROOT / "no-such-dir"], root=REPO_ROOT)


# ----------------------------------------------------------------------
# CRS001 — insecure randomness
# ----------------------------------------------------------------------
class TestCRS001:
    def test_flags_random_random_in_crypto_keygen(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/keygen.py",
            """
            import random

            def gen_key(rng=None):
                rng = rng or random.Random()
                return rng.getrandbits(128)
            """,
        )
        assert "CRS001" in rule_ids(findings)

    def test_flags_bare_random_module_fallback(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "math/primes.py",
            """
            import random

            def random_prime(bits, rng=None):
                rng = rng or random
                return rng.getrandbits(bits) | 1
            """,
        )
        assert "CRS001" in rule_ids(findings)

    def test_system_random_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/keygen.py",
            """
            import random

            def gen_key(rng=None):
                rng = rng or random.SystemRandom()
                return rng.getrandbits(128)
            """,
        )
        assert "CRS001" not in rule_ids(findings)

    def test_annotations_are_not_uses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "core/scheme.py",
            """
            import random

            def gen_token(key, rng: random.Random) -> random.Random:
                return rng
            """,
        )
        assert "CRS001" not in rule_ids(findings)

    def test_outside_sensitive_paths_not_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "datasets/make.py",
            """
            import random

            def sample():
                return random.Random(7).random()
            """,
        )
        assert "CRS001" not in rule_ids(findings)

    def test_reintroducing_insecure_paillier_keygen_is_caught(self, tmp_path):
        """The acceptance scenario: `random`-based key generation in a copy
        of crypto/paillier.py must fail the lint."""
        original = (REPO_ROOT / "src/repro/crypto/paillier.py").read_text()
        regressed = original.replace(
            "rng = rng or random.SystemRandom()", "rng = rng or random.Random()"
        )
        assert regressed != original
        findings = lint_snippet(tmp_path, "crypto/paillier.py", regressed)
        assert "CRS001" in rule_ids(findings)


# ----------------------------------------------------------------------
# CRS002 — variable-time comparison
# ----------------------------------------------------------------------
class TestCRS002:
    def test_flags_secret_equality(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/verify.py",
            """
            def check(token, expected_token):
                return token == expected_token
            """,
        )
        assert "CRS002" in rule_ids(findings)

    def test_compare_digest_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/verify.py",
            """
            import hmac

            def check(tag, expected):
                return hmac.compare_digest(tag, expected)
            """,
        )
        assert "CRS002" not in rule_ids(findings)

    def test_constant_comparisons_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/parse.py",
            """
            def check(tag):
                return tag == 2
            """,
        )
        assert "CRS002" not in rule_ids(findings)

    def test_all_caps_constants_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/parse.py",
            """
            NONCE_BYTES = 16

            def check(nonce_len, NONCE_BYTES=NONCE_BYTES):
                return nonce_len != NONCE_BYTES
            """,
        )
        assert "CRS002" not in rule_ids(findings)


# ----------------------------------------------------------------------
# CRS003 — unvalidated group elements
# ----------------------------------------------------------------------
class TestCRS003:
    def test_flags_pair_without_validation(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/groups/backend.py",
            """
            class Group:
                def pair(self, a, b):
                    return self._tate(a.point, b.point)
            """,
        )
        assert "CRS003" in rule_ids(findings)

    def test_validated_pair_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/groups/backend.py",
            """
            class Group:
                def pair(self, a, b):
                    if not isinstance(a, Element) or not isinstance(b, Element):
                        raise ValueError("pairing requires group elements")
                    return self._tate(a.point, b.point)
            """,
        )
        assert "CRS003" not in rule_ids(findings)

    def test_flags_deserialize_without_rejection(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/groups/backend.py",
            """
            class Group:
                def deserialize_element(self, data):
                    return Element(self, int.from_bytes(data, "big"))
            """,
        )
        assert "CRS003" in rule_ids(findings)

    def test_abstract_declarations_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/groups/base.py",
            """
            import abc

            class Group(abc.ABC):
                @abc.abstractmethod
                def pair(self, a, b):
                    \"\"\"Evaluate the pairing.\"\"\"

                @abc.abstractmethod
                def deserialize_element(self, data):
                    ...
            """,
        )
        assert "CRS003" not in rule_ids(findings)


# ----------------------------------------------------------------------
# CRS004 — bare asserts
# ----------------------------------------------------------------------
class TestCRS004:
    def test_flags_assert_in_crypto(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/groups/element.py",
            """
            def mul(a, b):
                assert a.group == b.group
                return a.value * b.value
            """,
        )
        assert "CRS004" in rule_ids(findings)

    def test_typed_exception_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/groups/element.py",
            """
            def mul(a, b):
                if a.group != b.group:
                    raise ValueError("elements from different groups")
                return a.value * b.value
            """,
        )
        assert "CRS004" not in rule_ids(findings)

    def test_asserts_outside_scope_allowed(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "analysis/report.py",
            """
            def fmt(rows):
                assert rows
                return len(rows)
            """,
        )
        assert "CRS004" not in rule_ids(findings)


# ----------------------------------------------------------------------
# CRS005 — unsafe deserialization
# ----------------------------------------------------------------------
class TestCRS005:
    def test_flags_pickle_import(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "cloud/codec.py",
            """
            import pickle

            def decode(blob):
                return pickle.loads(blob)
            """,
        )
        assert "CRS005" in rule_ids(findings)

    def test_flags_eval_call(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "crypto/serialize.py",
            """
            def decode(blob):
                return eval(blob.decode())
            """,
        )
        assert "CRS005" in rule_ids(findings)

    def test_json_codec_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "cloud/codec.py",
            """
            import json

            def decode(blob):
                return json.loads(blob.decode())
            """,
        )
        assert "CRS005" not in rule_ids(findings)


# ----------------------------------------------------------------------
# CRS006 — permutation reuse
# ----------------------------------------------------------------------
class TestCRS006:
    def test_flags_hardcoded_beta(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "core/tokens.py",
            """
            from repro.core.permute import permute

            def gen_token(sub_tokens):
                return permute(sub_tokens, 1)
            """,
        )
        assert "CRS006" in rule_ids(findings)

    def test_flags_fixed_seed_beta_rng(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "core/tokens.py",
            """
            import random
            from repro.core.permute import permute, random_beta

            def gen_token(sub_tokens):
                beta = random_beta(len(sub_tokens), random.Random(42))
                return permute(sub_tokens, beta)
            """,
        )
        assert "CRS006" in rule_ids(findings)

    def test_fresh_rng_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "core/tokens.py",
            """
            from repro.core.permute import permute, random_beta

            def gen_token(sub_tokens, rng):
                beta = random_beta(len(sub_tokens), rng)
                return permute(sub_tokens, beta)
            """,
        )
        assert "CRS006" not in rule_ids(findings)


# ----------------------------------------------------------------------
# CRS007 — non-atomic persistence writes
# ----------------------------------------------------------------------
class TestCRS007:
    def test_flags_plain_open_write(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "storage/state.py",
            """
            def save_state(path, blob):
                with open(path, "wb") as sink:
                    sink.write(blob)
            """,
        )
        assert "CRS007" in rule_ids(findings)

    def test_flags_write_text(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "service/portfile.py",
            """
            def record_port(path, port):
                path.write_text(str(port))
            """,
        )
        assert "CRS007" in rule_ids(findings)

    def test_flags_os_open_os_write(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "storage/raw.py",
            """
            import os

            def save_raw(path, blob):
                fd = os.open(path, os.O_WRONLY | os.O_CREAT)
                os.write(fd, blob)
                os.close(fd)
            """,
        )
        assert "CRS007" in rule_ids(findings)

    def test_atomic_replace_idiom_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "storage/manifest.py",
            """
            import os

            def save_state(path, blob):
                tmp = str(path) + ".tmp"
                with open(tmp, "wb") as sink:
                    sink.write(blob)
                    os.fsync(sink.fileno())
                os.replace(tmp, path)
            """,
        )
        assert "CRS007" not in rule_ids(findings)

    def test_append_fsync_idiom_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "storage/log.py",
            """
            import os

            def append_frames(handle, frames):
                handle.write(b"".join(frames))
                handle.flush()
                os.fsync(handle.fileno())
            """,
        )
        assert "CRS007" not in rule_ids(findings)

    def test_handle_returning_open_is_clean(self, tmp_path):
        # The function only opens; the caller owns the write+sync, so
        # there is no un-synced write *here* to flag.
        findings = lint_snippet(
            tmp_path,
            "storage/log.py",
            """
            def open_active(path):
                return open(path, "ab")
            """,
        )
        assert "CRS007" not in rule_ids(findings)

    def test_read_only_open_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "storage/reader.py",
            """
            def load(path):
                with open(path, "rb") as source:
                    return source.read()
            """,
        )
        assert "CRS007" not in rule_ids(findings)

    def test_out_of_scope_path_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "analysis/report.py",
            """
            def save_report(path, text):
                with open(path, "w") as sink:
                    sink.write(text)
            """,
        )
        assert "CRS007" not in rule_ids(findings)


# ----------------------------------------------------------------------
# Suppressions: inline ignores and baselines
# ----------------------------------------------------------------------
class TestSuppression:
    INSECURE = """
    import random

    def gen_key(rng=None):
        rng = rng or random.Random()
        return rng.getrandbits(128)
    """

    def test_inline_ignore_on_line(self, tmp_path):
        source = self.INSECURE.replace(
            "rng = rng or random.Random()",
            "rng = rng or random.Random()  # reprolint: ignore[CRS001]",
        )
        findings = lint_snippet(tmp_path, "crypto/keygen.py", source)
        assert "CRS001" not in rule_ids(findings)

    def test_inline_ignore_on_preceding_comment_line(self, tmp_path):
        source = self.INSECURE.replace(
            "rng = rng or random.Random()",
            "# reprolint: ignore[CRS001]\n    rng = rng or random.Random()",
        )
        findings = lint_snippet(tmp_path, "crypto/keygen.py", source)
        assert "CRS001" not in rule_ids(findings)

    def test_ignore_for_other_rule_does_not_suppress(self, tmp_path):
        source = self.INSECURE.replace(
            "rng = rng or random.Random()",
            "rng = rng or random.Random()  # reprolint: ignore[CRS005]",
        )
        findings = lint_snippet(tmp_path, "crypto/keygen.py", source)
        assert "CRS001" in rule_ids(findings)

    def test_baseline_roundtrip_suppresses_old_but_not_new(self, tmp_path):
        findings = lint_snippet(tmp_path, "crypto/keygen.py", self.INSECURE)
        assert findings
        baseline_path = tmp_path / BASELINE_FILENAME
        write_baseline(baseline_path, findings)
        known = load_baseline(baseline_path)
        new, suppressed = partition_findings(findings, known)
        assert not new and len(suppressed) == len(findings)

        # A *new* finding in another file is not covered by the baseline.
        more = lint_snippet(
            tmp_path,
            "crypto/other.py",
            """
            def check(token, expected_token):
                return token == expected_token
            """,
        )
        new, _ = partition_findings(more, known)
        assert new

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / BASELINE_FILENAME
        bad.write_text("{\"version\": 99}")
        with pytest.raises(StaticAnalysisError):
            load_baseline(bad)


# ----------------------------------------------------------------------
# Baseline fingerprints under source drift
# ----------------------------------------------------------------------
class TestBaselineDrift:
    LEAKY = """
    def check(token, expected_token):
        return token == expected_token
    """

    def baseline_for(self, tmp_path) -> frozenset:
        findings = lint_snippet(tmp_path, "crypto/other.py", self.LEAKY)
        assert findings
        baseline_path = tmp_path / BASELINE_FILENAME
        write_baseline(baseline_path, findings)
        return load_baseline(baseline_path)

    def test_insertion_above_does_not_resurrect(self, tmp_path):
        known = self.baseline_for(tmp_path)
        shifted = (
            "import hmac\n\n\ndef unrelated():\n    return 0\n\n"
            + textwrap.dedent(self.LEAKY)
        )
        target = tmp_path / "crypto" / "other.py"
        target.write_text(shifted)
        findings = lint_paths([target], root=tmp_path)
        assert findings  # the finding itself is still there...
        new, suppressed = partition_findings(findings, known)
        assert new == []  # ...but the baseline still covers it
        assert suppressed

    def test_reindentation_does_not_resurrect(self, tmp_path):
        known = self.baseline_for(tmp_path)
        reindented = (
            "def check(token, expected_token):\n"
            "    if True:\n"
            "        return token == expected_token\n"
        )
        target = tmp_path / "crypto" / "other.py"
        target.write_text(reindented)
        findings = lint_paths([target], root=tmp_path)
        assert findings
        new, _ = partition_findings(findings, known)
        assert new == []

    def test_edited_snippet_is_a_new_finding(self, tmp_path):
        known = self.baseline_for(tmp_path)
        edited = (
            "def check(token, other_token):\n"
            "    return token == other_token\n"
        )
        target = tmp_path / "crypto" / "other.py"
        target.write_text(edited)
        findings = lint_paths([target], root=tmp_path)
        new, _ = partition_findings(findings, known)
        assert new  # a different comparison is not grandfathered

    def test_v1_baseline_file_migrates(self, tmp_path):
        findings = lint_snippet(tmp_path, "crypto/other.py", self.LEAKY)
        assert findings
        v1_entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "snippet": f.snippet,
                # v1 hashes differed; a migrated load must ignore this
                # stored value and recompute from rule/path/snippet.
                "fingerprint": "0" * 16,
            }
            for f in findings
        ]
        v1_file = tmp_path / BASELINE_FILENAME
        v1_file.write_text(
            json.dumps({"version": 1, "findings": v1_entries})
        )
        known = load_baseline(v1_file)
        new, suppressed = partition_findings(findings, known)
        assert new == []
        assert len(suppressed) == len(findings)


# ----------------------------------------------------------------------
# CLI (standalone and via `python -m repro lint`)
# ----------------------------------------------------------------------
class TestCLI:
    def write_insecure(self, tmp_path) -> Path:
        target = tmp_path / "crypto" / "keygen.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import random\n\n"
            "def gen_key(rng=None):\n"
            "    rng = rng or random.Random()\n"
            "    return rng.getrandbits(128)\n"
        )
        return target

    def test_exit_one_and_human_output_on_findings(self, tmp_path, monkeypatch):
        self.write_insecure(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = lint_main(["crypto"], out=out)
        assert code == 1
        assert "CRS001" in out.getvalue()

    def test_exit_zero_on_clean_tree(self, tmp_path, monkeypatch):
        clean = tmp_path / "crypto" / "ok.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("import secrets\n\nKEY_BYTES = 32\n")
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        assert lint_main(["crypto"], out=out) == 0

    def test_json_output_parses_and_carries_fingerprints(
        self, tmp_path, monkeypatch
    ):
        self.write_insecure(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = lint_main(["crypto", "--format=json"], out=out)
        payload = json.loads(out.getvalue())
        assert code == 1
        assert payload["findings"]
        for finding in payload["findings"]:
            assert finding["rule"] == "CRS001"
            assert finding["fingerprint"]
        # The rule list advertises both tiers (per-file and --flow).
        assert payload["rules"] == sorted({*REGISTRY, *FLOW_RULES})

    def test_write_baseline_then_clean_then_new_finding_fails(
        self, tmp_path, monkeypatch
    ):
        self.write_insecure(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        assert lint_main(["crypto", "--write-baseline"], out=out) == 0
        assert (tmp_path / BASELINE_FILENAME).exists()
        # Baselined finding no longer blocks…
        assert lint_main(["crypto"], out=io.StringIO()) == 0
        # …but a fresh violation does.
        (tmp_path / "crypto" / "fresh.py").write_text(
            "def check(token, other_token):\n    return token == other_token\n"
        )
        assert lint_main(["crypto"], out=io.StringIO()) == 1

    def test_select_limits_rules(self, tmp_path, monkeypatch):
        self.write_insecure(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        assert lint_main(["crypto", "--select", "CRS005"], out=out) == 0

    def test_unknown_select_is_usage_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "x.py").write_text("pass\n")
        assert lint_main(["x.py", "--select", "CRS999"], out=io.StringIO()) == 2

    def test_syntax_error_reported_as_crs000(self, tmp_path, monkeypatch):
        bad = tmp_path / "crypto" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def oops(:\n")
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        assert lint_main(["crypto"], out=out) == 1
        assert "CRS000" in out.getvalue()

    def test_repro_lint_subcommand(self, tmp_path, monkeypatch):
        self.write_insecure(tmp_path)
        monkeypatch.chdir(tmp_path)
        out = io.StringIO()
        code = repro_main(["lint", "crypto"], out=out)
        assert code == 1
        assert "CRS001" in out.getvalue()

    def test_repro_lint_list_rules(self):
        out = io.StringIO()
        assert repro_main(["lint", "--list-rules"], out=out) == 0
        for rule_id in ALL_RULES:
            assert rule_id in out.getvalue()


# ----------------------------------------------------------------------
# Self-lint: the shipped tree is clean against the shipped baseline
# ----------------------------------------------------------------------
class TestSelfLint:
    def test_src_repro_is_clean_against_shipped_baseline(self):
        findings = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        known = load_baseline(REPO_ROOT / BASELINE_FILENAME)
        new, _suppressed = partition_findings(findings, known)
        assert new == [], "\n".join(f.render() for f in new)

    def test_shipped_baseline_is_small_and_justified(self):
        """The baseline is for accepted heuristic false positives, not a
        dumping ground — keep it reviewably small."""
        known = load_baseline(REPO_ROOT / BASELINE_FILENAME)
        assert 0 < len(known) <= 5

    def test_docs_table_covers_every_rule(self):
        security_md = (REPO_ROOT / "docs" / "SECURITY.md").read_text()
        for rule_id in ALL_RULES:
            assert rule_id in security_md, f"{rule_id} missing from SECURITY.md"
