"""Cross-backend integration: the schemes behave identically on the fast
simulation and the real curve pairing."""

from __future__ import annotations

import random

import pytest

from repro.core.cpe import CirclePredicateEncryption
from repro.core.crse1 import CRSE1Scheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import (
    Circle,
    DataSpace,
    point_in_circle,
    point_on_boundary,
)
from repro.core.provision import provision_group
from repro.crypto.groups.fastgroup import FastCompositeGroup


@pytest.fixture(scope="module")
def space():
    return DataSpace(2, 8)


@pytest.fixture(scope="module", params=["fast", "pairing"])
def backend_group(request, space):
    rng = random.Random(51)
    return provision_group(
        space.boundary_value_bound(),
        request.param,
        rng,
        noise_bits=16,
        min_payload_bits=33,
    )


PROBE_POINTS = [(3, 2), (2, 2), (1, 3), (4, 4), (0, 0), (7, 7), (3, 4), (5, 2)]
QUERY = Circle.from_radius((3, 2), 2)


class TestCRSE2AcrossBackends:
    def test_predicate_matches_plaintext(self, space, backend_group):
        rng = random.Random(52)
        scheme = CRSE2Scheme(space, backend_group)
        key = scheme.gen_key(rng)
        token = scheme.gen_token(key, QUERY, rng)
        for point in PROBE_POINTS:
            ct = scheme.encrypt(key, point, rng)
            assert scheme.matches(token, ct) == point_in_circle(point, QUERY)


class TestCPEAcrossBackends:
    def test_boundary_predicate(self, space, backend_group):
        rng = random.Random(53)
        scheme = CirclePredicateEncryption(space, backend_group)
        key = scheme.gen_key(rng)
        q = Circle.from_radius((3, 2), 1)
        token = scheme.gen_token(key, q, rng)
        for point in PROBE_POINTS[:5]:
            ct = scheme.encrypt(key, point, rng)
            assert scheme.query(token, ct) == point_on_boundary(point, q)


class TestCRSE1OnPairing:
    def test_r1_on_real_curve(self, space):
        rng = random.Random(54)
        bound = CRSE1Scheme.required_inner_product_bound(space, 1)
        group = provision_group(bound, "pairing", rng, noise_bits=16)
        scheme = CRSE1Scheme(space, group, r_squared=1)
        key = scheme.gen_key(rng)
        token = scheme.gen_token(key, Circle.from_radius((3, 2), 1), rng)
        assert scheme.matches(token, scheme.encrypt(key, (2, 2), rng))
        assert not scheme.matches(token, scheme.encrypt(key, (1, 3), rng))


class TestSerializedInterop:
    def test_fast_group_objects_roundtrip_through_codec(self, space):
        from repro.cloud.codec import (
            decode_ciphertext,
            decode_token,
            encode_ciphertext,
            encode_token,
        )

        rng = random.Random(55)
        group = provision_group(space.boundary_value_bound(), "fast", rng)
        scheme = CRSE2Scheme(space, group)
        key = scheme.gen_key(rng)
        ct = scheme.encrypt(key, (3, 2), rng)
        token = scheme.gen_token(key, QUERY, rng)
        ct2 = decode_ciphertext(scheme, encode_ciphertext(scheme, ct))
        tok2 = decode_token(scheme, encode_token(scheme, token))
        assert scheme.matches(tok2, ct2) == scheme.matches(token, ct) is True
