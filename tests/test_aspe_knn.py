"""Tests for the ASPE secure-kNN baseline (Related Work, ref. [22])."""

from __future__ import annotations

import random

import pytest

from repro.baselines.aspe_knn import (
    ASPEScheme,
    recover_key_known_plaintext,
)
from repro.baselines.kdtree import KDTree
from repro.core.geometry import distance_squared
from repro.errors import CryptoError, ParameterError


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(0xA5BE)
    scheme = ASPEScheme(dimension=2)
    key = scheme.gen_key(rng)
    return scheme, key, rng


def _brute_knn(points, query, k):
    return sorted(
        range(len(points)), key=lambda i: distance_squared(points[i], query)
    )[:k]


class TestCorrectness:
    def test_knn_matches_plaintext(self, setup):
        scheme, key, rng = setup
        points = [(rng.randrange(100), rng.randrange(100)) for _ in range(60)]
        records = [
            (i, scheme.encrypt_point(key, p)) for i, p in enumerate(points)
        ]
        for k in (1, 3, 7):
            query = (rng.randrange(100), rng.randrange(100))
            token = scheme.encrypt_query(key, query, rng)
            got = set(scheme.knn(token, records, k))
            got_dists = sorted(
                distance_squared(points[i], query) for i in got
            )
            want_dists = sorted(
                distance_squared(points[i], query)
                for i in _brute_knn(points, query, k)
            )
            assert got_dists == want_dists

    def test_score_order_preserved(self, setup):
        scheme, key, rng = setup
        near, far, query = (10, 10), (50, 50), (12, 11)
        token = scheme.encrypt_query(key, query, rng)
        score_near = scheme.score(scheme.encrypt_point(key, near), token)
        score_far = scheme.score(scheme.encrypt_point(key, far), token)
        assert score_near > score_far

    def test_fresh_query_randomness_changes_token(self, setup):
        scheme, key, rng = setup
        t1 = scheme.encrypt_query(key, (5, 5), rng)
        t2 = scheme.encrypt_query(key, (5, 5), rng)
        assert t1 != t2  # the random scale r differs

    def test_matches_kdtree_knn(self, setup):
        scheme, key, rng = setup
        points = [(rng.randrange(64), rng.randrange(64)) for _ in range(40)]
        records = [
            (i, scheme.encrypt_point(key, p)) for i, p in enumerate(points)
        ]
        tree = KDTree(points)
        query = (30, 30)
        token = scheme.encrypt_query(key, query, rng)
        aspe_dists = sorted(
            distance_squared(points[i], query)
            for i in scheme.knn(token, records, 5)
        )
        tree_dists = sorted(
            distance_squared(p, query) for p in tree.nearest(query, 5)
        )
        assert aspe_dists == tree_dists


class TestSemantics:
    def test_knn_vs_circular_range_are_different_queries(self, setup):
        # The paper's Related Work point: kNN fixes the count, circular
        # search fixes the radius.  k = 3 returns 3 results even when only
        # 2 points are within the radius of interest.
        scheme, key, rng = setup
        points = [(0, 0), (1, 0), (40, 40), (41, 40)]
        records = [
            (i, scheme.encrypt_point(key, p)) for i, p in enumerate(points)
        ]
        token = scheme.encrypt_query(key, (0, 1), rng)
        knn3 = scheme.knn(token, records, 3)
        assert len(knn3) == 3
        within_radius_2 = [
            i for i, p in enumerate(points)
            if distance_squared(p, (0, 1)) <= 4
        ]
        assert len(within_radius_2) == 2  # circular search answers 2


class TestAttack:
    def test_known_plaintext_recovers_key(self, setup):
        """The CPA weakness the paper cites for [22]."""
        scheme, key, rng = setup
        known_points = [(1, 0), (0, 1), (3, 5)]  # lifted vectors independent
        pairs = [
            (p, scheme.encrypt_point(key, p)) for p in known_points
        ]
        recovered = recover_key_known_plaintext(scheme, pairs)
        assert tuple(tuple(row) for row in recovered) == key.matrix_t
        # The recovered key predicts the ciphertext of an unseen point:
        # lifted (7, 9) → (7, 9, -(7² + 9²)/2) = (7, 9, -65).
        lifted = [7, 9, -65]
        predicted = tuple(
            sum(recovered[i][j] * v for j, v in enumerate(lifted))
            for i in range(3)
        )
        assert predicted == scheme.encrypt_point(key, (7, 9))

    def test_attack_needs_enough_pairs(self, setup):
        scheme, key, _ = setup
        with pytest.raises(ParameterError):
            recover_key_known_plaintext(
                scheme, [((1, 0), scheme.encrypt_point(key, (1, 0)))]
            )

    def test_dependent_pairs_rejected(self, setup):
        scheme, key, _ = setup
        pairs = [
            (p, scheme.encrypt_point(key, p))
            for p in ((1, 1), (2, 2), (3, 3))  # lifted vectors dependent? no:
        ]
        # (1,1,-1), (2,2,-4), (3,3,-9) are actually independent; use truly
        # dependent points instead: scalar multiples with matching norms
        # cannot exist, so craft duplicates.
        pairs = [pairs[0], pairs[0], pairs[1]]
        with pytest.raises(ParameterError):
            recover_key_known_plaintext(scheme, pairs)


class TestValidation:
    def test_dimension_checks(self, setup):
        scheme, key, rng = setup
        with pytest.raises(CryptoError):
            scheme.encrypt_point(key, (1, 2, 3))
        with pytest.raises(CryptoError):
            scheme.encrypt_query(key, (1,), rng)

    def test_cross_dimension_key(self, setup):
        _, key, rng = setup
        other = ASPEScheme(dimension=3)
        with pytest.raises(CryptoError):
            other.encrypt_point(key, (1, 2, 3))

    def test_bad_k(self, setup):
        scheme, key, rng = setup
        token = scheme.encrypt_query(key, (0, 0), rng)
        with pytest.raises(ParameterError):
            scheme.knn(token, [], 0)

    def test_bad_dimension_construction(self):
        with pytest.raises(ParameterError):
            ASPEScheme(dimension=0)
