"""Tests for :mod:`repro.storage` — frames, recovery, compaction.

These tests feed the store arbitrary bytes as payloads: the store treats
ciphertext as opaque codec output, so nothing here needs real crypto and
the crash-recovery matrix (torn tails, CRC damage, missing segments,
uncommitted batches) stays fast.  The service-level replay equivalence
tests with real ciphertexts live in ``test_service_store.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import StorageCorruptionError, StorageError
from repro.storage import (
    MANIFEST_NAME,
    RecordStore,
    SEGMENT_MAGIC,
    scan_segment,
    verify_store,
)
from repro.storage.format import (
    CommitFrame,
    RecordFrame,
    TombstoneFrame,
    encode_commit_frame,
    encode_record_frame,
    encode_tombstone_frame,
)

HEADER = {"group": "fast", "scheme": "crse2", "space": {"w": 2, "t": 32}}


def payload(i: int, size: int = 24) -> bytes:
    return bytes((i * 7 + j) % 256 for j in range(size))


@pytest.fixture()
def store(tmp_path):
    with RecordStore.create(tmp_path / "store", HEADER) as s:
        yield s


def seed(s: RecordStore, n: int = 6) -> None:
    s.append((i, payload(i), b"content-%d" % i) for i in range(n))


# ----------------------------------------------------------------------
# Frame format
# ----------------------------------------------------------------------
class TestFrameFormat:
    def test_record_frame_roundtrip(self):
        frame_bytes = encode_record_frame(42, b"pay", b"load")
        scan = scan_segment(SEGMENT_MAGIC + frame_bytes)
        assert scan.damage is None
        [(offset, frame)] = scan.frames
        assert offset == len(SEGMENT_MAGIC)
        assert frame == RecordFrame(identifier=42, payload=b"pay", content=b"load")

    def test_tombstone_and_commit_roundtrip(self):
        data = (
            SEGMENT_MAGIC
            + encode_tombstone_frame((3, 1, 4))
            + encode_commit_frame(0, compaction=True)
        )
        scan = scan_segment(data)
        assert scan.damage is None
        assert scan.frames[0][1] == TombstoneFrame(identifiers=(3, 1, 4))
        assert scan.frames[1][1] == CommitFrame(record_count=0, compaction=True)

    def test_torn_tail_classified_and_prefix_kept(self):
        good = encode_record_frame(1, b"x" * 10, b"")
        data = SEGMENT_MAGIC + good + good[: len(good) - 4]
        scan = scan_segment(data)
        assert scan.damage == "torn"
        assert scan.consumed == len(SEGMENT_MAGIC) + len(good)
        assert len(scan.frames) == 1

    def test_crc_flip_is_corrupt_not_torn(self):
        good = encode_record_frame(1, b"x" * 10, b"")
        mangled = bytearray(SEGMENT_MAGIC + good)
        mangled[-3] ^= 0xFF
        scan = scan_segment(bytes(mangled))
        assert scan.damage == "corrupt"
        assert "CRC" in scan.detail

    def test_bad_magic_is_corrupt(self):
        assert scan_segment(b"NOTMAGIC" + b"junk").damage == "corrupt"

    def test_unknown_frame_type_is_corrupt(self):
        from repro.storage.format import encode_frame

        scan = scan_segment(SEGMENT_MAGIC + encode_frame(b"\x7fwhat"))
        assert scan.damage == "corrupt"
        assert "unknown frame type" in scan.detail

    def test_out_of_range_identifier_rejected(self):
        with pytest.raises(StorageError):
            encode_record_frame(-1, b"", b"")
        with pytest.raises(StorageError):
            encode_record_frame(1 << 64, b"", b"")


# ----------------------------------------------------------------------
# Store basics
# ----------------------------------------------------------------------
class TestRecordStore:
    def test_append_scan_roundtrip(self, store):
        seed(store)
        rows = sorted(store.scan())
        assert [r[0] for r in rows] == list(range(6))
        assert rows[3] == (3, payload(3), b"content-3")

    def test_duplicate_identifier_rejected(self, store):
        seed(store)
        with pytest.raises(StorageError):
            store.append([(2, b"again", b"")])
        with pytest.raises(StorageError):
            store.append([(7, b"a", b""), (7, b"b", b"")])

    def test_delete_returns_live_count_only(self, store):
        seed(store)
        assert store.delete([1, 3, 99]) == 2
        assert store.record_count == 4
        assert store.delete([]) == 0
        assert store.deletes == 1  # the empty request wrote nothing

    def test_reopen_replays_state_and_counters(self, store, tmp_path):
        seed(store)
        store.append([(10, payload(10), b"")])
        store.delete([0, 10])
        store.close()
        with RecordStore.open(tmp_path / "store", scheme_header=HEADER) as s:
            assert sorted(i for i, _, _ in s.scan()) == [1, 2, 3, 4, 5]
            assert s.uploads == 2 and s.deletes == 1
            assert s.snapshot().dead_records == 2

    def test_scheme_header_mismatch_refused(self, store, tmp_path):
        store.close()
        with pytest.raises(StorageError, match="different scheme"):
            RecordStore.open(
                tmp_path / "store",
                scheme_header={**HEADER, "scheme": "crse1"},
            )

    def test_create_refuses_nonempty_directory(self, tmp_path):
        target = tmp_path / "occupied"
        target.mkdir()
        (target / "junk.txt").write_text("hi")
        with pytest.raises(StorageError):
            RecordStore.create(target, HEADER)

    def test_open_or_create_roundtrip(self, tmp_path):
        with RecordStore.open_or_create(tmp_path / "oc", HEADER) as s:
            s.append([(1, b"a", b"")])
        with RecordStore.open_or_create(tmp_path / "oc", HEADER) as s:
            assert s.record_count == 1

    def test_rotation_spreads_segments(self, tmp_path):
        with RecordStore.create(
            tmp_path / "rot", HEADER, max_segment_bytes=256
        ) as s:
            for i in range(12):
                s.append([(i, payload(i, 64), b"")])
            snap = s.snapshot()
            assert snap.segments > 2
            assert snap.sealed_segments == snap.segments - 1
        with RecordStore.open(tmp_path / "rot") as s:
            assert s.record_count == 12


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_truncated_tail_frame_recovered(self, store, tmp_path):
        seed(store)
        store.close()
        seg = tmp_path / "store" / "seg-00000001.log"
        intact = seg.stat().st_size
        with open(seg, "ab") as handle:
            handle.write(b"\x00\x00\x00\x40\xab\xcd")  # torn mid-header
        report = verify_store(tmp_path / "store")
        assert not report["clean"] and not report["errors"]
        assert report["segments"][0]["status"] == "torn tail"
        with RecordStore.open(tmp_path / "store") as s:
            assert s.record_count == 6
        assert seg.stat().st_size == intact
        assert verify_store(tmp_path / "store")["clean"]

    def test_uncommitted_batch_dropped_on_reopen(self, store, tmp_path):
        seed(store)
        store.close()
        seg = tmp_path / "store" / "seg-00000001.log"
        intact = seg.stat().st_size
        with open(seg, "ab") as handle:
            # Two record frames with no commit: the crash window between
            # the disk write and the ack.
            handle.write(encode_record_frame(50, b"zzz", b""))
            handle.write(encode_record_frame(51, b"yyy", b""))
        with RecordStore.open(tmp_path / "store") as s:
            assert s.record_count == 6
            assert 50 not in {i for i, _, _ in s.scan()}
        assert seg.stat().st_size == intact

    def test_corrupted_crc_mid_log_raises(self, store, tmp_path):
        seed(store)
        store.close()
        seg = tmp_path / "store" / "seg-00000001.log"
        data = bytearray(seg.read_bytes())
        data[len(SEGMENT_MAGIC) + 12] ^= 0xFF  # inside the first frame body
        seg.write_bytes(bytes(data))
        report = verify_store(tmp_path / "store")
        assert report["errors"] and report["segments"][0]["status"] == "corrupt"
        with pytest.raises(StorageCorruptionError, match="CRC"):
            RecordStore.open(tmp_path / "store")

    def test_manifest_names_missing_segment(self, store, tmp_path):
        seed(store)
        store.close()
        (tmp_path / "store" / "seg-00000001.log").unlink()
        report = verify_store(tmp_path / "store")
        assert any("missing" in err for err in report["errors"])
        with pytest.raises(StorageCorruptionError, match="missing"):
            RecordStore.open(tmp_path / "store")

    def test_damage_in_sealed_segment_is_corruption(self, tmp_path):
        with RecordStore.create(
            tmp_path / "sealed", HEADER, max_segment_bytes=128
        ) as s:
            for i in range(6):
                s.append([(i, payload(i, 64), b"")])
            sealed_names = [
                e.name for e in s._log.manifest.segments if e.sealed
            ]
        assert sealed_names
        seg = tmp_path / "sealed" / sealed_names[0]
        os.truncate(seg, seg.stat().st_size - 3)  # torn — but sealed
        report = verify_store(tmp_path / "sealed")
        assert report["errors"]
        with pytest.raises(StorageCorruptionError, match="sealed"):
            RecordStore.open(tmp_path / "sealed")

    def test_orphan_segment_removed_on_open(self, store, tmp_path):
        seed(store)
        store.close()
        orphan = tmp_path / "store" / "seg-00000099.log"
        orphan.write_bytes(SEGMENT_MAGIC)
        report = verify_store(tmp_path / "store")
        assert any("orphan" in w for w in report["warnings"])
        with RecordStore.open(tmp_path / "store") as s:
            assert s.record_count == 6
        assert not orphan.exists()

    def test_missing_manifest_is_not_a_store(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StorageError, match=MANIFEST_NAME):
            RecordStore.open(tmp_path / "empty")

    def test_garbage_manifest_is_corruption(self, store, tmp_path):
        store.close()
        (tmp_path / "store" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StorageCorruptionError):
            RecordStore.open(tmp_path / "store")


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_compaction_preserves_state_and_counters(self, store, tmp_path):
        seed(store, 8)
        store.delete([0, 2, 4])
        before = store.snapshot()
        assert before.dead_records == 3
        live_before = sorted(store.scan())

        after = store.compact()
        assert after.dead_records == 0
        assert after.live_records == 5
        assert after.uploads == before.uploads
        assert after.deletes == before.deletes
        assert after.compactions == before.compactions + 1
        assert sorted(store.scan()) == live_before

        # ...and all of it survives a reopen (checkpointed counters).
        store.close()
        with RecordStore.open(tmp_path / "store") as s:
            assert sorted(s.scan()) == live_before
            assert s.uploads == before.uploads
            assert s.deletes == before.deletes

    def test_compaction_reclaims_bytes(self, store):
        seed(store, 10)
        store.delete(list(range(9)))
        before = store.snapshot().log_bytes
        store.compact()
        assert store.snapshot().log_bytes < before

    def test_store_still_writable_after_compaction(self, store):
        seed(store, 4)
        store.delete([1])
        store.compact()
        store.append([(99, payload(99), b"")])
        assert 99 in {i for i, _, _ in store.scan()}
        # A tombstoned id may be reused after its tombstone is compacted.
        store.append([(1, b"reborn", b"")])
        assert dict((i, p) for i, p, _ in store.scan())[1] == b"reborn"

    def test_compact_empty_store(self, store):
        store.compact()
        assert store.record_count == 0
        assert store.snapshot().compactions == 1
