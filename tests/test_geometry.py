"""Tests for repro.core.geometry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import (
    Circle,
    DataSpace,
    distance_squared,
    point_in_circle,
    point_on_boundary,
)
from repro.errors import ParameterError


class TestCircle:
    def test_from_radius(self):
        c = Circle.from_radius((3, 2), 5)
        assert c.r_squared == 25 and c.integer_radius() == 5

    def test_irrational_radius_allowed(self):
        # Paper Sec. VI: R = √2 is fine because only R² enters encryption.
        c = Circle((0, 0), 2)
        assert c.radius == pytest.approx(2**0.5)
        with pytest.raises(ParameterError):
            c.integer_radius()

    def test_negative_r_squared_rejected(self):
        with pytest.raises(ParameterError):
            Circle((0, 0), -1)

    def test_negative_radius_rejected(self):
        with pytest.raises(ParameterError):
            Circle.from_radius((0, 0), -2)

    def test_empty_center_rejected(self):
        with pytest.raises(ParameterError):
            Circle((), 1)

    def test_non_integer_center_rejected(self):
        with pytest.raises(ParameterError):
            Circle((1.5, 2), 1)

    def test_dimension(self):
        assert Circle((1, 2, 3), 4).w == 3


class TestPredicates:
    def test_inside_includes_boundary(self):
        # Footnote 2: "inside" includes the boundary.
        q = Circle.from_radius((3, 2), 1)
        assert point_in_circle((2, 2), q)
        assert point_on_boundary((2, 2), q)
        assert point_in_circle((3, 2), q)
        assert not point_on_boundary((3, 2), q)
        assert not point_in_circle((1, 3), q)

    @given(
        st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
        st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
        st.integers(0, 100),
    )
    def test_consistency(self, p, c, r_sq):
        q = Circle(c, r_sq)
        d = distance_squared(p, c)
        assert point_in_circle(p, q) == (d <= r_sq)
        assert point_on_boundary(p, q) == (d == r_sq)

    def test_distance_squared_mismatch(self):
        with pytest.raises(ParameterError):
            distance_squared((1, 2), (1, 2, 3))


class TestDataSpace:
    def test_validation(self):
        space = DataSpace(2, 8)
        assert space.contains_point((0, 7))
        assert not space.contains_point((0, 8))
        assert not space.contains_point((-1, 0))
        assert not space.contains_point((1,))
        assert not space.contains_point((1.0, 2))

    def test_validate_point_raises(self):
        with pytest.raises(ParameterError):
            DataSpace(2, 8).validate_point((8, 0))

    def test_bad_construction(self):
        with pytest.raises(ParameterError):
            DataSpace(0, 8)
        with pytest.raises(ParameterError):
            DataSpace(2, 0)

    def test_max_distance_squared(self):
        assert DataSpace(2, 8).max_distance_squared() == 2 * 49
        assert DataSpace(3, 4).max_distance_squared() == 3 * 9

    def test_validate_circle(self):
        space = DataSpace(2, 8)
        space.validate_circle(Circle.from_radius((3, 3), 2))
        with pytest.raises(ParameterError):
            space.validate_circle(Circle.from_radius((9, 3), 2))
        with pytest.raises(ParameterError):
            space.validate_circle(Circle((3, 3), 99))  # beyond diameter
        with pytest.raises(ParameterError):
            space.validate_circle(Circle((3, 3, 3), 4))  # wrong dimension

    def test_iter_points_count(self):
        assert len(list(DataSpace(2, 3).iter_points())) == 9
        assert len(list(DataSpace(3, 2).iter_points())) == 8

    def test_boundary_value_bound(self):
        space = DataSpace(2, 8)
        assert space.boundary_value_bound() == 98
        assert space.boundary_value_bound(200) == 200


class TestLatticeEnumeration:
    @given(
        st.integers(0, 7),
        st.integers(0, 7),
        st.integers(0, 3),
    )
    def test_matches_brute_force(self, xc, yc, radius):
        space = DataSpace(2, 8)
        circle = Circle.from_radius((xc, yc), radius)
        expected = sorted(
            p for p in space.iter_points() if point_in_circle(p, circle)
        )
        assert sorted(space.lattice_points_in_circle(circle)) == expected

    def test_three_dimensions(self):
        space = DataSpace(3, 5)
        circle = Circle.from_radius((2, 2, 2), 1)
        pts = space.lattice_points_in_circle(circle)
        assert len(pts) == 7  # center + 6 axis neighbours
