"""Tests for growth analysis and leakage-pattern inference."""

from __future__ import annotations

import random

import pytest

from repro.analysis.growth import (
    crse1_max_feasible_radius,
    crse2_cost_curve,
    landau_ramanujan_estimate,
    predicted_m,
)
from repro.cloud.costmodel import PAPER_EC2_MODEL
from repro.cloud.deployment import CloudDeployment
from repro.core.concircles import num_concentric_circles
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.errors import ParameterError
from repro.security.patterns import (
    analyze_log,
    co_retrieval_groups,
    infer_radius_candidates,
    infer_search_pattern,
)


class TestGrowth:
    def test_estimate_tracks_exact_count(self):
        # The asymptotic undershoots at small x; accuracy improves with R
        # (8.8% at R=10 down to 3.7% at R=50).
        errors = []
        for radius in (10, 20, 30, 50):
            exact = num_concentric_circles(radius * radius)
            estimate = landau_ramanujan_estimate(radius * radius)
            error = abs(estimate - exact) / exact
            assert error < 0.12, radius
            errors.append(error)
        assert errors == sorted(errors, reverse=True)  # converging

    def test_estimate_domain(self):
        with pytest.raises(ParameterError):
            landau_ramanujan_estimate(1)

    def test_predicted_m_small_radii_exact(self):
        assert predicted_m(0) == 1
        assert predicted_m(1) == 2

    def test_cost_curve_shape(self):
        rows = crse2_cost_curve([1, 10, 50], PAPER_EC2_MODEL)
        assert rows[0]["m"] == 2 and rows[1]["m"] == 44
        assert rows[2]["token_s"] > rows[1]["token_s"] > rows[0]["token_s"]
        # Paper anchor: ~0.33 s token generation at R = 10.
        assert rows[1]["token_s"] == pytest.approx(0.329, rel=0.2)

    def test_crse1_feasible_radius_is_tiny(self):
        # The quantitative "impractical for large radiuses" claim.
        assert crse1_max_feasible_radius(1000, optimized=True) <= 6
        assert crse1_max_feasible_radius(1000, optimized=False) <= 3
        assert crse1_max_feasible_radius(10**6, optimized=False) <= 5

    def test_feasible_radius_budget_check(self):
        with pytest.raises(ParameterError):
            crse1_max_feasible_radius(3)


class TestSearchPatternInference:
    def test_repeated_queries_detected(self):
        patterns = [(1, 2, 3), (4,), (3, 2, 1), (5, 6)]
        groups = infer_search_pattern(patterns)
        assert groups == [(0, 2)]

    def test_no_repeats(self):
        assert infer_search_pattern([(1,), (2,), (3,)]) == []


class TestRadiusInference:
    def test_unpadded_count_reveals_radius(self):
        # m(R) is injective at w = 2, so the preimage is a single radius.
        candidates = infer_radius_candidates([2, 4, 44], max_radius=20)
        assert candidates == [(1,), (2,), (10,)]

    def test_padded_count_has_no_preimage(self):
        # K = 25 is not m(R) for any R <= 200 iff 25 isn't in the image;
        # check against the actual image rather than assuming.
        image = {
            num_concentric_circles(r * r) for r in range(201)
        }
        k = next(k for k in range(20, 60) if k not in image)
        assert infer_radius_candidates([k]) == [()]


class TestCoRetrieval:
    def test_groups_by_support(self):
        patterns = [(1, 2), (1, 2), (3, 4), (1, 2), (3, 4)]
        groups = co_retrieval_groups(patterns)
        assert groups == [(1, 2), (3, 4)]

    def test_singletons_ignored(self):
        assert co_retrieval_groups([(1,), (1,), (1,)]) == []


class TestEndToEndAnalysis:
    def test_analyze_real_server_log(self):
        rng = random.Random(0x10)
        space = DataSpace(2, 32)
        scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
        dep = CloudDeployment.create(scheme, rng=rng)
        dep.outsource([(10, 10), (11, 10), (25, 25)])
        q = Circle.from_radius((10, 10), 2)
        dep.query(q)
        dep.query(q)  # repeat: the search pattern should catch it
        # Pad to a count outside the image of m(·) so the radius inference
        # comes back empty.
        image = {num_concentric_circles(r * r) for r in range(201)}
        pad_k = next(k for k in range(20, 80) if k not in image)
        dep.query(q, hide_radius_to=pad_k)

        report = analyze_log(dep.server.log)
        assert report.record_count == 3
        assert report.query_count == 3
        assert (0, 1) in report.repeated_query_groups or (
            0,
            1,
            2,
        ) in report.repeated_query_groups
        # Unpadded queries leak R = 2 exactly; the padded one leaks nothing.
        assert report.radius_candidates[0] == (2,)
        assert report.radius_candidates[2] == ()
        assert (0, 1) in report.co_retrieved
