"""Fault injection and fuzzing: malformed input must fail loudly and safely.

A server (or an attacker on the wire) can hand the library arbitrary bytes.
Every decode path must either round-trip to a valid object or raise a
library error (:class:`repro.errors.ReproError`) — never crash with an
unrelated exception, hang, or silently mis-answer.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.codec import (
    decode_ciphertext,
    decode_token,
    encode_ciphertext,
    encode_token,
)
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.crypto.keystore import load_crse2_key
from repro.errors import ReproError


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0xF022)
    space = DataSpace(2, 16)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    ciphertext = scheme.encrypt(key, (8, 8), rng)
    token = scheme.gen_token(key, Circle.from_radius((8, 8), 2), rng)
    return scheme, key, ciphertext, token, rng


class TestBitFlips:
    """Flipping any single bit of a wire object must not crash the decoder."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_ciphertext_bitflip(self, env, data):
        scheme, _, ciphertext, _, _ = env
        blob = bytearray(encode_ciphertext(scheme, ciphertext))
        position = data.draw(st.integers(0, len(blob) * 8 - 1))
        blob[position // 8] ^= 1 << (position % 8)
        try:
            decode_ciphertext(scheme, bytes(blob))
        except ReproError:
            pass  # rejecting is fine; crashing is not

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_token_bitflip(self, env, data):
        scheme, _, _, token, _ = env
        blob = bytearray(encode_token(scheme, token))
        position = data.draw(st.integers(0, len(blob) * 8 - 1))
        blob[position // 8] ^= 1 << (position % 8)
        try:
            decode_token(scheme, bytes(blob))
        except ReproError:
            pass

    def test_flipped_ciphertext_never_false_positives_silently(self, env):
        """A decodable corrupted ciphertext may mis-match, but the system
        must stay deterministic and keep answering other queries."""
        scheme, key, ciphertext, token, rng = env
        blob = bytearray(encode_ciphertext(scheme, ciphertext))
        blob[10] ^= 0xFF
        try:
            corrupted = decode_ciphertext(scheme, bytes(blob))
        except ReproError:
            return
        first = scheme.matches(token, corrupted)
        second = scheme.matches(token, corrupted)
        assert first == second  # deterministic under corruption
        # Healthy ciphertexts are unaffected.
        assert scheme.matches(token, ciphertext)


class TestRandomGarbage:
    @settings(max_examples=60, deadline=None)
    @given(blob=st.binary(max_size=300))
    def test_decoders_reject_or_accept_cleanly(self, env, blob):
        scheme = env[0]
        for decoder in (decode_ciphertext, decode_token):
            try:
                decoder(scheme, blob)
            except ReproError:
                pass

    @settings(max_examples=40, deadline=None)
    @given(blob=st.binary(max_size=300))
    def test_keystore_rejects_garbage(self, blob):
        try:
            load_crse2_key(blob)
        except ReproError:
            pass

    @settings(max_examples=30, deadline=None)
    @given(text=st.text(max_size=120))
    def test_keystore_rejects_arbitrary_json(self, text):
        try:
            load_crse2_key(text.encode())
        except ReproError:
            pass


class TestCrossSchemeMisuse:
    def test_token_from_other_key_never_matches(self, env):
        scheme, key, ciphertext, _, rng = env
        other_key = scheme.gen_key(random.Random(0xF023))
        foreign = scheme.gen_token(
            other_key, Circle.from_radius((8, 8), 2), rng
        )
        # (8,8) is inside, but the key is wrong: must not match.
        assert scheme.matches(foreign, ciphertext) is False

    def test_truncated_sub_token_framing(self, env):
        scheme, _, _, token, _ = env
        blob = encode_token(scheme, token)
        with pytest.raises(ReproError):
            decode_token(scheme, blob[: len(blob) // 2 + 1])
