"""Tests for the executable Theorem-2 reduction (CRSE-I → SSW)."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.core.crse1 import CRSE1Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1
from repro.security.games import GameViolation, QueryPrivacyGame
from repro.security.reduction import (
    CRSE1QueryAdversaryAsSSW,
    SSWQueryPrivacyGame,
)

TRIALS = 12


@pytest.fixture(scope="module")
def crse1():
    rng = random.Random(0x4ED)
    space = DataSpace(2, 16)
    return CRSE1Scheme(
        space, group_for_crse1(space, 4, "fast", rng), r_squared=4
    )


@dataclass
class DistanceProbeAdversary:
    """A legitimate CRSE-I query adversary: probes with admissible points
    and guesses from the Boolean results.

    Challenge circles share radius 2 but have different centers; the probe
    point (6, 8) is inside Q0 (d²=4) and outside Q1 (d²=9) — an
    *inadmissible* request the game must reject, after which the adversary
    falls back to an admissible probe that cannot separate the circles, so
    its advantage is nil (matching Theorem 2's claim).
    """

    q0: Circle
    q1: Circle
    tried_cheating: bool = False

    def choose_challenge(self):
        """Init: the two challenge circles."""
        return (self.q0, self.q1)

    def attack(self, oracle, challenge_token) -> int:
        """Attempt the separating probe, then settle for an admissible one."""
        try:
            oracle.request_ciphertext((6, 8))
        except GameViolation:
            self.tried_cheating = True
        # (9, 9): d² to (8,8) is 2, to (11,8) is 5 — inside both. Admissible.
        probe = oracle.request_ciphertext((9, 9))
        observation = oracle.observe(challenge_token, probe)
        return 0 if observation.matched else 1


def _adversary():
    return DistanceProbeAdversary(
        q0=Circle.from_radius((8, 8), 2), q1=Circle.from_radius((9, 8), 2)
    )


class TestReductionMechanics:
    def test_wrapped_adversary_plays_ssw_game(self, crse1):
        adversary = CRSE1QueryAdversaryAsSSW(scheme=crse1, inner=_adversary())
        game = SSWQueryPrivacyGame(
            group=crse1.group, n=crse1.alpha, rng=random.Random(1)
        )
        game.run(adversary)  # must complete without violations
        assert adversary.inner.tried_cheating

    def test_restrictions_transfer(self, crse1):
        """The SSW oracle rejects exactly the requests the CRSE-I game
        rejects (the proof's admissibility mapping)."""

        @dataclass
        class CheatingAdversary:
            q0: Circle
            q1: Circle

            def choose_challenge(self):
                return (self.q0, self.q1)

            def attack(self, oracle, challenge_token) -> int:
                oracle.request_ciphertext((6, 8))  # separating: must raise
                return 0

        wrapped = CRSE1QueryAdversaryAsSSW(
            scheme=crse1,
            inner=CheatingAdversary(
                q0=Circle.from_radius((8, 8), 2),
                q1=Circle.from_radius((11, 8), 2),
            ),
        )
        game = SSWQueryPrivacyGame(
            group=crse1.group, n=crse1.alpha, rng=random.Random(2)
        )
        with pytest.raises(GameViolation):
            game.run(wrapped)

    def test_advantage_preserved_across_reduction(self, crse1):
        """Same adversary, same seeds: identical win transcript in the
        native CRSE-I game and the SSW game via the reduction."""
        native_wins = []
        reduced_wins = []
        for t in range(TRIALS):
            seed = 0x9E3779B97F4A7C15 * t + 5
            native = QueryPrivacyGame(
                scheme=crse1, rng=random.Random(seed)
            ).run(_adversary())
            reduced = SSWQueryPrivacyGame(
                group=crse1.group, n=crse1.alpha, rng=random.Random(seed)
            ).run(CRSE1QueryAdversaryAsSSW(scheme=crse1, inner=_adversary()))
            native_wins.append(native)
            reduced_wins.append(reduced)
        # Identical randomness stream → identical outcomes, game for game.
        assert native_wins == reduced_wins

    def test_admissible_adversary_has_no_advantage(self, crse1):
        wins = sum(
            SSWQueryPrivacyGame(
                group=crse1.group,
                n=crse1.alpha,
                rng=random.Random(0xC2B2AE3D27D4EB4F * t + 3),
            ).run(CRSE1QueryAdversaryAsSSW(scheme=crse1, inner=_adversary()))
            for t in range(TRIALS)
        )
        assert 0.15 * TRIALS <= wins <= 0.85 * TRIALS

    def test_wrong_radius_challenge_rejected(self, crse1):
        bad = DistanceProbeAdversary(
            q0=Circle.from_radius((8, 8), 1), q1=Circle.from_radius((9, 8), 1)
        )
        wrapped = CRSE1QueryAdversaryAsSSW(scheme=crse1, inner=bad)
        game = SSWQueryPrivacyGame(
            group=crse1.group, n=crse1.alpha, rng=random.Random(3)
        )
        with pytest.raises(GameViolation):
            game.run(wrapped)
