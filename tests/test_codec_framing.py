"""Codec framing edge cases the wire protocol exposes to hostile bytes.

``repro.cloud.codec`` decodes ciphertexts and tokens that, with the
service layer, now genuinely arrive over a network.  Truncated payloads,
oversized frames, and junk bytes must all surface as the typed
:class:`~repro.errors.WireFormatError` — which is simultaneously a
``ProtocolError`` (malformed protocol message) and a
``SerializationError`` (failed deserialization, the pre-service contract)
— and must never escape as ``ValueError``/``IndexError`` or loop
unboundedly on attacker-controlled counts.
"""

from __future__ import annotations

import random

import pytest

from repro.cloud.codec import (
    MAX_SUB_TOKENS,
    decode_ciphertext,
    decode_token,
    encode_token,
)
from repro.core.crse1 import CRSE1Scheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1, group_for_crse2
from repro.errors import ProtocolError, SerializationError


@pytest.fixture(scope="module")
def crse2():
    rng = random.Random(0x51E)
    space = DataSpace(2, 16)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    return scheme, scheme.gen_key(rng), rng


@pytest.fixture(scope="module")
def crse1():
    rng = random.Random(0x51F)
    space = DataSpace(2, 8)
    scheme = CRSE1Scheme(
        space, group_for_crse1(space, 1, "fast", rng), r_squared=1
    )
    return scheme, scheme.gen_key(rng), rng


class TestTruncation:
    def test_truncated_count_prefix(self, crse2):
        scheme, _, _ = crse2
        with pytest.raises(ProtocolError):
            decode_token(scheme, b"\x00")

    def test_empty_token(self, crse2):
        scheme, _, _ = crse2
        with pytest.raises(ProtocolError):
            decode_token(scheme, b"")

    def test_truncated_sub_token_body(self, crse2):
        scheme, key, rng = crse2
        token = scheme.gen_token(key, Circle.from_radius((8, 8), 2), rng)
        blob = encode_token(scheme, token)
        # Chop mid-sub-token: framing stays divisible only by accident, and
        # either way decode must fail typed, not crash.
        with pytest.raises(ProtocolError):
            decode_token(scheme, blob[: len(blob) - 3])

    def test_truncated_ciphertext(self, crse2):
        scheme, key, rng = crse2
        from repro.cloud.codec import encode_ciphertext

        blob = encode_ciphertext(scheme, scheme.encrypt(key, (3, 3), rng))
        with pytest.raises(ProtocolError):
            decode_ciphertext(scheme, blob[:7])


class TestOversize:
    def test_declared_count_above_limit(self, crse2):
        scheme, _, _ = crse2
        count = MAX_SUB_TOKENS + 1
        blob = count.to_bytes(2, "big") + b"\x00" * count
        with pytest.raises(ProtocolError):
            decode_token(scheme, blob)

    def test_max_u16_count_rejected_quickly(self, crse2):
        scheme, _, _ = crse2
        # 65535 declared sub-tokens with a matching body length must be
        # refused by the count guard, not decoded one by one.
        blob = b"\xff\xff" + b"\x00" * 65535
        with pytest.raises(ProtocolError):
            decode_token(scheme, blob)

    def test_zero_count(self, crse2):
        scheme, _, _ = crse2
        with pytest.raises(ProtocolError):
            decode_token(scheme, b"\x00\x00")


class TestJunkBytes:
    def test_crse2_junk_token(self, crse2):
        scheme, _, _ = crse2
        with pytest.raises(ProtocolError):
            decode_token(scheme, b"\x00\x01" + b"\xde\xad\xbe\xef" * 5)

    def test_crse1_junk_token(self, crse1):
        scheme, _, _ = crse1
        with pytest.raises(ProtocolError):
            decode_token(scheme, b"\xde\xad\xbe\xef" * 7)

    def test_junk_ciphertext(self, crse2):
        scheme, _, _ = crse2
        with pytest.raises(ProtocolError):
            decode_ciphertext(scheme, b"not a ciphertext at all")

    def test_fuzz_never_crashes(self, crse2):
        """Random blobs only ever raise the typed wire error."""
        scheme, _, _ = crse2
        rng = random.Random(0xF022)
        for _ in range(200):
            blob = rng.randbytes(rng.randrange(0, 64))
            try:
                decode_token(scheme, blob)
            except ProtocolError:
                pass
            try:
                decode_ciphertext(scheme, blob)
            except ProtocolError:
                pass


class TestBackCompat:
    def test_wire_errors_are_still_serialization_errors(self, crse2):
        """Pre-service callers catching SerializationError keep working."""
        scheme, _, _ = crse2
        with pytest.raises(SerializationError):
            decode_token(scheme, b"\x00")
        with pytest.raises(SerializationError):
            decode_ciphertext(scheme, b"junk")
