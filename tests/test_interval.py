"""Tests for interval/rectangle predicate encryption (repro.core.interval)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import DataSpace
from repro.core.interval import (
    IntervalScheme,
    RectangleScheme,
    interval_inner_product_bound,
)
from repro.core.provision import provision_group
from repro.errors import ParameterError, SchemeError

T = 32
MAX_WIDTH = 5


@pytest.fixture(scope="module")
def interval():
    rng = random.Random(0x1D7)
    group = provision_group(
        interval_inner_product_bound(T, MAX_WIDTH), "fast", rng
    )
    scheme = IntervalScheme(T, MAX_WIDTH, group)
    key = scheme.gen_key(rng)
    return scheme, key


class TestIntervalCorrectness:
    def test_exhaustive_small_interval(self, interval):
        scheme, key = interval
        rng = random.Random(1)
        token = scheme.gen_token(key, 10, 13, rng)
        for value in range(T):
            got = scheme.matches(token, scheme.encrypt(key, value, rng))
            assert got == (10 <= value <= 13), value

    @settings(max_examples=15, deadline=None)
    @given(
        lo=st.integers(0, T - 1),
        width=st.integers(1, MAX_WIDTH),
        value=st.integers(0, T - 1),
    )
    def test_matches_plaintext_predicate(self, interval, lo, width, value):
        scheme, key = interval
        hi = min(lo + width - 1, T - 1)
        rng = random.Random(hash((lo, width, value)) & 0xFFFF)
        token = scheme.gen_token(key, lo, hi, rng)
        ciphertext = scheme.encrypt(key, value, rng)
        assert scheme.matches(token, ciphertext) == (lo <= value <= hi)

    def test_single_point_interval(self, interval):
        scheme, key = interval
        rng = random.Random(2)
        token = scheme.gen_token(key, 7, 7, rng)
        assert scheme.matches(token, scheme.encrypt(key, 7, rng))
        assert not scheme.matches(token, scheme.encrypt(key, 8, rng))

    def test_narrow_and_wide_tokens_same_alpha(self, interval):
        # Width hiding: the padded token has the same shape regardless of
        # actual width.
        scheme, key = interval
        rng = random.Random(3)
        narrow = scheme.gen_token(key, 5, 5, rng)
        wide = scheme.gen_token(key, 5, 9, rng)
        assert narrow.ssw.n == wide.ssw.n == MAX_WIDTH + 1


class TestIntervalValidation:
    def test_width_cap(self, interval):
        scheme, key = interval
        with pytest.raises(SchemeError):
            scheme.gen_token(key, 0, MAX_WIDTH, random.Random(1))

    def test_bad_bounds(self, interval):
        scheme, key = interval
        rng = random.Random(1)
        with pytest.raises(ParameterError):
            scheme.gen_token(key, 5, 3, rng)
        with pytest.raises(ParameterError):
            scheme.gen_token(key, -1, 2, rng)
        with pytest.raises(ParameterError):
            scheme.encrypt(key, T, rng)

    def test_undersized_group(self):
        rng = random.Random(4)
        tiny = provision_group(100, "fast", rng, min_payload_bits=8)
        with pytest.raises(SchemeError):
            IntervalScheme(1 << 20, 6, tiny)

    def test_bad_construction(self):
        rng = random.Random(5)
        group = provision_group(10**6, "fast", rng)
        with pytest.raises(ParameterError):
            IntervalScheme(0, 2, group)
        with pytest.raises(ParameterError):
            IntervalScheme(8, 0, group)


@pytest.fixture(scope="module")
def rectangle():
    rng = random.Random(0x1D8)
    space = DataSpace(2, T)
    group = provision_group(
        interval_inner_product_bound(T, MAX_WIDTH), "fast", rng
    )
    scheme = RectangleScheme(space, MAX_WIDTH, group)
    keys = scheme.gen_key(rng)
    return scheme, keys


class TestRectangle:
    def test_exhaustive_box(self, rectangle):
        scheme, keys = rectangle
        rng = random.Random(6)
        tokens = scheme.gen_token(keys, (10, 4), (13, 8), rng)
        for x in range(8, 16):
            for y in range(2, 11):
                cts = scheme.encrypt(keys, (x, y), rng)
                got = scheme.matches(tokens, cts)
                assert got == (10 <= x <= 13 and 4 <= y <= 8), (x, y)

    def test_per_dimension_leakage_is_real(self, rectangle):
        # The structured leakage: server learns WHICH dimension failed.
        scheme, keys = rectangle
        rng = random.Random(7)
        tokens = scheme.gen_token(keys, (10, 10), (12, 12), rng)
        cts = scheme.encrypt(keys, (11, 20), rng)  # x inside, y outside
        matched, per_dim = scheme.matches_with_leakage(tokens, cts)
        assert not matched
        assert per_dim == [True, False]

    def test_box_bound_arity(self, rectangle):
        scheme, keys = rectangle
        with pytest.raises(ParameterError):
            scheme.gen_token(keys, (1,), (2, 3), random.Random(1))

    def test_exact_rectangle_no_false_positives(self, rectangle):
        # Contrast with the OPE baseline: corners outside the box never
        # match, and no order information leaks — only Booleans.
        scheme, keys = rectangle
        rng = random.Random(8)
        tokens = scheme.gen_token(keys, (5, 5), (9, 9), rng)
        assert not scheme.matches(tokens, scheme.encrypt(keys, (10, 5), rng))
        assert not scheme.matches(tokens, scheme.encrypt(keys, (4, 9), rng))
