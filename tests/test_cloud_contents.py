"""Tests for record contents, fetch, and dynamic updates in the cloud model."""

from __future__ import annotations

import random

import pytest

from repro.cloud.deployment import CloudDeployment
from repro.cloud.messages import FetchRequest
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2
from repro.errors import CryptoError, ProtocolError


@pytest.fixture()
def deployment():
    rng = random.Random(0xC0DE)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    return CloudDeployment.create(scheme, rng=rng)


POINTS = [(10, 10), (11, 11), (25, 25), (30, 5)]
CONTENTS = [b"alice", b"bob", b"carol", b"dave"]


class TestContents:
    def test_search_then_fetch_decrypts(self, deployment):
        deployment.outsource(POINTS, contents=CONTENTS)
        response = deployment.query(Circle.from_radius((10, 10), 2))
        fetched = deployment.user.fetch_contents(response.identifiers)
        assert fetched == {0: b"alice", 1: b"bob"}

    def test_server_never_sees_plaintext(self, deployment):
        deployment.outsource(POINTS, contents=CONTENTS)
        stored = deployment.server._contents
        for plaintext in CONTENTS:
            assert all(plaintext not in blob for blob in stored.values())

    def test_tampered_content_detected(self, deployment):
        deployment.outsource(POINTS, contents=CONTENTS)
        blob = bytearray(deployment.server._contents[0])
        blob[20] ^= 1
        deployment.server._contents[0] = bytes(blob)
        with pytest.raises(CryptoError):
            deployment.user.fetch_contents((0,))

    def test_fetch_unknown_identifier(self, deployment):
        deployment.outsource(POINTS, contents=CONTENTS)
        with pytest.raises(ProtocolError):
            deployment.server.handle_fetch(FetchRequest(identifiers=(99,)))

    def test_contents_optional(self, deployment):
        deployment.outsource(POINTS)  # no contents
        response = deployment.query(Circle.from_radius((10, 10), 2))
        assert len(response.identifiers) == 2

    def test_content_length_mismatch(self, deployment):
        with pytest.raises(ProtocolError):
            deployment.outsource(POINTS, contents=[b"only-one"])


class TestDynamicUpdates:
    def test_incremental_additions(self, deployment):
        deployment.outsource(POINTS[:2])
        deployment.outsource(POINTS[2:])  # second upload, no re-index
        assert deployment.server.record_count == 4
        q = Circle.from_radius((25, 25), 1)
        assert deployment.query_points(q) == [(25, 25)]

    def test_delete_removes_from_results(self, deployment):
        deployment.outsource(POINTS)
        q = Circle.from_radius((10, 10), 3)
        before = deployment.query(q).identifiers
        assert set(before) == {0, 1}
        removed = deployment.delete([1])
        assert removed == 1
        after = deployment.query(q).identifiers
        assert set(after) == {0}
        assert deployment.server.record_count == 3

    def test_delete_unknown_is_noop(self, deployment):
        deployment.outsource(POINTS)
        assert deployment.delete([42]) == 0
        assert deployment.server.record_count == 4

    def test_delete_also_drops_content(self, deployment):
        deployment.outsource(POINTS, contents=CONTENTS)
        deployment.delete([2])
        with pytest.raises(ProtocolError):
            deployment.server.handle_fetch(FetchRequest(identifiers=(2,)))

    def test_identifiers_stay_unique_across_uploads(self, deployment):
        deployment.outsource(POINTS[:2])
        deployment.outsource(POINTS[:2])  # same points again, new ids
        ids = [r.identifier for r in deployment.server._records]
        assert len(ids) == len(set(ids)) == 4

    def test_mixed_lifecycle(self, deployment):
        rng = random.Random(1)
        deployment.outsource(POINTS, contents=CONTENTS)
        deployment.delete([0, 3])
        deployment.outsource([(12, 12)], contents=[b"erin"])
        q = Circle.from_radius((11, 11), 2)
        response = deployment.query(q)
        resolved = deployment.owner.resolve(response.identifiers)
        expected = [p for p in [(11, 11), (12, 12)] if point_in_circle(p, q)]
        assert sorted(resolved) == sorted(expected)
        fetched = deployment.user.fetch_contents(response.identifiers)
        assert set(fetched.values()) == {b"bob", b"erin"}
