"""Event-loop hygiene regression tests (CRS010's runtime counterpart).

The flow analyzer statically forbids blocking calls in ``async def``
bodies; this suite pins the behavior those findings were about: a large
batch commit (partition-map fsync) must not stall the coordinator's
event loop, because a stalled loop freezes *every* in-flight request,
not just the mutating one.
"""

from __future__ import annotations

import asyncio
import time

from repro.cloud.messages import UploadDataset, UploadRecord
from repro.service import CoordinatorConfig, protocol
from repro.service.coordinator import Coordinator, PartitionMap

SLOW_COMMIT_S = 0.30
#: Loosely half the commit time: an on-loop commit would produce a gap of
#: at least SLOW_COMMIT_S between ticks; an off-loop one stays near the
#: tick interval.  The margin absorbs CI scheduler noise.
MAX_TOLERATED_GAP_S = 0.15


class _StubShardClient:
    """In-process stand-in for a backend shard's ServiceClient."""

    def upload(self, dataset, deadline_ms=None):
        return len(dataset.records)

    def delete(self, identifiers, deadline_ms=None):
        return len(identifiers)


def _upload_request(n_records: int) -> protocol.Request:
    dataset = UploadDataset(
        records=tuple(
            UploadRecord(
                identifier=i, payload=b"payload-%d" % i, content=b""
            )
            for i in range(n_records)
        )
    )
    return protocol.Request(
        verb="upload",
        request_id=1,
        deadline_ms=None,
        fields=protocol.upload_fields(dataset),
    )


async def _max_tick_gap(work) -> float:
    """Run *work* while sampling loop latency; return the worst gap."""
    gaps: list[float] = []

    async def ticker():
        last = time.perf_counter()
        while True:
            await asyncio.sleep(0.01)
            now = time.perf_counter()
            gaps.append(now - last)
            last = now

    probe = asyncio.ensure_future(ticker())
    try:
        await work
    finally:
        probe.cancel()
    return max(gaps) if gaps else 0.0


class TestBatchCommitResponsiveness:
    def test_loop_stays_responsive_during_slow_persist(
        self, tmp_path, monkeypatch
    ):
        real_save = PartitionMap.save

        def slow_save(self, directory):
            time.sleep(SLOW_COMMIT_S)  # simulated huge fsync
            real_save(self, directory)

        coordinator = Coordinator(
            ["127.0.0.1:9"],
            CoordinatorConfig(),
            data_dir=tmp_path,
            client_factory=lambda spec, timeout_s: _StubShardClient(),
        )
        monkeypatch.setattr(PartitionMap, "save", slow_save)
        request = _upload_request(64)

        async def scenario() -> float:
            return await _max_tick_gap(coordinator._do_upload(request))

        worst_gap = asyncio.run(scenario())
        assert worst_gap < MAX_TOLERATED_GAP_S, (
            f"event loop stalled for {worst_gap * 1000:.0f} ms during a "
            "batch commit — the partition-map fsync is back on the loop"
        )
        # The upload itself really happened and really persisted.
        assert coordinator.partition_map.record_count == 64
        assert PartitionMap.load(tmp_path) is not None

    def test_delete_commit_also_off_loop(self, tmp_path, monkeypatch):
        real_save = PartitionMap.save

        def slow_save(self, directory):
            time.sleep(SLOW_COMMIT_S)
            real_save(self, directory)

        coordinator = Coordinator(
            ["127.0.0.1:9"],
            CoordinatorConfig(),
            data_dir=tmp_path,
            client_factory=lambda spec, timeout_s: _StubShardClient(),
        )
        asyncio.run(coordinator._do_upload(_upload_request(8)))
        monkeypatch.setattr(PartitionMap, "save", slow_save)
        delete_request = protocol.Request(
            verb="delete",
            request_id=2,
            deadline_ms=None,
            fields={"ids": list(range(8))},
        )

        async def scenario() -> float:
            return await _max_tick_gap(coordinator._do_delete(delete_request))

        worst_gap = asyncio.run(scenario())
        assert worst_gap < MAX_TOLERATED_GAP_S
        assert coordinator.partition_map.record_count == 0
