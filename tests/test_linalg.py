"""Tests for the exact rational linear algebra substrate."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.math.linalg import (
    identity_matrix,
    mat_inverse,
    mat_mul,
    mat_vec,
    random_invertible_matrix,
    solve_linear_system,
)


def _frac_matrix(rows):
    return [[Fraction(v) for v in row] for row in rows]


small_matrices = st.integers(1, 4).flatmap(
    lambda n: st.lists(
        st.lists(st.integers(-9, 9), min_size=n, max_size=n),
        min_size=n,
        max_size=n,
    )
)


class TestInverse:
    def test_known_inverse(self):
        m = _frac_matrix([[2, 0], [0, 4]])
        inv = mat_inverse(m)
        assert inv == _frac_matrix([[Fraction(1, 2), 0], [0, Fraction(1, 4)]])

    @settings(max_examples=60)
    @given(small_matrices)
    def test_inverse_property(self, rows):
        m = _frac_matrix(rows)
        n = len(m)
        try:
            inv = mat_inverse(m)
        except ParameterError:
            return  # singular — acceptable draw
        assert mat_mul(m, inv) == identity_matrix(n)
        assert mat_mul(inv, m) == identity_matrix(n)

    def test_singular_rejected(self):
        with pytest.raises(ParameterError):
            mat_inverse(_frac_matrix([[1, 2], [2, 4]]))

    def test_non_square_rejected(self):
        with pytest.raises(ParameterError):
            mat_inverse(_frac_matrix([[1, 2, 3], [4, 5, 6]]))

    def test_needs_row_swap(self):
        # Zero pivot forces partial pivoting.
        m = _frac_matrix([[0, 1], [1, 0]])
        assert mat_inverse(m) == m


class TestProducts:
    def test_mat_vec(self):
        m = _frac_matrix([[1, 2], [3, 4]])
        assert mat_vec(m, [Fraction(5), Fraction(6)]) == [
            Fraction(17),
            Fraction(39),
        ]

    def test_dimension_checks(self):
        m = _frac_matrix([[1, 2]])
        with pytest.raises(ParameterError):
            mat_vec(m, [Fraction(1)])
        with pytest.raises(ParameterError):
            mat_mul(m, m)
        with pytest.raises(ParameterError):
            mat_mul([], [])

    def test_ragged_rejected(self):
        with pytest.raises(ParameterError):
            mat_vec([[Fraction(1)], [Fraction(1), Fraction(2)]], [Fraction(1)])


class TestSolve:
    @settings(max_examples=40)
    @given(small_matrices, st.data())
    def test_solution_satisfies_system(self, rows, data):
        m = _frac_matrix(rows)
        n = len(m)
        rhs = [
            Fraction(data.draw(st.integers(-9, 9))) for _ in range(n)
        ]
        try:
            x = solve_linear_system(m, rhs)
        except ParameterError:
            return
        assert mat_vec(m, x) == rhs


class TestRandomInvertible:
    def test_always_invertible(self):
        rng = random.Random(1)
        for n in (1, 2, 3, 5):
            m = random_invertible_matrix(n, rng)
            assert mat_mul(m, mat_inverse(m)) == identity_matrix(n)

    def test_bad_size(self):
        with pytest.raises(ParameterError):
            random_invertible_matrix(0, random.Random(1))
