"""Public-API surface tests: the README quickstart must keep working."""

from __future__ import annotations

import random

import pytest

import repro
from repro.errors import (
    CryptoError,
    ParameterError,
    ProtocolError,
    ReproError,
    SchemeError,
    SerializationError,
)


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for exc in (
            ParameterError,
            CryptoError,
            SerializationError,
            SchemeError,
            ProtocolError,
        ):
            assert issubclass(exc, ReproError)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            repro.DataSpace(0, 0)


class TestQuickstart:
    def test_readme_flow(self):
        rng = random.Random(7)
        space = repro.DataSpace(w=2, t=1024)
        scheme = repro.CRSE2Scheme(
            space, repro.group_for_crse2(space, backend="fast", rng=rng)
        )
        cloud = repro.CloudDeployment.create(scheme, rng=rng)
        cloud.outsource([(100, 200), (105, 205), (900, 900)])
        hits = cloud.query_points(repro.Circle.from_radius((101, 201), 10))
        assert sorted(hits) == [(100, 200), (105, 205)]

    def test_size_models_exported(self):
        assert repro.ElementSizeModel.paper().element_bytes == 64
        assert repro.PAPER_ELEMENT_BYTES == 64

    def test_cost_model_exported(self):
        assert repro.PAPER_EC2_MODEL.pairing_ms == 0.44
