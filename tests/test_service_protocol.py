"""Wire-protocol framing and envelope edge cases.

The framing layer is the service's outermost trust boundary: every test
here feeds it the kind of input a broken or hostile peer produces —
truncated frames, hostile length prefixes, junk JSON — and asserts the
typed :class:`~repro.errors.WireFormatError` (a ``ProtocolError``) comes
back instead of a crash or a hang.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.cloud.messages import (
    DeleteRequest,
    FetchRequest,
    FetchResponse,
    SearchRequest,
    UploadDataset,
    UploadRecord,
)
from repro.errors import ProtocolError, WireFormatError
from repro.service import protocol


class TestFraming:
    def test_roundtrip(self):
        frame = protocol.encode_frame(b"hello")
        assert frame == b"\x00\x00\x00\x05hello"

    def test_empty_frame_rejected(self):
        with pytest.raises(WireFormatError):
            protocol.encode_frame(b"")

    def test_oversized_frame_rejected_on_send(self):
        with pytest.raises(ProtocolError):
            protocol.encode_frame(b"x" * (protocol.MAX_FRAME_BYTES + 1))

    def test_async_read_roundtrip(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(protocol.encode_frame(b"payload"))
            reader.feed_eof()
            body = await protocol.read_frame(reader)
            assert body == b"payload"
            assert await protocol.read_frame(reader) is None

        asyncio.run(run())

    def test_async_truncated_header(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")  # half a length prefix
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_frame(reader)

        asyncio.run(run())

    def test_async_truncated_body(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00\x00\x0aonly4")
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_frame(reader)

        asyncio.run(run())

    def test_async_hostile_length_prefix(self):
        async def run():
            reader = asyncio.StreamReader()
            # Claims a 4 GiB frame; must be rejected before buffering it.
            reader.feed_data(b"\xff\xff\xff\xff")
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_frame(reader)

        asyncio.run(run())

    def test_blocking_recv_truncated(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x0aonly4")
            left.close()
            with pytest.raises(ProtocolError):
                protocol.recv_frame(right)
        finally:
            right.close()

    def test_blocking_roundtrip(self):
        left, right = socket.socketpair()
        try:
            body = protocol.encode_request("health", 1)
            sender = threading.Thread(
                target=protocol.send_frame, args=(left, body)
            )
            sender.start()
            assert protocol.recv_frame(right) == body
            sender.join()
        finally:
            left.close()
            right.close()


class TestEnvelopes:
    def test_request_roundtrip(self):
        body = protocol.encode_request(
            "search", 42, fields={"token": "AAAA"}, deadline_ms=125.0
        )
        request = protocol.decode_request(body)
        assert request.verb == "search"
        assert request.request_id == 42
        assert request.deadline_ms == 125.0
        assert request.fields == {"token": "AAAA"}

    @pytest.mark.parametrize(
        "body",
        [
            b"junk not json",
            b"\xff\xfe garbage bytes",
            b"[1, 2, 3]",
            b'{"v": 99, "verb": "health", "id": 1}',
            b'{"v": 1, "verb": "explode", "id": 1}',
            b'{"v": 1, "verb": "health", "id": "one"}',
            b'{"v": 1, "verb": "health", "id": 1, "deadline_ms": -5}',
        ],
    )
    def test_malformed_requests_rejected(self, body):
        with pytest.raises(ProtocolError):
            protocol.decode_request(body)

    def test_reply_roundtrip(self):
        reply = protocol.decode_reply(
            protocol.encode_ok(7, {"stored": 3})
        )
        assert reply.ok and reply.request_id == 7
        assert reply.fields == {"stored": 3}

    def test_error_reply_roundtrip(self):
        reply = protocol.decode_reply(
            protocol.encode_error(9, protocol.ERR_BUSY, "full", retryable=True)
        )
        assert not reply.ok
        assert reply.error_code == protocol.ERR_BUSY
        assert reply.retryable

    @pytest.mark.parametrize(
        "body",
        [
            b"not json either",
            b'{"v": 1, "id": 1}',
            b'{"v": 1, "id": 1, "ok": false}',
            b'{"v": 1, "id": 1, "ok": false, "error": "oops"}',
        ],
    )
    def test_malformed_replies_rejected(self, body):
        with pytest.raises(ProtocolError):
            protocol.decode_reply(body)


class TestPayloadFields:
    def test_upload_roundtrip(self):
        dataset = UploadDataset(
            records=(
                UploadRecord(identifier=1, payload=b"\x00\x01", content=b"c"),
                UploadRecord(identifier=2, payload=b"\xff"),
            )
        )
        restored = protocol.upload_from_fields(protocol.upload_fields(dataset))
        assert restored == dataset

    def test_upload_bad_base64(self):
        with pytest.raises(ProtocolError):
            protocol.upload_from_fields(
                {"records": [{"id": 1, "payload": "!!not-base64!!"}]}
            )

    def test_upload_bad_record_shape(self):
        with pytest.raises(ProtocolError):
            protocol.upload_from_fields({"records": [{"payload": "AAAA"}]})

    def test_search_roundtrip(self):
        message = SearchRequest(payload=b"\x01\x02\x03")
        assert (
            protocol.search_from_fields(protocol.search_fields(message))
            == message
        )

    def test_search_missing_token(self):
        with pytest.raises(ProtocolError):
            protocol.search_from_fields({})

    def test_search_batch_roundtrip(self):
        payloads = (b"\x01\x02", b"\x03", b"\xff" * 5)
        fields = protocol.search_batch_fields(payloads)
        assert protocol.search_batch_from_fields(fields) == payloads

    def test_search_batch_empty_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.search_batch_fields([])
        with pytest.raises(ProtocolError):
            protocol.search_batch_from_fields({"tokens": []})
        with pytest.raises(ProtocolError):
            protocol.search_batch_from_fields({})

    def test_search_batch_bad_token_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.search_batch_from_fields(
                {"tokens": ["AAAA", "!!not-base64!!"]}
            )

    def test_batch_results_roundtrip(self):
        results = [
            ((1, 2, 3), {"records_scanned": 4, "matches": 3}),
            ((), {"records_scanned": 4, "matches": 0}),
        ]
        fields = protocol.batch_results_fields(results)
        restored = protocol.batch_results_from_fields(fields)
        assert restored == tuple(results)

    @pytest.mark.parametrize(
        "bad",
        [
            {},
            {"results": "nope"},
            {"results": [42]},
            {"results": [{"identifiers": "nope"}]},
            {"results": [{"identifiers": [1, "two"]}]},
        ],
    )
    def test_malformed_batch_results_rejected(self, bad):
        with pytest.raises(ProtocolError):
            protocol.batch_results_from_fields(bad)

    def test_fetch_and_delete_roundtrip(self):
        fetch = FetchRequest(identifiers=(1, 2, 3))
        assert (
            protocol.fetch_from_fields(protocol.fetch_fields(fetch)) == fetch
        )
        delete = DeleteRequest(identifiers=(4, 5))
        assert (
            protocol.delete_from_fields(protocol.delete_fields(delete))
            == delete
        )

    def test_identifier_list_type_checked(self):
        with pytest.raises(ProtocolError):
            protocol.fetch_from_fields({"ids": [1, "two"]})

    def test_fetch_response_fields(self):
        response = FetchResponse(contents=((5, b"body"),))
        fields = protocol.fetch_response_fields(response)
        assert fields == {"contents": [[5, "Ym9keQ=="]]}


class TestShardsCapability:
    """The envelope extensions carrying distributed-search data."""

    def test_error_reply_carries_partial_fields(self):
        body = protocol.encode_error(
            7,
            protocol.ERR_SHARD_UNAVAILABLE,
            "shard down",
            fields={
                "identifiers": [1, 2],
                "shards": [{"addr": "h:1", "ok": False}],
            },
        )
        reply = protocol.decode_reply(body)
        assert not reply.ok
        assert reply.error_code == protocol.ERR_SHARD_UNAVAILABLE
        assert reply.fields["identifiers"] == [1, 2]
        reports = protocol.shard_reports_from_fields(reply.fields)
        assert reports == ({"addr": "h:1", "ok": False},)

    def test_error_fields_cannot_shadow_reserved_keys(self):
        body = protocol.encode_error(
            7, protocol.ERR_INTERNAL, "x",
            fields={"ok": True, "error": "gone", "id": 99, "extra": 1},
        )
        reply = protocol.decode_reply(body)
        assert not reply.ok and reply.request_id == 7
        assert reply.fields == {"extra": 1}

    def test_shard_reports_roundtrip(self):
        reports = (
            {"addr": "a:1", "ok": True, "records": 3, "stats": {"x": 1}},
            {"addr": "b:2", "ok": False, "error": "boom"},
        )
        fields = protocol.shard_reports_fields(reports)
        assert protocol.shard_reports_from_fields(fields) == reports

    def test_shard_reports_absent_is_empty(self):
        assert protocol.shard_reports_from_fields({}) == ()

    @pytest.mark.parametrize(
        "bad",
        [
            {"shards": "nope"},
            {"shards": [42]},
            {"shards": [{"ok": True}]},
            {"shards": [{"addr": "a:1"}]},
            {"shards": [{"addr": "a:1", "ok": "yes"}]},
            {"shards": [{"addr": "a:1", "ok": True, "records": "3"}]},
            {"shards": [{"addr": "a:1", "ok": True, "records": True}]},
            {"shards": [{"addr": "a:1", "ok": True, "stats": [1]}]},
        ],
    )
    def test_malformed_shard_reports_rejected(self, bad):
        with pytest.raises(WireFormatError):
            protocol.shard_reports_from_fields(bad)

    def test_fetch_wants_payloads_flag(self):
        assert protocol.fetch_wants_payloads({}) is False
        assert protocol.fetch_wants_payloads({"payloads": True}) is True
        with pytest.raises(WireFormatError):
            protocol.fetch_wants_payloads({"payloads": 1})

    def test_export_rows_roundtrip(self):
        rows = ((1, b"\x00pay", b"body"), (2, b"", b""))
        fields = protocol.export_rows_fields(rows)
        # Untagged rows come back padded with empty tag columns.
        assert protocol.export_rows_from_fields(fields) == tuple(
            (*row, b"", b"") for row in rows
        )

    def test_export_rows_roundtrip_with_tags(self):
        rows = (
            (1, b"\x00pay", b"body", b"T" * 32, b"M" * 32),
            (2, b"", b"", b"", b""),
        )
        fields = protocol.export_rows_fields(rows)
        assert protocol.export_rows_from_fields(fields) == rows
        # The untagged row encodes in the legacy 3-element shape.
        assert len(fields["records"][0]) == 5
        assert len(fields["records"][1]) == 3

    @pytest.mark.parametrize(
        "bad",
        [
            {},
            {"records": 3},
            {"records": [[1, "AA=="]]},
            {"records": [["1", "AA==", "AA=="]]},
            {"records": [[1, "not base64!!", "AA=="]]},
            {"records": [[1, "AA==", "AA==", "AA=="]]},
            {"records": [[1, "AA==", "AA==", "AA==", 7]]},
        ],
    )
    def test_malformed_export_rows_rejected(self, bad):
        with pytest.raises(WireFormatError):
            protocol.export_rows_from_fields(bad)


class TestProtocolFuzz:
    """Seed-fixed fuzzing: random bytes and mutated envelopes must decode
    cleanly or raise a *typed* error — never ``KeyError``/``TypeError``/
    a hang.  The corpora are deterministic (fixed seeds) so a failure
    reproduces."""

    TYPED = (WireFormatError, ProtocolError)

    def test_random_bytes_never_raise_untyped(self):
        rng = __import__("random").Random(0xF022)
        for _ in range(300):
            blob = rng.randbytes(rng.randrange(0, 200))
            for decoder in (protocol.decode_request, protocol.decode_reply):
                try:
                    decoder(blob)
                except self.TYPED:
                    pass

    def test_mutated_json_envelopes_typed_or_valid(self):
        import json as _json
        import random as _random

        rng = _random.Random(0xF0E2)
        base_request = {
            "v": 1, "verb": "search", "id": 3, "token": "AA==",
            "deadline_ms": 50,
        }
        base_reply = {
            "v": 1, "id": 3, "ok": False,
            "error": {"code": "BUSY", "message": "m", "retryable": True},
            "identifiers": [1],
            "shards": [{"addr": "a:1", "ok": True, "records": 2}],
        }
        junk_values = (
            None, True, False, 0, -1, 1.5, "", "x", [], [None], {}, {"a": 1},
            "AAA", 2**40,
        )
        for base, decoder in (
            (base_request, protocol.decode_request),
            (base_reply, protocol.decode_reply),
        ):
            for _ in range(400):
                envelope = _json.loads(_json.dumps(base))
                for _ in range(rng.randrange(1, 3)):
                    action = rng.randrange(3)
                    key = rng.choice(sorted(envelope))
                    if action == 0:
                        envelope[key] = rng.choice(junk_values)
                    elif action == 1:
                        envelope.pop(key)
                    else:
                        envelope[f"junk_{rng.randrange(5)}"] = rng.choice(
                            junk_values
                        )
                blob = _json.dumps(envelope).encode()
                try:
                    decoder(blob)
                except self.TYPED:
                    pass

    def test_mutated_shards_fields_typed_or_valid(self):
        import json as _json
        import random as _random

        rng = _random.Random(0x5A4D)
        base = {
            "identifiers": [1, 2],
            "shards": [
                {"addr": "a:1", "ok": True, "records": 2, "stats": {}},
                {"addr": "b:2", "ok": False, "error": "x"},
            ],
            "records": [[1, "AA==", ""], [2, "", ""]],
            "payloads": True,
        }
        junk = (None, True, 1, "s", [], [1], {}, {"addr": 3}, [["a"]])
        validators = (
            protocol.shard_reports_from_fields,
            protocol.export_rows_from_fields,
            protocol.fetch_wants_payloads,
        )
        for _ in range(500):
            fields = _json.loads(_json.dumps(base))
            target = rng.choice(sorted(fields))
            if rng.random() < 0.5 and isinstance(fields[target], list):
                if fields[target] and rng.random() < 0.5:
                    victim = fields[target][rng.randrange(len(fields[target]))]
                    if isinstance(victim, dict):
                        victim[rng.choice(sorted(victim))] = rng.choice(junk)
                    else:
                        fields[target][
                            rng.randrange(len(fields[target]))
                        ] = rng.choice(junk)
                else:
                    fields[target].append(rng.choice(junk))
            else:
                fields[target] = rng.choice(junk)
            for validator in validators:
                try:
                    validator(fields)
                except self.TYPED:
                    pass

    def test_fuzzed_frames_on_live_connection(self):
        """Random frames against a real reader: typed error or clean cut."""
        import random as _random

        rng = _random.Random(0xFEED)

        async def feed(blob: bytes):
            reader = asyncio.StreamReader()
            reader.feed_data(blob)
            reader.feed_eof()
            frames = []
            while True:
                frame = await protocol.read_frame(reader)
                if frame is None:
                    return frames
                frames.append(frame)

        for _ in range(200):
            blob = rng.randbytes(rng.randrange(0, 64))
            if rng.random() < 0.3:  # sometimes a valid prefix, then junk
                blob = protocol.encode_frame(b"{}") + blob
            try:
                asyncio.run(feed(blob))
            except self.TYPED:
                pass
