"""Wire-protocol framing and envelope edge cases.

The framing layer is the service's outermost trust boundary: every test
here feeds it the kind of input a broken or hostile peer produces —
truncated frames, hostile length prefixes, junk JSON — and asserts the
typed :class:`~repro.errors.WireFormatError` (a ``ProtocolError``) comes
back instead of a crash or a hang.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import pytest

from repro.cloud.messages import (
    DeleteRequest,
    FetchRequest,
    FetchResponse,
    SearchRequest,
    UploadDataset,
    UploadRecord,
)
from repro.errors import ProtocolError, WireFormatError
from repro.service import protocol


class TestFraming:
    def test_roundtrip(self):
        frame = protocol.encode_frame(b"hello")
        assert frame == b"\x00\x00\x00\x05hello"

    def test_empty_frame_rejected(self):
        with pytest.raises(WireFormatError):
            protocol.encode_frame(b"")

    def test_oversized_frame_rejected_on_send(self):
        with pytest.raises(ProtocolError):
            protocol.encode_frame(b"x" * (protocol.MAX_FRAME_BYTES + 1))

    def test_async_read_roundtrip(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(protocol.encode_frame(b"payload"))
            reader.feed_eof()
            body = await protocol.read_frame(reader)
            assert body == b"payload"
            assert await protocol.read_frame(reader) is None

        asyncio.run(run())

    def test_async_truncated_header(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")  # half a length prefix
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_frame(reader)

        asyncio.run(run())

    def test_async_truncated_body(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00\x00\x0aonly4")
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_frame(reader)

        asyncio.run(run())

    def test_async_hostile_length_prefix(self):
        async def run():
            reader = asyncio.StreamReader()
            # Claims a 4 GiB frame; must be rejected before buffering it.
            reader.feed_data(b"\xff\xff\xff\xff")
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_frame(reader)

        asyncio.run(run())

    def test_blocking_recv_truncated(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x0aonly4")
            left.close()
            with pytest.raises(ProtocolError):
                protocol.recv_frame(right)
        finally:
            right.close()

    def test_blocking_roundtrip(self):
        left, right = socket.socketpair()
        try:
            body = protocol.encode_request("health", 1)
            sender = threading.Thread(
                target=protocol.send_frame, args=(left, body)
            )
            sender.start()
            assert protocol.recv_frame(right) == body
            sender.join()
        finally:
            left.close()
            right.close()


class TestEnvelopes:
    def test_request_roundtrip(self):
        body = protocol.encode_request(
            "search", 42, fields={"token": "AAAA"}, deadline_ms=125.0
        )
        request = protocol.decode_request(body)
        assert request.verb == "search"
        assert request.request_id == 42
        assert request.deadline_ms == 125.0
        assert request.fields == {"token": "AAAA"}

    @pytest.mark.parametrize(
        "body",
        [
            b"junk not json",
            b"\xff\xfe garbage bytes",
            b"[1, 2, 3]",
            b'{"v": 99, "verb": "health", "id": 1}',
            b'{"v": 1, "verb": "explode", "id": 1}',
            b'{"v": 1, "verb": "health", "id": "one"}',
            b'{"v": 1, "verb": "health", "id": 1, "deadline_ms": -5}',
        ],
    )
    def test_malformed_requests_rejected(self, body):
        with pytest.raises(ProtocolError):
            protocol.decode_request(body)

    def test_reply_roundtrip(self):
        reply = protocol.decode_reply(
            protocol.encode_ok(7, {"stored": 3})
        )
        assert reply.ok and reply.request_id == 7
        assert reply.fields == {"stored": 3}

    def test_error_reply_roundtrip(self):
        reply = protocol.decode_reply(
            protocol.encode_error(9, protocol.ERR_BUSY, "full", retryable=True)
        )
        assert not reply.ok
        assert reply.error_code == protocol.ERR_BUSY
        assert reply.retryable

    @pytest.mark.parametrize(
        "body",
        [
            b"not json either",
            b'{"v": 1, "id": 1}',
            b'{"v": 1, "id": 1, "ok": false}',
            b'{"v": 1, "id": 1, "ok": false, "error": "oops"}',
        ],
    )
    def test_malformed_replies_rejected(self, body):
        with pytest.raises(ProtocolError):
            protocol.decode_reply(body)


class TestPayloadFields:
    def test_upload_roundtrip(self):
        dataset = UploadDataset(
            records=(
                UploadRecord(identifier=1, payload=b"\x00\x01", content=b"c"),
                UploadRecord(identifier=2, payload=b"\xff"),
            )
        )
        restored = protocol.upload_from_fields(protocol.upload_fields(dataset))
        assert restored == dataset

    def test_upload_bad_base64(self):
        with pytest.raises(ProtocolError):
            protocol.upload_from_fields(
                {"records": [{"id": 1, "payload": "!!not-base64!!"}]}
            )

    def test_upload_bad_record_shape(self):
        with pytest.raises(ProtocolError):
            protocol.upload_from_fields({"records": [{"payload": "AAAA"}]})

    def test_search_roundtrip(self):
        message = SearchRequest(payload=b"\x01\x02\x03")
        assert (
            protocol.search_from_fields(protocol.search_fields(message))
            == message
        )

    def test_search_missing_token(self):
        with pytest.raises(ProtocolError):
            protocol.search_from_fields({})

    def test_fetch_and_delete_roundtrip(self):
        fetch = FetchRequest(identifiers=(1, 2, 3))
        assert (
            protocol.fetch_from_fields(protocol.fetch_fields(fetch)) == fetch
        )
        delete = DeleteRequest(identifiers=(4, 5))
        assert (
            protocol.delete_from_fields(protocol.delete_fields(delete))
            == delete
        )

    def test_identifier_list_type_checked(self):
        with pytest.raises(ProtocolError):
            protocol.fetch_from_fields({"ids": [1, "two"]})

    def test_fetch_response_fields(self):
        response = FetchResponse(contents=((5, b"body"),))
        fields = protocol.fetch_response_fields(response)
        assert fields == {"contents": [[5, "Ym9keQ=="]]}
