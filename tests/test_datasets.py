"""Tests for the workload generators (repro.datasets)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.geometry import Circle, DataSpace, point_on_boundary
from repro.datasets.brightkite import (
    checkin_to_point,
    data_space_for_digits,
    generate_checkins,
    haversine_m,
    meters_per_unit,
    radius_for_meters,
    real_world_radius_m,
    round_coordinate,
)
from repro.datasets.synthetic import (
    clustered_points,
    points_on_boundary,
    query_workload,
    random_circle,
    uniform_points,
)
from repro.errors import ParameterError


class TestSynthetic:
    def test_uniform_points_in_space(self, rng):
        space = DataSpace(2, 32)
        points = uniform_points(space, 200, rng)
        assert len(points) == 200
        assert all(space.contains_point(p) for p in points)

    def test_clustered_points_in_space(self, rng):
        space = DataSpace(2, 100)
        points = clustered_points(space, 300, rng, clusters=4)
        assert len(points) == 300
        assert all(space.contains_point(p) for p in points)

    def test_clustered_points_actually_cluster(self, rng):
        space = DataSpace(2, 1000)
        points = clustered_points(space, 400, rng, clusters=2, spread=5.0)
        xs = sorted(p[0] for p in points)
        # Two tight clusters: the middle half of sorted xs spans far less
        # than uniform data would.
        assert xs[300] - xs[100] < 500

    def test_zero_clusters_rejected(self, rng):
        with pytest.raises(ParameterError):
            clustered_points(DataSpace(2, 10), 5, rng, clusters=0)

    def test_points_on_boundary(self):
        space = DataSpace(2, 20)
        circle = Circle.from_radius((10, 10), 5)
        pts = points_on_boundary(circle, space)
        assert pts  # 25 = 3²+4² = 0²+5² has lattice solutions
        assert all(point_on_boundary(p, circle) for p in pts)
        assert all(space.contains_point(p) for p in pts)

    def test_points_on_boundary_limit(self):
        space = DataSpace(2, 20)
        pts = points_on_boundary(Circle.from_radius((10, 10), 5), space, limit=3)
        assert len(pts) == 3

    def test_random_circle(self, rng):
        space = DataSpace(2, 50)
        circle = random_circle(space, 7, rng)
        assert circle.r_squared == 49
        assert space.contains_point(circle.center)

    def test_query_workload_margins(self, rng):
        space = DataSpace(2, 100)
        queries = query_workload(space, [5, 10], 20, rng)
        assert len(queries) == 40
        for q in queries:
            radius = q.integer_radius()
            assert all(radius <= c <= 99 - radius for c in q.center)


class TestBrightkite:
    def test_generation_shape(self, rng):
        checkins = generate_checkins(100, rng)
        assert len(checkins) == 100
        for c in checkins:
            assert -90 <= c.latitude <= 90
            assert -180 <= c.longitude <= 180

    def test_rounding(self):
        assert round_coordinate(46.52262, 4) == 46.5226
        assert round_coordinate(46.52262, 3) == 46.523
        with pytest.raises(ParameterError):
            round_coordinate(1.0, -1)

    def test_paper_integer_format(self, rng):
        # Paper: {46.5226, 14.8296} ↔ integers {465226, 148296} (we offset
        # to keep coordinates non-negative, preserving all distances).
        from repro.datasets.brightkite import CheckIn

        checkin = CheckIn(0, 46.5226, 14.8296)
        x, y = checkin_to_point(checkin, digits=4)
        assert x == round((46.5226 + 90) * 10_000) == 1365226
        assert y == round((14.8296 + 180) * 10_000) == 1948296

    def test_points_fit_data_space(self, rng):
        digits = 4
        space = data_space_for_digits(digits)
        for c in generate_checkins(50, rng):
            assert space.contains_point(checkin_to_point(c, digits))

    def test_rounding_shrinks_integers(self):
        from repro.datasets.brightkite import CheckIn

        checkin = CheckIn(0, 46.52262, 14.82961)
        p5 = checkin_to_point(checkin, 5)
        p4 = checkin_to_point(checkin, 4)
        assert p5[0] // 10 == p4[0] or abs(p5[0] - p4[0] * 10) <= 5

    def test_real_world_radius_paper_values(self):
        # Paper Table III: R = 10 at 4 digits ≈ 100 m; R = 1 at 3 digits
        # ≈ 100 m; R = 100 at 5 digits ≈ 100 m.
        assert real_world_radius_m(10, 4) == pytest.approx(111.32, rel=0.01)
        assert real_world_radius_m(1, 3) == pytest.approx(111.32, rel=0.01)
        assert real_world_radius_m(100, 5) == pytest.approx(111.32, rel=0.01)

    def test_radius_for_meters_inverts(self):
        for digits in (3, 4, 5):
            r = radius_for_meters(100.0, digits)
            assert real_world_radius_m(r, digits) >= 100.0
            assert real_world_radius_m(r - 1, digits) < 100.0 or r == 1

    def test_meters_per_unit_scales_by_ten(self):
        assert meters_per_unit(3) == pytest.approx(10 * meters_per_unit(4))

    def test_haversine_known_distance(self):
        # London → Paris ≈ 344 km.
        d = haversine_m(51.5074, -0.1278, 48.8566, 2.3522)
        assert d == pytest.approx(343_500, rel=0.02)

    def test_haversine_zero(self):
        assert haversine_m(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_haversine_close_to_grid_model(self):
        # One grid unit of latitude at 4 digits ≈ meters_per_unit(4).
        d = haversine_m(46.5226, 14.8296, 46.5227, 14.8296)
        assert d == pytest.approx(meters_per_unit(4), rel=0.01)

    def test_negative_inputs_rejected(self, rng):
        with pytest.raises(ParameterError):
            generate_checkins(-1, rng)
        with pytest.raises(ParameterError):
            radius_for_meters(-5, 4)
