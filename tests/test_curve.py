"""Tests for repro.crypto.groups.curve (the supersingular curve)."""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups.curve import INFINITY, Point, SupersingularCurve
from repro.errors import CryptoError

Q = 1000003  # ≡ 3 (mod 4)


@pytest.fixture(scope="module")
def curve() -> SupersingularCurve:
    return SupersingularCurve(Q)


@pytest.fixture(scope="module")
def sample_points(curve) -> list[Point]:
    rng = random.Random(77)
    return [curve.random_point(rng) for _ in range(8)]


class TestConstruction:
    def test_rejects_bad_field(self):
        with pytest.raises(CryptoError):
            SupersingularCurve(1000033)  # ≡ 1 (mod 4)

    def test_order_is_q_plus_one(self, curve):
        assert curve.order == Q + 1

    def test_random_points_on_curve(self, curve, sample_points):
        assert all(curve.contains(p) for p in sample_points)


class TestGroupLaw:
    def test_identity(self, curve, sample_points):
        p = sample_points[0]
        assert curve.add(p, INFINITY) == p
        assert curve.add(INFINITY, p) == p
        assert curve.add(INFINITY, INFINITY) == INFINITY

    def test_inverse(self, curve, sample_points):
        for p in sample_points:
            assert curve.add(p, curve.negate(p)) == INFINITY

    def test_commutativity(self, curve, sample_points):
        a, b = sample_points[0], sample_points[1]
        assert curve.add(a, b) == curve.add(b, a)

    def test_associativity(self, curve, sample_points):
        a, b, c = sample_points[:3]
        assert curve.add(curve.add(a, b), c) == curve.add(a, curve.add(b, c))

    def test_double_matches_add(self, curve, sample_points):
        for p in sample_points:
            assert curve.double(p) == curve.add(p, p)

    def test_closure(self, curve, sample_points):
        a, b = sample_points[2], sample_points[3]
        assert curve.contains(curve.add(a, b))
        assert curve.contains(curve.double(a))

    def test_two_torsion(self, curve):
        # (0, 0) is on y² = x³ + x and has y = 0, so it is 2-torsion.
        t = Point(0, 0)
        assert curve.contains(t)
        assert curve.double(t) == INFINITY


class TestScalarMultiplication:
    def test_small_scalars(self, curve, sample_points):
        p = sample_points[0]
        acc = INFINITY
        for k in range(6):
            assert curve.multiply(p, k) == acc
            acc = curve.add(acc, p)

    def test_group_order_annihilates(self, curve, sample_points):
        for p in sample_points[:3]:
            assert curve.multiply(p, curve.order) == INFINITY

    def test_negative_scalar(self, curve, sample_points):
        p = sample_points[0]
        assert curve.multiply(p, -3) == curve.negate(curve.multiply(p, 3))

    def test_distributes_over_scalar_addition(self, curve, sample_points):
        p = sample_points[1]
        a, b = 1234, 98765
        left = curve.multiply(p, a + b)
        right = curve.add(curve.multiply(p, a), curve.multiply(p, b))
        assert left == right


class TestCompression:
    def test_roundtrip(self, curve, sample_points):
        for p in sample_points:
            assert curve.decompress(curve.compress(p)) == p

    def test_infinity_roundtrip(self, curve):
        assert curve.decompress(curve.compress(INFINITY)) == INFINITY

    def test_length(self, curve, sample_points):
        expected = curve.compressed_byte_length()
        assert len(curve.compress(sample_points[0])) == expected

    def test_bad_tag_rejected(self, curve):
        data = bytearray(curve.compress(INFINITY))
        data[0] = 9
        with pytest.raises(CryptoError):
            curve.decompress(bytes(data))

    def test_off_curve_x_rejected(self, curve):
        # Find an x with non-residue RHS.
        size = curve.compressed_byte_length() - 1
        for x in range(2, 100):
            try:
                curve.decompress(bytes([0]) + x.to_bytes(size, "big"))
            except CryptoError:
                break
        else:
            pytest.fail("expected some x to be off-curve")

    def test_wrong_length_rejected(self, curve):
        with pytest.raises(CryptoError):
            curve.decompress(b"\x00" * 3)

    def test_out_of_range_x_rejected(self, curve):
        size = curve.compressed_byte_length() - 1
        with pytest.raises(CryptoError):
            curve.decompress(bytes([0]) + Q.to_bytes(size, "big"))


class TestPointHygiene:
    def test_immutability(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 5

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(2, 1)
        assert INFINITY == Point(infinite=True)
        assert hash(INFINITY) == hash(Point(infinite=True))
