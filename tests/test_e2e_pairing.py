"""End-to-end on the real curve backend at realistic payload size.

Everything else in the suite runs either the fast backend or the toy
pairing parameters; this file runs the full cloud protocol — upload, query,
fetch, delete — on the supersingular-curve backend with a 40-bit payload
prime (the size :func:`repro.crypto.groups.params.default_test_params`
recommends), end to end.  Slowest test in the suite by design.
"""

from __future__ import annotations

import random

import pytest

from repro.cloud.deployment import CloudDeployment
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import provision_group
from repro.crypto.groups.pairing import SupersingularPairingGroup


@pytest.fixture(scope="module")
def pairing_deployment():
    rng = random.Random(0xE2E)
    space = DataSpace(2, 64)
    group = provision_group(
        space.max_distance_squared() + 1,
        "pairing",
        rng,
        noise_bits=16,
    )
    assert isinstance(group, SupersingularPairingGroup)
    scheme = CRSE2Scheme(space, group)
    deployment = CloudDeployment.create(scheme, rng=rng)
    deployment.outsource(
        [(30, 30), (31, 31), (50, 10)],
        contents=[b"anna", b"bram", b"chloe"],
    )
    return deployment


class TestFullProtocolOnCurve:
    def test_query_and_fetch(self, pairing_deployment):
        response = pairing_deployment.query(Circle.from_radius((30, 30), 2))
        assert sorted(response.identifiers) == [0, 1]
        contents = pairing_deployment.user.fetch_contents(response.identifiers)
        assert set(contents.values()) == {b"anna", b"bram"}

    def test_radius_hiding_on_curve(self, pairing_deployment):
        response = pairing_deployment.query(
            Circle.from_radius((30, 30), 1), hide_radius_to=6
        )
        assert sorted(response.identifiers) == [0]
        assert pairing_deployment.server.log.sub_token_counts[-1] == 6

    def test_delete_then_requery(self, pairing_deployment):
        pairing_deployment.delete([1])
        response = pairing_deployment.query(Circle.from_radius((30, 30), 2))
        assert sorted(response.identifiers) == [0]

    def test_payload_prime_size_is_realistic(self, pairing_deployment):
        p2 = pairing_deployment.scheme.group.subgroup_primes[1]
        assert p2.bit_length() >= 40
