"""Seed-fixed property tests for partition-map invariants.

The partition map is the coordinator's source of truth: which partition
each record lives on, which R replicas serve each partition, and which
replicas owe a resync.  Rather than enumerating hand-picked membership
scenarios, these tests drive the map through long randomized (but
seed-fixed, hence reproducible) sequences of join / leave / replace /
assign / dirty / repair events and assert the structural invariants
after every single step:

* every partition has exactly R distinct replicas, and no replica
  serves two partitions (so no record is ever reachable through
  replicas of two different partitions);
* every assignment points at a live partition, and the id sets served
  by different partitions are disjoint;
* stale marks only ever name live replicas, and only cover ids of the
  replica's own partition;
* the map survives a serialization round-trip bit-for-bit, at any
  intermediate state.
"""

from __future__ import annotations

import random

import pytest

from repro.service.coordinator import PartitionMap

R_VALUES = (2, 3)
SEEDS = (0xA11CE, 0xB0B5EED, 0xC4FE12)
N_STEPS = 120


def _fresh_map(replication: int, counters: dict) -> PartitionMap:
    pmap = PartitionMap()
    for _ in range(2):
        _join(pmap, replication, counters)
    return pmap


def _next_addr(counters: dict) -> str:
    counters["addr"] += 1
    return f"10.0.0.{counters['addr'] // 1000}:{counters['addr'] % 1000}"


def _join(pmap: PartitionMap, replication: int, counters: dict) -> None:
    counters["pid"] += 1
    pmap.add_partition(
        f"p{counters['pid']}",
        [_next_addr(counters) for _ in range(replication)],
    )


def _assign(pmap: PartitionMap, rng: random.Random, counters: dict) -> None:
    # Least-loaded placement, the coordinator's upload rule.
    counts = {pid: 0 for pid in pmap.partitions}
    for pid in pmap.assignments.values():
        counts[pid] += 1
    for _ in range(rng.randrange(1, 6)):
        counters["record"] += 1
        pid = min(counts, key=lambda p: (counts[p], p))
        counts[pid] += 1
        pmap.assignments[counters["record"]] = pid


def _unassign(pmap: PartitionMap, rng: random.Random) -> None:
    ids = sorted(pmap.assignments)
    for identifier in rng.sample(ids, min(len(ids), rng.randrange(1, 4))):
        pid = pmap.assignments.pop(identifier)
        # Mirror the coordinator: a delete a replica missed stays on its
        # stale list until repair clears it, but marks never outlive the
        # partition's id ownership... clearing here models the ack path.
        for addr in pmap.replicas(pid):
            pmap.clear_dirty(addr, (identifier,))


def _leave(pmap: PartitionMap, rng: random.Random) -> None:
    if len(pmap.partitions) <= 1:
        return
    donor = rng.choice(sorted(pmap.partitions))
    survivors = sorted(set(pmap.partitions) - {donor})
    # Reconciliation moves every record off the departing partition
    # before the partition (and its replicas) leave the map.
    for identifier in pmap.ids_in(donor):
        pmap.assignments[identifier] = rng.choice(survivors)
    pmap.remove_partition(donor)


def _replace(pmap: PartitionMap, rng: random.Random, counters: dict) -> None:
    pid = rng.choice(sorted(pmap.partitions))
    old = rng.choice(list(pmap.replicas(pid)))
    new = _next_addr(counters)
    pmap.replace_replica(pid, old, new)
    # The newcomer is empty: it must owe the partition's full id set.
    assert pmap.dirty_on(new) == frozenset(pmap.ids_in(pid))


def _dirty(pmap: PartitionMap, rng: random.Random) -> None:
    pid = rng.choice(sorted(pmap.partitions))
    ids = pmap.ids_in(pid)
    if not ids:
        return
    addr = rng.choice(list(pmap.replicas(pid)))
    pmap.mark_dirty(addr, rng.sample(ids, rng.randrange(1, len(ids) + 1)))


def _repair(pmap: PartitionMap, rng: random.Random) -> None:
    dirty = sorted(addr for addr, ids in pmap.stale.items() if ids)
    if dirty:
        pmap.clear_dirty(rng.choice(dirty))


def _check_invariants(pmap: PartitionMap, replication: int) -> None:
    pmap.validate(replication)
    # Disjoint id ownership across partitions: each record is assigned
    # to exactly one pid, and validate() has pinned each replica to
    # exactly one pid — so cross-partition replica id sets must be
    # disjoint.
    seen: dict[int, str] = {}
    for pid in pmap.partitions:
        for identifier in pmap.ids_in(pid):
            assert identifier not in seen or seen[identifier] == pid
            seen[identifier] = pid
    assert len(seen) == len(pmap.assignments) == pmap.record_count
    # Stale marks only cover ids of the replica's own partition or ids
    # that no longer exist (a missed delete awaiting repair).
    for addr, ids in pmap.stale.items():
        pid = pmap.partition_of(addr)
        assert pid is not None
        for identifier in ids:
            owner = pmap.assignments.get(identifier)
            assert owner is None or owner == pid


@pytest.mark.parametrize("replication", R_VALUES)
@pytest.mark.parametrize("seed", SEEDS)
def test_partition_map_invariants_hold_under_membership_churn(
    replication, seed
):
    rng = random.Random(seed)
    counters = {"addr": 0, "pid": 0, "record": 0}
    pmap = _fresh_map(replication, counters)
    events = (
        ("assign", lambda: _assign(pmap, rng, counters)),
        ("assign", lambda: _assign(pmap, rng, counters)),
        ("unassign", lambda: _unassign(pmap, rng)),
        ("join", lambda: _join(pmap, replication, counters)),
        ("leave", lambda: _leave(pmap, rng)),
        ("replace", lambda: _replace(pmap, rng, counters)),
        ("dirty", lambda: _dirty(pmap, rng)),
        ("repair", lambda: _repair(pmap, rng)),
    )
    for step in range(N_STEPS):
        name, event = rng.choice(events)
        event()
        _check_invariants(pmap, replication)
        if step % 10 == 0:
            clone = PartitionMap.from_dict(pmap.to_dict())
            assert clone.to_dict() == pmap.to_dict()
            _check_invariants(clone, replication)


@pytest.mark.parametrize("replication", R_VALUES)
def test_partition_map_survives_disk_round_trip_mid_churn(
    tmp_path, replication
):
    rng = random.Random(0xD15C)
    counters = {"addr": 0, "pid": 0, "record": 0}
    pmap = _fresh_map(replication, counters)
    for _ in range(40):
        _assign(pmap, rng, counters)
        _replace(pmap, rng, counters)
        pmap.save(tmp_path)
        loaded = PartitionMap.load(tmp_path)
        assert loaded is not None
        assert loaded.to_dict() == pmap.to_dict()
        _check_invariants(loaded, replication)


def test_rejects_replica_serving_two_partitions():
    pmap = PartitionMap()
    pmap.add_partition("p0", ["a:1", "a:2"])
    with pytest.raises(Exception):
        pmap.add_partition("p1", ["a:2", "a:3"])
    pmap.add_partition("p1", ["a:3", "a:4"])
    with pytest.raises(Exception):
        pmap.replace_replica("p1", "a:3", "a:1")
    pmap.validate(2)
