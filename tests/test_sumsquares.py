"""Tests for repro.math.sumsquares — the GenConCircle number theory."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math.sumsquares import (
    all_two_square_representations,
    count_lattice_points_in_circle,
    is_sum_of_squares,
    is_sum_of_three_squares,
    is_sum_of_two_squares,
    lattice_points_on_circle,
    lattice_points_on_sphere,
    sums_of_squares_up_to,
    sums_of_two_squares_up_to,
    two_square_representation,
)


def _brute_two_squares(n: int) -> bool:
    a = 0
    while a * a <= n:
        b = math.isqrt(n - a * a)
        if a * a + b * b == n:
            return True
        a += 1
    return False


def _brute_k_squares(n: int, k: int) -> bool:
    if k == 1:
        r = math.isqrt(n)
        return r * r == n
    a = 0
    while a * a <= n:
        if _brute_k_squares(n - a * a, k - 1):
            return True
        a += 1
    return False


class TestTwoSquares:
    @given(st.integers(0, 3000))
    def test_matches_brute_force(self, n):
        assert is_sum_of_two_squares(n) == _brute_two_squares(n)

    def test_negative(self):
        assert not is_sum_of_two_squares(-1)

    def test_fermat_criterion_examples(self):
        assert is_sum_of_two_squares(2 * 5 * 13)  # all good primes
        assert not is_sum_of_two_squares(3)  # 3 ≡ 3 (mod 4), odd power
        assert is_sum_of_two_squares(9)  # 3², even power
        assert not is_sum_of_two_squares(3 * 5)


class TestThreeSquares:
    @given(st.integers(0, 2000))
    def test_matches_brute_force(self, n):
        assert is_sum_of_three_squares(n) == _brute_k_squares(n, 3)

    def test_legendre_forbidden_form(self):
        # n = 4^a (8b + 7) are exactly the non-representables.
        for a in range(3):
            for b in range(5):
                assert not is_sum_of_three_squares(4**a * (8 * b + 7))


class TestIsSumOfSquares:
    @given(st.integers(0, 500), st.integers(1, 5))
    def test_matches_brute_force(self, n, w):
        assert is_sum_of_squares(n, w) == _brute_k_squares(n, w)

    def test_lagrange_everything_at_four(self):
        assert all(is_sum_of_squares(n, 4) for n in range(200))

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            is_sum_of_squares(5, 0)


class TestEnumeration:
    @given(st.integers(-5, 2500))
    def test_sieve_matches_predicate(self, limit):
        listed = sums_of_two_squares_up_to(limit)
        assert listed == [
            n for n in range(max(limit, -1) + 1) if is_sum_of_two_squares(n)
        ]

    @given(st.integers(0, 300), st.integers(1, 5))
    def test_general_dimension(self, limit, w):
        listed = sums_of_squares_up_to(limit, w)
        assert listed == [n for n in range(limit + 1) if _brute_k_squares(n, w)]

    def test_paper_m_values(self):
        # Table I: m = 2, 4, 7 for R = 1, 2, 3; token-size math gives m(10)=44.
        assert len(sums_of_two_squares_up_to(1)) == 2
        assert len(sums_of_two_squares_up_to(4)) == 4
        assert len(sums_of_two_squares_up_to(9)) == 7
        assert len(sums_of_two_squares_up_to(100)) == 44

    def test_lagrange_count_is_r2_plus_1(self):
        # Paper Sec. VI-D: for w >= 4, m is exactly R² + 1.
        assert len(sums_of_squares_up_to(49, 4)) == 50
        assert len(sums_of_squares_up_to(49, 6)) == 50


class TestRepresentations:
    @given(st.integers(0, 5000))
    def test_constructive_when_representable(self, n):
        if is_sum_of_two_squares(n):
            a, b = two_square_representation(n)
            assert a * a + b * b == n and 0 <= a <= b
        else:
            with pytest.raises(ValueError):
                two_square_representation(n)

    def test_large_prime_one_mod_four(self):
        p = 1_000_033  # ≡ 1 (mod 4)
        a, b = two_square_representation(p)
        assert a * a + b * b == p

    def test_large_composite(self):
        n = 2**4 * 9 * 13 * 17 * 29
        a, b = two_square_representation(n)
        assert a * a + b * b == n

    @given(st.integers(0, 1000))
    def test_all_representations_complete(self, n):
        reps = all_two_square_representations(n)
        # Every listed pair works.
        assert all(a * a + b * b == n and a <= b for a, b in reps)
        # Completeness and non-emptiness match the predicate.
        assert bool(reps) == is_sum_of_two_squares(n)
        assert len(set(reps)) == len(reps)


class TestLatticePoints:
    def test_unit_circle(self):
        pts = lattice_points_on_circle((0, 0), 1)
        assert sorted(pts) == [(-1, 0), (0, -1), (0, 1), (1, 0)]

    def test_r_squared_25_has_twelve_points(self):
        # 25 = 0²+5² = 3²+4²: 4 + 8 signed variants.
        assert len(lattice_points_on_circle((0, 0), 25)) == 12

    def test_translation(self):
        base = lattice_points_on_circle((0, 0), 5)
        shifted = lattice_points_on_circle((10, -3), 5)
        assert sorted((x + 10, y - 3) for x, y in base) == shifted

    @given(st.integers(0, 400))
    def test_membership_exact(self, r_sq):
        pts = lattice_points_on_circle((0, 0), r_sq)
        assert all(x * x + y * y == r_sq for x, y in pts)

    def test_sphere_3d(self):
        pts = lattice_points_on_sphere((0, 0, 0), 1)
        assert len(pts) == 6
        pts = lattice_points_on_sphere((0, 0, 0), 3)
        assert len(pts) == 8  # (±1, ±1, ±1)

    def test_sphere_matches_circle_in_2d(self):
        assert lattice_points_on_sphere((2, 3), 25) == lattice_points_on_circle(
            (2, 3), 25
        )


class TestGaussCircle:
    @given(st.integers(0, 900))
    def test_count_matches_enumeration(self, r_sq):
        count = count_lattice_points_in_circle(r_sq)
        r = math.isqrt(r_sq)
        brute = sum(
            1
            for x in range(-r, r + 1)
            for y in range(-r, r + 1)
            if x * x + y * y <= r_sq
        )
        assert count == brute

    def test_negative(self):
        assert count_lattice_points_in_circle(-1) == 0
