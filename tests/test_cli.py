"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestWorkflow:
    def test_full_keygen_encrypt_token_search(self, tmp_path):
        key_file = tmp_path / "key.json"
        points_file = tmp_path / "points.csv"
        records_file = tmp_path / "records.txt"
        token_file = tmp_path / "token.bin"

        code, _ = run_cli(
            "keygen", "--size", "64", "--seed", "1", "--out", str(key_file)
        )
        assert code == 0 and key_file.exists()

        points_file.write_text("10,10\n50,50\n12,9\n")
        code, _ = run_cli(
            "encrypt",
            "--key", str(key_file),
            "--points", str(points_file),
            "--seed", "2",
            "--out", str(records_file),
        )
        assert code == 0
        assert len(records_file.read_text().splitlines()) == 3

        code, output = run_cli(
            "token",
            "--key", str(key_file),
            "--center", "11,10",
            "--radius", "3",
            "--seed", "3",
            "--out", str(token_file),
        )
        assert code == 0 and "7 sub-tokens" in output

        code, output = run_cli(
            "search",
            "--key", str(key_file),
            "--records", str(records_file),
            "--token", str(token_file),
        )
        assert code == 0
        assert "matches: [0, 2]" in output

    def test_token_with_radius_hiding(self, tmp_path):
        key_file = tmp_path / "key.json"
        token_file = tmp_path / "token.bin"
        run_cli("keygen", "--size", "64", "--seed", "1", "--out", str(key_file))
        code, output = run_cli(
            "token",
            "--key", str(key_file),
            "--center", "11,10",
            "--radius", "1",
            "--hide-to", "12",
            "--seed", "3",
            "--out", str(token_file),
        )
        assert code == 0 and "12 sub-tokens" in output


class TestInformational:
    def test_tables(self):
        code, output = run_cli("tables")
        assert code == 0
        assert "m = 44" in output  # R = 10
        assert "2097.28" in output  # Table II at R = 3
        assert "640" in output  # Fig. 13 ciphertext
        assert "28.16" in output  # Fig. 14 token

    def test_demo(self):
        code, output = run_cli("demo", "--seed", "7")
        assert code == 0
        assert "(50, 50)" in output and "(52, 51)" in output

    def test_calibrate_fast(self):
        code, output = run_cli("calibrate", "--backend", "fast")
        assert code == 0
        assert "FastCompositeGroup" in output
        assert "0.44" in output  # paper reference line


class TestErrors:
    def test_missing_key_file(self, tmp_path):
        code, _ = run_cli(
            "token",
            "--key", str(tmp_path / "nope.json"),
            "--center", "1,1",
            "--radius", "1",
            "--out", str(tmp_path / "t.bin"),
        )
        assert code == 1

    def test_malformed_key(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_bytes(b"not a key")
        code, _ = run_cli(
            "token",
            "--key", str(bad),
            "--center", "1,1",
            "--radius", "1",
            "--out", str(tmp_path / "t.bin"),
        )
        assert code == 1

    def test_out_of_space_query(self, tmp_path):
        key_file = tmp_path / "key.json"
        run_cli("keygen", "--size", "16", "--seed", "1", "--out", str(key_file))
        code, _ = run_cli(
            "token",
            "--key", str(key_file),
            "--center", "99,99",
            "--radius", "1",
            "--out", str(tmp_path / "t.bin"),
        )
        assert code == 1

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
