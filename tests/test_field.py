"""Tests for repro.crypto.groups.field (F_q² arithmetic)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.groups.field import Fq2

Q = 1000003  # prime, ≡ 3 (mod 4), so i² = -1 is a valid extension

elements = st.builds(
    lambda a, b: Fq2(Q, a, b), st.integers(0, Q - 1), st.integers(0, Q - 1)
)
nonzero = elements.filter(lambda e: not e.is_zero())


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(elements, elements, elements)
    def test_multiplication_associates_and_distributes(self, a, b, c):
        assert (a * b) * c == a * (b * c)
        assert a * (b + c) == a * b + a * c

    @given(elements)
    def test_additive_inverse(self, a):
        assert (a - a).is_zero()
        assert (a + (-a)).is_zero()

    @given(nonzero)
    def test_multiplicative_inverse(self, a):
        assert (a * a.inverse()).is_one()

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fq2.zero(Q).inverse()

    @given(elements)
    def test_square_matches_mul(self, a):
        assert a.square() == a * a


class TestExtensionStructure:
    def test_i_squared_is_minus_one(self):
        i = Fq2(Q, 0, 1)
        assert i * i == Fq2(Q, Q - 1, 0)

    @given(elements)
    def test_conjugate_is_frobenius(self, a):
        # a^q = conjugate(a) in F_q² when q ≡ 3 (mod 4).
        assert a**Q == a.conjugate()

    @given(elements)
    def test_norm_multiplicative(self, a):
        b = Fq2(Q, 12345, 678)
        assert (a * b).norm() == a.norm() * b.norm() % Q

    @given(nonzero)
    def test_fermat_in_extension(self, a):
        assert (a ** (Q * Q - 1)).is_one()


class TestPow:
    @given(nonzero, st.integers(0, 50))
    def test_matches_repeated_mul(self, a, e):
        expected = Fq2.one(Q)
        for _ in range(e):
            expected = expected * a
        assert a**e == expected

    @given(nonzero, st.integers(1, 50))
    def test_negative_exponent(self, a, e):
        assert a**-e == (a**e).inverse()


class TestHygiene:
    def test_immutable(self):
        a = Fq2(Q, 1, 2)
        with pytest.raises(AttributeError):
            a.real = 5

    def test_field_mismatch_raises(self):
        with pytest.raises(ValueError):
            Fq2(Q, 1, 1) + Fq2(7, 1, 1)

    def test_reduction_on_construction(self):
        a = Fq2(Q, Q + 5, -1)
        assert a.real == 5 and a.imag == Q - 1

    def test_hash_consistency(self):
        assert hash(Fq2(Q, 3, 4)) == hash(Fq2(Q, 3 + Q, 4 - Q))
