"""The multi-core search engine against the single-process reference.

Every test cross-checks :class:`repro.service.engine.SearchEngine` (real
worker processes, records resident per shard) against
:class:`repro.cloud.server.CloudServer.handle_search` on the same data —
the sharding must change wall-clock, never results or accounting.
"""

from __future__ import annotations

import random

import pytest

from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import SearchRequest, UploadDataset, UploadRecord
from repro.cloud.server import CloudServer
from repro.core.crse1 import CRSE1Scheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1, group_for_crse2
from repro.errors import (
    ParameterError,
    ProtocolError,
    SerializationError,
    ServiceError,
)
from repro.service.engine import SearchEngine
from repro.service.schemeio import restore_scheme, scheme_header


@pytest.fixture(scope="module")
def crse2_env():
    rng = random.Random(0xE27)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    # Cluster points near the query circle so matches are guaranteed.
    points = [(16, 16), (17, 17), (15, 18), (30, 2), (2, 30), (10, 10),
              (16, 19), (20, 16), (3, 3), (28, 28), (16, 13), (12, 16)]
    records = [
        (index, encode_ciphertext(scheme, scheme.encrypt(key, point, rng)))
        for index, point in enumerate(points)
    ]
    token = encode_token(
        scheme, scheme.gen_token(key, Circle.from_radius((16, 16), 3), rng)
    )
    return scheme, key, records, token


def _reference_search(scheme, records, token):
    server = CloudServer(scheme)
    server.handle_upload(
        UploadDataset(
            records=tuple(
                UploadRecord(identifier=i, payload=p) for i, p in records
            )
        )
    )
    response = server.handle_search(SearchRequest(payload=token))
    return sorted(response.identifiers), server.last_search_stats


class TestSchemeHeader:
    def test_crse2_roundtrip(self, crse2_env):
        scheme, _, _, _ = crse2_env
        restored = restore_scheme(scheme_header(scheme))
        assert isinstance(restored, CRSE2Scheme)
        assert restored.space == scheme.space
        assert restored.alpha == scheme.alpha
        assert (
            restored.group.subgroup_primes == scheme.group.subgroup_primes
        )

    def test_crse1_roundtrip(self):
        rng = random.Random(0xE28)
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space, group_for_crse1(space, 1, "fast", rng), r_squared=1
        )
        restored = restore_scheme(scheme_header(scheme))
        assert isinstance(restored, CRSE1Scheme)
        assert restored.r_squared == scheme.r_squared
        assert restored.m == scheme.m
        assert restored.alpha == scheme.alpha

    def test_unknown_kind_rejected(self, crse2_env):
        scheme, _, _, _ = crse2_env
        header = scheme_header(scheme)
        header["scheme"] = "crse9"
        with pytest.raises(SerializationError):
            restore_scheme(header)

    def test_malformed_header_rejected(self):
        with pytest.raises(SerializationError):
            restore_scheme({"scheme": "crse2"})


class TestEngine:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_reference(self, crse2_env, workers):
        scheme, _, records, token = crse2_env
        expected_ids, expected_stats = _reference_search(
            scheme, records, token
        )
        assert expected_ids, "fixture must produce matches"
        with SearchEngine(scheme, workers=workers) as engine:
            engine.load(records)
            assert engine.record_count == len(records)
            result = engine.search(token)
        assert list(result.identifiers) == expected_ids
        assert result.stats.records_scanned == len(records)
        assert result.stats.matches == len(expected_ids)
        # Early-exit sub-token accounting is invariant under sharding.
        assert (
            result.stats.sub_token_evaluations
            == expected_stats.sub_token_evaluations
        )
        assert len(result.stats.partitions) == workers
        assert result.stats.elapsed_ms == max(result.stats.partitions)

    def test_incremental_load_and_delete(self, crse2_env):
        scheme, _, records, token = crse2_env
        expected_ids, _ = _reference_search(scheme, records, token)
        with SearchEngine(scheme, workers=2) as engine:
            engine.load(records[:5])
            engine.load(records[5:])
            assert engine.record_count == len(records)
            removed = engine.delete([expected_ids[0], 9999])
            assert removed == 1
            assert engine.record_count == len(records) - 1
            result = engine.search(token)
        assert list(result.identifiers) == expected_ids[1:]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_search_batch_matches_sequential(self, crse2_env, workers):
        scheme, key, records, token = crse2_env
        rng = random.Random(0xBA7)
        tokens = [token] + [
            encode_token(
                scheme,
                scheme.gen_token(
                    key, Circle.from_radius(center, 2), rng
                ),
            )
            for center in [(16, 16), (30, 2), (8, 8)]
        ]
        with SearchEngine(scheme, workers=workers) as engine:
            engine.load(records)
            sequential = [engine.search(payload) for payload in tokens]
            batched = engine.search_batch(tokens)
        assert len(batched) == len(tokens)
        for one, many in zip(sequential, batched):
            assert many.identifiers == one.identifiers
            assert many.stats.records_scanned == one.stats.records_scanned
            assert (
                many.stats.sub_token_evaluations
                == one.stats.sub_token_evaluations
            )
            assert many.stats.matches == one.stats.matches
            assert len(many.stats.partitions) == workers

    def test_search_batch_empty_rejected(self, crse2_env):
        scheme, _, records, _ = crse2_env
        with SearchEngine(scheme, workers=1) as engine:
            engine.load(records[:2])
            with pytest.raises(ParameterError):
                engine.search_batch([])

    def test_crse1_supported(self):
        rng = random.Random(0xE29)
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space, group_for_crse1(space, 1, "fast", rng), r_squared=1
        )
        key = scheme.gen_key(rng)
        records = [
            (i, encode_ciphertext(scheme, scheme.encrypt(key, point, rng)))
            for i, point in enumerate([(3, 3), (3, 4), (6, 6)])
        ]
        token = encode_token(
            scheme, scheme.gen_token(key, Circle.from_radius((3, 3), 1), rng)
        )
        expected_ids, _ = _reference_search(scheme, records, token)
        with SearchEngine(scheme, workers=2) as engine:
            engine.load(records)
            result = engine.search(token)
        assert list(result.identifiers) == expected_ids

    def test_malformed_token_raises_typed_error(self, crse2_env):
        scheme, _, records, _ = crse2_env
        with SearchEngine(scheme, workers=1) as engine:
            engine.load(records[:2])
            with pytest.raises(ProtocolError):
                engine.search(b"\x00\x01junk-token-bytes")

    def test_zero_workers_rejected(self, crse2_env):
        scheme, _, _, _ = crse2_env
        with pytest.raises(ParameterError):
            SearchEngine(scheme, workers=0)

    def test_closed_engine_refuses_work(self, crse2_env):
        scheme, _, records, token = crse2_env
        engine = SearchEngine(scheme, workers=1)
        engine.warm_up()
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(ServiceError):
            engine.search(token)
        with pytest.raises(ServiceError):
            engine.load(records[:1])
