"""Tests for Circle Predicate Encryption (paper Sec. V)."""

from __future__ import annotations

import random

import pytest

from repro.core.cpe import CirclePredicateEncryption
from repro.core.geometry import Circle, DataSpace, point_on_boundary
from repro.core.provision import provision_group
from repro.errors import ParameterError, SchemeError


@pytest.fixture(scope="module")
def cpe_setup():
    rng = random.Random(21)
    space = DataSpace(2, 8)
    group = provision_group(space.boundary_value_bound(), "fast", rng)
    scheme = CirclePredicateEncryption(space, group)
    key = scheme.gen_key(rng)
    return scheme, key


class TestPaperExample:
    def test_fig5_boundary_and_off_boundary(self, cpe_setup, rng):
        scheme, key = cpe_setup
        q = Circle.from_radius((3, 2), 1)
        token = scheme.gen_token(key, q, rng)
        on = scheme.encrypt(key, (2, 2), rng)
        off = scheme.encrypt(key, (1, 3), rng)
        assert scheme.query(token, on) is True
        assert scheme.query(token, off) is False

    def test_inside_but_not_on_boundary_rejects(self, cpe_setup, rng):
        # CPE is strictly a boundary test: the center is NOT on the boundary.
        scheme, key = cpe_setup
        q = Circle.from_radius((3, 2), 1)
        token = scheme.gen_token(key, q, rng)
        center_ct = scheme.encrypt(key, (3, 2), rng)
        assert scheme.query(token, center_ct) is False


class TestExhaustiveCorrectness:
    def test_all_points_all_small_circles(self, cpe_setup, rng):
        scheme, key = cpe_setup
        space = scheme.space
        for r_sq in (0, 1, 2, 4, 5):
            q = Circle((3, 4), r_sq)
            token = scheme.gen_token(key, q, rng)
            for point in space.iter_points():
                got = scheme.query(token, scheme.encrypt(key, point, rng))
                assert got == point_on_boundary(point, q), (point, r_sq)

    def test_irrational_radius_circle(self, cpe_setup, rng):
        # r² = 2 has boundary points but no integer radius.
        scheme, key = cpe_setup
        q = Circle((4, 4), 2)
        token = scheme.gen_token(key, q, rng)
        assert scheme.query(token, scheme.encrypt(key, (5, 5), rng)) is True
        assert scheme.query(token, scheme.encrypt(key, (4, 4), rng)) is False

    def test_empty_boundary_circle(self, cpe_setup, rng):
        # r² = 3 is not a sum of two squares: nothing can match.
        scheme, key = cpe_setup
        q = Circle((4, 4), 3)
        token = scheme.gen_token(key, q, rng)
        for point in ((4, 4), (5, 5), (4, 6), (2, 3)):
            assert scheme.query(token, scheme.encrypt(key, point, rng)) is False


class TestHigherDimensions:
    def test_sphere_boundary_w3(self, rng):
        space = DataSpace(3, 6)
        group = provision_group(space.boundary_value_bound(), "fast", rng)
        scheme = CirclePredicateEncryption(space, group)
        key = scheme.gen_key(rng)
        assert scheme.alpha == 5
        q = Circle((2, 2, 2), 1)
        token = scheme.gen_token(key, q, rng)
        assert scheme.query(token, scheme.encrypt(key, (3, 2, 2), rng))
        assert not scheme.query(token, scheme.encrypt(key, (3, 3, 2), rng))


class TestValidation:
    def test_point_outside_space_rejected(self, cpe_setup, rng):
        scheme, key = cpe_setup
        with pytest.raises(ParameterError):
            scheme.encrypt(key, (9, 0), rng)

    def test_circle_outside_space_rejected(self, cpe_setup, rng):
        scheme, key = cpe_setup
        with pytest.raises(ParameterError):
            scheme.gen_token(key, Circle.from_radius((9, 0), 1), rng)

    def test_undersized_group_rejected(self, rng):
        space = DataSpace(2, 1 << 22)
        group = provision_group(100, "fast", rng)  # way too small
        with pytest.raises(SchemeError):
            CirclePredicateEncryption(space, group)

    def test_alpha_is_w_plus_2(self, cpe_setup):
        scheme, _ = cpe_setup
        assert scheme.alpha == 4
