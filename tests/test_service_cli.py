"""Subprocess smoke test for ``repro serve`` / ``repro query``.

This is the one test that exercises the real deployment shape: a serve
process on an ephemeral port, a query process dialing it over TCP, and a
SIGTERM drain — the same round-trip the CI smoke job performs.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest


def _repro(*argv: str, **kwargs) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        **kwargs,
    )


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A tiny key + encrypted records built through the real CLI."""
    root = tmp_path_factory.mktemp("service-cli")
    key = root / "demo.key"
    points = root / "points.csv"
    records = root / "records.txt"
    result = _repro(
        "keygen", "--size", "16", "--dims", "2", "--backend", "fast",
        "--seed", "11", "--out", str(key),
    )
    assert result.returncode == 0, result.stderr
    points.write_text("3,3\n3,4\n12,12\n14,2\n")
    result = _repro(
        "encrypt", "--key", str(key), "--points", str(points),
        "--seed", "12", "--out", str(records),
    )
    assert result.returncode == 0, result.stderr
    return key, records, root


def test_serve_query_sigterm_roundtrip(artifacts):
    key, records, root = artifacts
    port_file = root / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    serve = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--key", str(key), "--records", str(records),
            "--port", "0", "--port-file", str(port_file),
            "--workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists() and time.monotonic() < deadline:
            assert serve.poll() is None, serve.stdout.read()
            time.sleep(0.1)
        assert port_file.exists(), "serve never wrote its port file"
        port = port_file.read_text().strip()

        query = _repro(
            "query", "--key", str(key), "--center", "3,3", "--radius", "1",
            "--port", port, "--seed", "13", "--stats",
        )
        assert query.returncode == 0, query.stdout + query.stderr
        assert "matches: [0, 1]" in query.stdout
        assert "across 2 partition(s)" in query.stdout
        assert '"search"' in query.stdout  # the --stats metrics snapshot

        serve.send_signal(signal.SIGTERM)
        stdout, _ = serve.communicate(timeout=60)
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.communicate(timeout=30)
    assert serve.returncode == 0, stdout
    assert "preloaded 4 records" in stdout
    assert "drained, bye" in stdout
