"""Subprocess smoke test for ``repro serve`` / ``repro query``.

This is the one test that exercises the real deployment shape: a serve
process on an ephemeral port, a query process dialing it over TCP, and a
SIGTERM drain — the same round-trip the CI smoke job performs.  The
coordinator battery additionally pins the degraded-mode contract (a
killed shard means exit 1 plus the partial-results banner) and the
``--verify`` round trip.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time

import pytest


def _repro(*argv: str, **kwargs) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        **kwargs,
    )


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A tiny key + encrypted records built through the real CLI."""
    root = tmp_path_factory.mktemp("service-cli")
    key = root / "demo.key"
    points = root / "points.csv"
    records = root / "records.txt"
    result = _repro(
        "keygen", "--size", "16", "--dims", "2", "--backend", "fast",
        "--seed", "11", "--out", str(key),
    )
    assert result.returncode == 0, result.stderr
    points.write_text("3,3\n3,4\n12,12\n14,2\n")
    result = _repro(
        "encrypt", "--key", str(key), "--points", str(points),
        "--seed", "12", "--out", str(records),
    )
    assert result.returncode == 0, result.stderr
    return key, records, root


def test_serve_query_sigterm_roundtrip(artifacts):
    key, records, root = artifacts
    port_file = root / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    serve = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--key", str(key), "--records", str(records),
            "--port", "0", "--port-file", str(port_file),
            "--workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        deadline = time.monotonic() + 60
        while not port_file.exists() and time.monotonic() < deadline:
            assert serve.poll() is None, serve.stdout.read()
            time.sleep(0.1)
        assert port_file.exists(), "serve never wrote its port file"
        port = port_file.read_text().strip()

        query = _repro(
            "query", "--key", str(key), "--center", "3,3", "--radius", "1",
            "--port", port, "--seed", "13", "--stats",
        )
        assert query.returncode == 0, query.stdout + query.stderr
        assert "matches: [0, 1]" in query.stdout
        assert "across 2 partition(s)" in query.stdout
        assert '"search"' in query.stdout  # the --stats metrics snapshot

        serve.send_signal(signal.SIGTERM)
        stdout, _ = serve.communicate(timeout=60)
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.communicate(timeout=30)
    assert serve.returncode == 0, stdout
    assert "preloaded 4 records" in stdout
    assert "drained, bye" in stdout


def _spawn(argv: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _await_port(proc: subprocess.Popen, port_file, what: str) -> str:
    deadline = time.monotonic() + 60
    while not port_file.exists() and time.monotonic() < deadline:
        assert proc.poll() is None, f"{what} died: {proc.stdout.read()}"
        time.sleep(0.1)
    assert port_file.exists(), f"{what} never wrote its port file"
    return port_file.read_text().strip()


def _reap(proc: subprocess.Popen) -> None:
    # wait(), not communicate(): a SIGKILLed serve can leave worker
    # children holding the stdout pipe open, and draining it would hang.
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30)
    if proc.stdout is not None:
        proc.stdout.close()


def test_coordinator_verify_and_partial_results(artifacts):
    """Verified queries work through the coordinator; a killed shard
    degrades to exit 1 with the partial-results banner."""
    key, records, root = artifacts
    shards = []
    coordinator = None
    try:
        ports = []
        for index in range(2):
            port_file = root / f"shard{index}.port"
            proc = _spawn(
                [
                    "serve", "--key", str(key), "--port", "0",
                    "--port-file", str(port_file), "--workers", "1",
                ]
            )
            shards.append(proc)
            ports.append(_await_port(proc, port_file, f"shard {index}"))
        coord_port_file = root / "coord.port"
        coordinator = _spawn(
            [
                "coordinate",
                "--shard", f"127.0.0.1:{ports[0]}",
                "--shard", f"127.0.0.1:{ports[1]}",
                "--port", "0", "--port-file", str(coord_port_file),
            ]
        )
        coord_port = _await_port(coordinator, coord_port_file, "coordinator")

        upload = _repro(
            "query", "--key", str(key), "--upload", str(records),
            "--port", coord_port, "--via-coordinator",
        )
        assert upload.returncode == 0, upload.stdout + upload.stderr
        assert "uploaded 4 records" in upload.stdout

        verified = _repro(
            "query", "--key", str(key), "--center", "3,3", "--radius", "1",
            "--port", coord_port, "--seed", "13", "--verify",
        )
        assert verified.returncode == 0, verified.stdout + verified.stderr
        assert "matches: [0, 1]" in verified.stdout
        assert re.search(
            r"verified: 2 match\(es\) attested across 2 shard proof\(s\)",
            verified.stdout,
        ), verified.stdout

        # SIGKILL one shard: no drain, no goodbye — the coordinator must
        # degrade loudly, not lie by omission.
        shards[0].kill()
        shards[0].wait(timeout=30)
        partial = _repro(
            "query", "--key", str(key), "--center", "3,3", "--radius", "1",
            "--port", coord_port, "--seed", "13", "--via-coordinator",
        )
        assert partial.returncode == 1, partial.stdout + partial.stderr
        assert re.search(
            r"partial matches: .*\(from 1 of 2 shards\)", partial.stdout
        ), partial.stdout
        assert "error: search lost shard(s)" in partial.stderr, partial.stderr
    finally:
        if coordinator is not None:
            _reap(coordinator)
        for proc in shards:
            _reap(proc)


def test_loadtest_closed_loop_roundtrip(artifacts):
    key, records, root = artifacts
    port_file = root / "loadtest-port"
    serve = _spawn(
        [
            "serve", "--key", str(key), "--records", str(records),
            "--port", "0", "--port-file", str(port_file),
        ]
    )
    try:
        port = _await_port(serve, port_file, "serve")

        run = _repro(
            "loadtest", "--key", str(key), "--port", port,
            "--queries", "20", "--mode", "closed",
            "--concurrency", "4", "--seed", "17",
        )
        assert run.returncode == 0, run.stdout + run.stderr
        first = run.stdout.splitlines()
        assert any("failed=0" in line for line in first), run.stdout
        assert any("ok=20" in line for line in first), run.stdout
        assert "qps=" in run.stdout
        assert "latency_ms p50=" in run.stdout

        sweep = _repro(
            "loadtest", "--key", str(key), "--port", port,
            "--queries", "12", "--mode", "sweep", "--levels", "1,3",
            "--seed", "18",
        )
        assert sweep.returncode == 0, sweep.stdout + sweep.stderr
        # The sweep table has a header plus one row per level.
        assert re.search(r"^\s*conc\s+qps", sweep.stdout, re.M), sweep.stdout
        assert re.search(r"^\s+1\s", sweep.stdout, re.M)
        assert re.search(r"^\s+3\s", sweep.stdout, re.M)

        serve.send_signal(signal.SIGTERM)
        stdout, _ = serve.communicate(timeout=60)
        assert "drained, bye" in stdout
    finally:
        _reap(serve)
