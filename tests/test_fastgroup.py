"""Tests for the fast algebraic backend, including pairing-backend agreement."""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.params import toy_params
from repro.errors import CryptoError, SerializationError

PRIMES = (101, 103, 107, 109)


@pytest.fixture(scope="module")
def group() -> FastCompositeGroup:
    return FastCompositeGroup(PRIMES)


class TestConstruction:
    def test_order(self, group):
        assert group.order == 101 * 103 * 107 * 109

    def test_duplicate_primes_rejected(self):
        with pytest.raises(CryptoError):
            FastCompositeGroup((101, 101, 103, 107))


class TestAlgebra:
    def test_bilinearity(self, group, rng):
        g = group.generator()
        base = group.pair(g, g)
        for _ in range(5):
            a = rng.randrange(group.order)
            b = rng.randrange(group.order)
            assert group.pair(g**a, g**b) == base ** (a * b)

    def test_orthogonality(self, group):
        for i in range(4):
            for j in range(4):
                e = group.pair(
                    group.subgroup_generator(i), group.subgroup_generator(j)
                )
                assert e.is_identity() == (i != j)

    def test_subgroup_orders(self, group):
        for index, prime in enumerate(PRIMES):
            assert (group.subgroup_generator(index) ** prime).is_identity()

    def test_inverse(self, group, rng):
        a = group.generator() ** rng.randrange(1, group.order)
        assert (a * ~a).is_identity()

    def test_gt_operations(self, group):
        e = group.pair(group.generator(), group.generator())
        assert (e**group.order).is_identity()
        assert e * group.gt_identity() == e


class TestSerialization:
    def test_roundtrip(self, group, rng):
        element = group.generator() ** rng.randrange(group.order)
        data = group.serialize_element(element)
        assert len(data) == group.element_byte_length
        assert group.deserialize_element(data) == element

    def test_bad_length(self, group):
        with pytest.raises(SerializationError):
            group.deserialize_element(b"\x00")

    def test_out_of_range(self, group):
        data = (group.order + 1).to_bytes(group.element_byte_length, "big")
        with pytest.raises(SerializationError):
            group.deserialize_element(data)

    def test_foreign_element_rejected(self, group):
        other = FastCompositeGroup((113, 127, 131, 137))
        with pytest.raises(SerializationError):
            group.serialize_element(other.generator())


class TestBackendAgreement:
    """The fast backend must be observationally identical to the curve."""

    def test_pairing_identity_pattern_matches(self, pairing_group):
        fast = FastCompositeGroup(toy_params().subgroup_primes)
        rng = random.Random(2024)
        g_fast = fast.generator()
        g_real = pairing_group.generator()
        for _ in range(6):
            a = rng.randrange(fast.order)
            b = rng.randrange(fast.order)
            c = rng.randrange(fast.order)
            # e(g^a, g^b) == e(g, g)^c  iff  ab ≡ c (mod N) on both backends.
            fast_eq = fast.pair(g_fast**a, g_fast**b) == fast.pair(
                g_fast, g_fast
            ) ** c
            real_eq = pairing_group.pair(
                g_real**a, g_real**b
            ) == pairing_group.pair(g_real, g_real) ** c
            assert fast_eq == real_eq == ((a * b - c) % fast.order == 0)

    def test_element_equality_pattern_matches(self, pairing_group):
        fast = FastCompositeGroup(toy_params().subgroup_primes)
        n = fast.order
        for a, b in ((5, 5 + n), (7, 7), (3, 4)):
            assert (fast.generator() ** a == fast.generator() ** b) == (
                pairing_group.generator() ** a == pairing_group.generator() ** b
            )
