"""Tests for the reporting helpers (repro.analysis.report)."""

from __future__ import annotations

import pytest

from repro.analysis.report import Series, TextTable, format_series_block


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable("Table I", ["R", "m", "Enc"])
        table.add_row(1, 2, 0.015)
        table.add_row(3, 7, 3.09)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Table I"
        assert "R" in lines[1] and "Enc" in lines[1]
        assert len(lines) == 5
        # All data rows equal width.
        assert len(lines[3]) == len(lines[4])

    def test_arity_check(self):
        table = TextTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = TextTable("t", ["v"])
        table.add_row(0.00012345)
        table.add_row(1234567.0)
        table.add_row(0.5)
        table.add_row(0.0)
        text = table.render()
        assert "0.000123" in text
        assert "1.23e+06" in text
        assert "0.5" in text


class TestSeries:
    def test_add(self):
        s = Series("m")
        s.add(1, 2)
        s.add(2, 4)
        assert s.x == [1, 2] and s.y == [2, 4]

    def test_format_block(self):
        a = Series("m")
        b = Series("R²")
        for r in (1, 2, 3):
            a.add(r, r + 1)
            b.add(r, r * r)
        text = format_series_block("Fig. 9", [a, b])
        assert "Fig. 9" in text
        assert "R²" in text
        assert "9" in text

    def test_empty(self):
        assert format_series_block("empty", []) == "empty"

    def test_ragged_series_padded(self):
        a = Series("a")
        b = Series("b")
        a.add(1, 10)
        a.add(2, 20)
        b.add(1, 5)
        text = format_series_block("fig", [a, b])
        assert "nan" in text
