"""Tests for plaintext baselines: linear scan, grid, k-d tree, R-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kdtree import KDTree
from repro.baselines.plaintext import GridIndex, linear_circular_search
from repro.baselines.rtree import Rect, RTree
from repro.core.geometry import Circle, distance_squared, point_in_circle
from repro.errors import ParameterError


def _random_points(n: int, t: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    return [(rng.randrange(t), rng.randrange(t)) for _ in range(n)]


class TestLinearScan:
    def test_matches_predicate(self):
        points = _random_points(100, 50, 1)
        q = Circle.from_radius((25, 25), 10)
        result = linear_circular_search(points, q)
        assert result == [p for p in points if point_in_circle(p, q)]


class TestGridIndex:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 100),
        cell=st.integers(1, 16),
        radius=st.integers(0, 20),
    )
    def test_matches_linear(self, seed, cell, radius):
        points = _random_points(80, 64, seed)
        grid = GridIndex(points, cell_size=cell)
        q = Circle.from_radius((32, 32), radius)
        assert sorted(grid.query(q)) == sorted(linear_circular_search(points, q))

    def test_len(self):
        assert len(GridIndex(_random_points(17, 10, 2))) == 17

    def test_bad_cell_size(self):
        with pytest.raises(ParameterError):
            GridIndex([], cell_size=0)


class TestKDTree:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100), radius=st.integers(0, 20))
    def test_range_matches_linear(self, seed, radius):
        points = _random_points(60, 64, seed)
        tree = KDTree(points)
        q = Circle.from_radius((30, 30), radius)
        assert sorted(tree.range_query(q)) == sorted(
            linear_circular_search(points, q)
        )

    def test_empty_tree(self):
        tree = KDTree([])
        assert len(tree) == 0
        assert tree.range_query(Circle.from_radius((0, 0), 5)) == []

    @given(seed=st.integers(0, 50), k=st.integers(1, 10))
    def test_knn_matches_brute_force(self, seed, k):
        points = _random_points(40, 32, seed)
        tree = KDTree(points)
        query = (16, 16)
        got = tree.nearest(query, k)
        got_dists = sorted(distance_squared(p, query) for p in got)
        brute = sorted(distance_squared(p, query) for p in points)[:k]
        assert got_dists == brute

    def test_knn_vs_circular_search_semantics(self):
        # Related Work: kNN fixes the result count, circular search fixes
        # the radius — different questions, different answers.
        points = [(0, 0), (1, 0), (10, 10), (11, 10)]
        tree = KDTree(points)
        knn = tree.nearest((0, 1), k=3)
        circ = tree.range_query(Circle.from_radius((0, 1), 2))
        assert len(knn) == 3
        assert sorted(circ) == [(0, 0), (1, 0)]  # only 2 within radius

    def test_knn_validation(self):
        tree = KDTree([(1, 2)])
        with pytest.raises(ParameterError):
            tree.nearest((0, 0), k=0)
        with pytest.raises(ParameterError):
            tree.nearest((0, 0, 0), k=1)

    def test_dimension_mismatch_at_build(self):
        with pytest.raises(ParameterError):
            KDTree([(1, 2), (1, 2, 3)])


class TestRect:
    def test_union(self):
        r = Rect.union([Rect.of_point((0, 5)), Rect.of_point((3, 1))])
        assert r.mins == (0, 1) and r.maxs == (3, 5)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            Rect((2, 2), (1, 3))
        with pytest.raises(ParameterError):
            Rect.union([])

    def test_min_distance_squared(self):
        r = Rect((0, 0), (10, 10))
        assert r.min_distance_squared((5, 5)) == 0  # inside
        assert r.min_distance_squared((13, 5)) == 9  # right of box
        assert r.min_distance_squared((-3, -4)) == 25  # corner

    def test_intersects_circle(self):
        r = Rect((0, 0), (10, 10))
        assert r.intersects_circle(Circle.from_radius((15, 5), 5))
        assert not r.intersects_circle(Circle.from_radius((15, 5), 4))
        assert r.intersects_circle(Circle.from_radius((5, 5), 0))

    def test_contains_point(self):
        r = Rect((0, 0), (2, 2))
        assert r.contains_point((0, 2))
        assert not r.contains_point((3, 0))


class TestRTree:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 100),
        radius=st.integers(0, 25),
        capacity=st.integers(2, 20),
    )
    def test_matches_linear(self, seed, radius, capacity):
        points = _random_points(90, 64, seed)
        tree = RTree(points, leaf_capacity=capacity)
        q = Circle.from_radius((30, 30), radius)
        results, _ = tree.range_query(q)
        assert sorted(results) == sorted(linear_circular_search(points, q))

    def test_pruning_beats_linear_for_small_queries(self):
        points = _random_points(2000, 512, 7)
        tree = RTree(points, leaf_capacity=16)
        q = Circle.from_radius((256, 256), 10)
        _, stats = tree.range_query(q)
        # The intersects-circle test must prune most of the dataset.
        assert stats.points_tested < tree.linear_scan_cost() / 4

    def test_empty(self):
        tree = RTree([])
        results, stats = tree.range_query(Circle.from_radius((0, 0), 3))
        assert results == [] and stats.points_tested == 0

    def test_bad_capacity(self):
        with pytest.raises(ParameterError):
            RTree([], leaf_capacity=1)
