"""Tests for the pairing hot-path optimizations.

Every optimized path is pinned to its naive reference implementation:
wNAF/Jacobian scalar multiplication against double-and-add, fixed-base
tables against plain multiplication, and the shared-final-exponentiation
product of pairings against the per-pair product.  A full SSW differential
run checks that the two group backends still agree on match decisions with
all optimizations enabled.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.groups.base import CompositeBilinearGroup
from repro.crypto.groups.curve import (
    INFINITY,
    FixedBaseTable,
    Point,
)
from repro.crypto.groups.fastgroup import FastCompositeGroup
from repro.crypto.groups.pairing import (
    SupersingularPairingGroup,
    product_tate_pairing,
    reduced_tate_pairing,
)
from repro.crypto.groups.params import toy_params
from repro.crypto.ssw import (
    ssw_encrypt,
    ssw_gen_token,
    ssw_query,
    ssw_setup,
)
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def group() -> SupersingularPairingGroup:
    return SupersingularPairingGroup(toy_params())


@pytest.fixture(scope="module")
def fast() -> FastCompositeGroup:
    return FastCompositeGroup(toy_params().subgroup_primes)


class TestScalarMultiplication:
    def test_random_scalars_match_naive(self, group, rng):
        curve = group.curve
        order = curve.order
        point = group.generator().point
        for _ in range(50):
            k = rng.randrange(0, 2 * order)
            assert curve.multiply(point, k) == curve.multiply_naive(point, k)

    def test_edge_scalars(self, group):
        curve = group.curve
        order = curve.order
        point = group.generator().point
        for k in (0, 1, 2, 3, order - 1, order, order + 1, -1, -17, -order):
            assert curve.multiply(point, k) == curve.multiply_naive(point, k)

    def test_infinity_input(self, group, rng):
        curve = group.curve
        assert curve.multiply(INFINITY, rng.randrange(1, curve.order)) == INFINITY

    def test_two_torsion_point(self, group):
        # (0, 0) lies on y² = x³ + x and is its own negative: 2·P = ∞.
        curve = group.curve
        torsion = Point(0, 0)
        assert curve.contains(torsion)
        for k in range(5):
            assert curve.multiply(torsion, k) == curve.multiply_naive(torsion, k)

    def test_random_points(self, group, rng):
        curve = group.curve
        for _ in range(10):
            point = curve.random_point(rng)
            k = rng.randrange(0, curve.order)
            assert curve.multiply(point, k) == curve.multiply_naive(point, k)


class TestFixedBaseTable:
    def test_matches_naive(self, group, rng):
        curve = group.curve
        point = group.generator().point
        bits = group.order.bit_length()
        table = FixedBaseTable(curve, point, bits)
        for _ in range(50):
            k = rng.randrange(0, group.order)
            assert table.multiply(k) == curve.multiply_naive(point, k)

    def test_edge_scalars(self, group):
        curve = group.curve
        point = group.generator().point
        bits = group.order.bit_length()
        table = FixedBaseTable(curve, point, bits)
        for k in (0, 1, 2, group.order - 1, (1 << bits) - 1):
            assert table.multiply(k) == curve.multiply_naive(point, k)

    def test_rejects_out_of_range_scalars(self, group):
        table = FixedBaseTable(
            group.curve, group.generator().point, group.order.bit_length()
        )
        with pytest.raises(CryptoError):
            table.multiply(-1)
        with pytest.raises(CryptoError):
            table.multiply(1 << (group.order.bit_length() + 1))

    def test_precompute_base_feeds_pow(self, group, rng):
        # After precompute_base, __pow__ must route through the table and
        # keep producing exactly the same elements.
        element = group.generator() ** 7
        before = [element ** k for k in (0, 1, 5, group.order - 1)]
        assert group.precompute_base(element) is True
        assert group.precompute_base(element) is False  # cached
        after = [element ** k for k in (0, 1, 5, group.order - 1)]
        assert before == after
        for _ in range(20):
            k = rng.randrange(0, group.order)
            assert (element ** k).point == group.curve.multiply_naive(
                element.point, k
            )

    def test_precompute_base_rejects_foreign_element(self, group, fast):
        with pytest.raises(CryptoError):
            group.precompute_base(fast.generator())

    def test_fast_backend_has_no_tables(self, fast):
        assert fast.precompute_base(fast.generator()) is False


class TestProductOfPairings:
    def _sample_pairs(self, group, rng, count):
        g = group.generator()
        return [
            (g ** rng.randrange(1, group.order), g ** rng.randrange(1, group.order))
            for _ in range(count)
        ]

    @pytest.mark.parametrize("backend", ["fast", "group"])
    @pytest.mark.parametrize("count", [1, 2, 5])
    def test_matches_per_pair_product(self, backend, count, rng, request):
        grp = request.getfixturevalue(backend)
        pairs = self._sample_pairs(grp, rng, count)
        product = grp.gt_identity()
        for a, b in pairs:
            product = product * grp.pair(a, b)
        assert grp.multi_pair(pairs) == product

    @pytest.mark.parametrize("backend", ["fast", "group"])
    def test_empty_product_is_identity(self, backend, request):
        grp = request.getfixturevalue(backend)
        assert grp.multi_pair([]).is_identity()

    def test_identity_arguments(self, group, rng):
        g = group.generator()
        pairs = [(group.identity(), g), (g, group.identity())]
        assert group.multi_pair(pairs).is_identity()
        mixed = pairs + self._sample_pairs(group, rng, 2)
        expected = group.pair(*mixed[2]) * group.pair(*mixed[3])
        assert group.multi_pair(mixed) == expected

    def test_base_class_default_agrees(self, group, rng):
        # The unbound base-class implementation (per-pair reduction) is the
        # ablation reference — it must compute the same product.
        pairs = self._sample_pairs(group, rng, 3)
        assert CompositeBilinearGroup.multi_pair(group, pairs) == group.multi_pair(
            pairs
        )

    def test_product_tate_matches_reduced_tate(self, group, rng):
        curve, params = group.curve, group.params
        order = params.group_order
        pairs = [
            (a.point, b.point) for a, b in self._sample_pairs(group, rng, 4)
        ]
        expected = reduced_tate_pairing(
            curve, pairs[0][0], pairs[0][1], order, params.cofactor
        )
        for a, b in pairs[1:]:
            expected = expected * reduced_tate_pairing(
                curve, a, b, order, params.cofactor
            )
        assert (
            product_tate_pairing(curve, pairs, order, params.cofactor) == expected
        )

    @pytest.mark.parametrize("backend", ["fast", "group"])
    def test_rejects_foreign_elements(self, backend, request):
        grp = request.getfixturevalue(backend)
        if isinstance(grp, FastCompositeGroup):
            other = FastCompositeGroup(toy_params(seed=2).subgroup_primes)
        else:
            other = SupersingularPairingGroup(toy_params(seed=2))
        good = (grp.generator(), grp.generator())
        bad = (grp.generator(), other.generator())
        with pytest.raises(CryptoError):
            grp.multi_pair([good, bad])

    def test_rejects_non_elements(self, group):
        with pytest.raises(CryptoError):
            group.multi_pair([(group.generator(), object())])


class TestSSWCrossGroupRejection:
    @pytest.mark.parametrize("backend", ["fast", "pairing"])
    def test_token_and_ciphertext_from_different_groups(self, backend):
        if backend == "fast":
            g1 = FastCompositeGroup(toy_params().subgroup_primes)
            g2 = FastCompositeGroup(toy_params(seed=2).subgroup_primes)
        else:
            g1 = SupersingularPairingGroup(toy_params())
            g2 = SupersingularPairingGroup(toy_params(seed=2))
        key1 = ssw_setup(g1, 2, random.Random(1))
        key2 = ssw_setup(g2, 2, random.Random(1))
        ct = ssw_encrypt(key1, [1, 2], random.Random(2))
        tk = ssw_gen_token(key2, [2, -1], random.Random(3))
        with pytest.raises(CryptoError, match="different groups"):
            ssw_query(tk, ct)


class TestBackendDifferential:
    def test_ssw_match_decisions_agree(self, group, fast):
        """Full SSW runs on both backends must yield identical decisions."""
        n = 3
        cases = [
            ([1, 2, 3], [3, 0, -1], True),  # ⟨x, v⟩ = 0
            ([1, 2, 3], [1, 1, 1], False),
            ([5, 0, 2], [2, 7, -5], True),
            ([0, 0, 0], [4, 5, 6], True),
            ([1, 1, 1], [1, -1, 1], False),
        ]
        for seed, (x, v, expected) in enumerate(cases):
            decisions = []
            for backend in (group, fast):
                key = ssw_setup(backend, n, random.Random(100 + seed))
                ct = ssw_encrypt(key, x, random.Random(200 + seed))
                tk = ssw_gen_token(key, v, random.Random(300 + seed))
                decisions.append(ssw_query(tk, ct))
            assert decisions[0] == decisions[1] == expected, (x, v)
