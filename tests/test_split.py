"""Tests for the Split algorithm (repro.core.split)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.split import (
    naive_alpha,
    optimized_alpha,
    split_boundary,
    split_product,
)
from repro.errors import ParameterError


def _inner(u: list[int], v: list[int]) -> int:
    return sum(a * b for a, b in zip(u, v))


class TestBoundarySplit:
    def test_paper_eq4_vectors(self):
        # D = (2,2), Q = {(3,2),1}: u = (8,-4,-4,1), v = (1,3,2,12).
        sf = split_boundary(2)
        assert sf.alpha == 4
        assert sf.f_u((2, 2)) == [8, -4, -4, 1]
        assert sf.f_v((3, 2), [1]) == [1, 3, 2, 12]

    def test_paper_cpe_example_products(self):
        sf = split_boundary(2)
        v = sf.f_v((3, 2), [1])
        assert _inner(sf.f_u((2, 2)), v) == 0  # on boundary
        assert _inner(sf.f_u((1, 3)), v) == 4  # paper: u'∘v = 4

    def test_three_dimensions_eq_section5(self):
        # f_u = (x²+y²+z², -2x, -2y, -2z, 1), f_v = (1, xc, yc, zc, Σc²-r²).
        sf = split_boundary(3)
        assert sf.alpha == 5
        assert sf.f_u((1, 2, 3)) == [14, -2, -4, -6, 1]
        assert sf.f_v((0, 0, 1), [4]) == [1, 0, 0, 1, -3]

    @given(
        st.tuples(st.integers(-10, 10), st.integers(-10, 10)),
        st.tuples(st.integers(-10, 10), st.integers(-10, 10)),
        st.integers(0, 50),
    )
    def test_inner_product_equals_polynomial(self, d, c, r_sq):
        sf = split_boundary(2)
        expected = sum((x - cc) ** 2 for x, cc in zip(d, c)) - r_sq
        assert _inner(sf.f_u(d), sf.f_v(c, [r_sq])) == expected


class TestProductSplit:
    def test_paper_eq5_naive_alpha(self):
        # Eq. 5: m = 2, w = 2 → 16 terms naive, 10 optimized.
        assert naive_alpha(2, 2) == 16
        assert optimized_alpha(2, 2) == 10
        assert split_product(2, 2, optimize=False).alpha == 16
        assert split_product(2, 2, optimize=True).alpha == 10

    def test_paper_eq5_u_vector_multiset(self):
        # The naive split's u-vector for D = (2,2) matches Eq. 5 as a
        # multiset (the paper fixes one term order; any consistent order
        # is a valid split).
        sf = split_product(2, 2, optimize=False)
        paper_u = [64, -32, -32, 8, -32, 16, 16, -4, -32, 16, 16, -4, 8, -4, -4, 1]
        assert sorted(sf.f_u((2, 2))) == sorted(paper_u)

    def test_paper_crse1_example(self):
        # Q = {(3,2),1}: r² ∈ {0,1}.  D = (2,2) inside → 0; D' = (1,3) → 20.
        sf = split_product(2, 2, optimize=False)
        v = sf.f_v((3, 2), [0, 1])
        assert _inner(sf.f_u((2, 2)), v) == 0
        assert _inner(sf.f_u((1, 3)), v) == 20

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(1, 4),
        optimize=st.booleans(),
        d=st.tuples(st.integers(-8, 8), st.integers(-8, 8)),
        c=st.tuples(st.integers(0, 8), st.integers(0, 8)),
        data=st.data(),
    )
    def test_split_correctness_property(self, m, optimize, d, c, data):
        radii = data.draw(
            st.lists(st.integers(0, 30), min_size=m, max_size=m)
        )
        sf = split_product(2, m, optimize=optimize)
        got = _inner(sf.f_u(d), sf.f_v(c, radii))
        assert got == sf.product_polynomial_value(d, c, radii)

    def test_naive_and_optimized_agree(self):
        for m in (1, 2, 3):
            naive = split_product(2, m, optimize=False)
            merged = split_product(2, m, optimize=True)
            d, c = (3, -2), (1, 4)
            radii = list(range(1, m + 1))
            assert _inner(naive.f_u(d), naive.f_v(c, radii)) == _inner(
                merged.f_u(d), merged.f_v(c, radii)
            )

    def test_higher_dimension_product(self):
        sf = split_product(3, 2)
        d, c, radii = (1, 2, 3), (2, 2, 2), [2, 5]
        assert _inner(sf.f_u(d), sf.f_v(c, radii)) == sf.product_polynomial_value(
            d, c, radii
        )

    def test_alpha_formulas(self):
        for w in (2, 3):
            for m in (1, 2, 3, 4):
                assert split_product(w, m, optimize=False).alpha == naive_alpha(w, m)
                assert split_product(w, m, optimize=True).alpha == optimized_alpha(
                    w, m
                )

    def test_root_property(self):
        # P vanishes iff the point is on one of the circles (Eq. 7).
        sf = split_product(2, 3)
        c = (5, 5)
        radii = [0, 1, 4]
        v = sf.f_v(c, radii)
        assert _inner(sf.f_u((5, 6)), v) == 0  # on r²=1
        assert _inner(sf.f_u((5, 7)), v) == 0  # on r²=4
        assert _inner(sf.f_u((5, 5)), v) == 0  # the center, r²=0
        assert _inner(sf.f_u((6, 6)), v) != 0  # dist² = 2 not covered


class TestValidation:
    def test_bad_dimensions(self):
        with pytest.raises(ParameterError):
            split_boundary(0)
        with pytest.raises(ParameterError):
            split_product(2, 0)

    def test_expansion_limit(self):
        with pytest.raises(ParameterError):
            split_product(2, 12)  # 4^12 = 16.7M > limit

    def test_arity_checks(self):
        sf = split_product(2, 2)
        with pytest.raises(ParameterError):
            sf.f_u((1, 2, 3))
        with pytest.raises(ParameterError):
            sf.f_v((1, 2), [1])
        with pytest.raises(ParameterError):
            sf.f_v((1,), [1, 2])

    def test_determinism(self):
        # Split is a deterministic public algorithm (paper requirement).
        a = split_product(2, 3)
        b = split_product(2, 3)
        assert a.u_polys == b.u_polys and a.assignments == b.assignments
