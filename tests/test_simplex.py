"""Tests for the simplex range search extension (the paper's future work)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.core.simplex import Simplex, SimplexRangeScheme
from repro.errors import ParameterError, SchemeError


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(0x51)
    space = DataSpace(2, 32)
    scheme = SimplexRangeScheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    return scheme, key, rng


class TestSimplexGeometry:
    def test_triangle_contains(self):
        tri = Simplex(((0, 0), (4, 0), (0, 4)))
        assert tri.contains((1, 1))
        assert tri.contains((0, 0))  # vertex
        assert tri.contains((2, 2))  # on the hypotenuse
        assert not tri.contains((3, 3))
        assert not tri.contains((-1, 0))

    def test_barycentric_sums_to_one(self):
        tri = Simplex(((0, 0), (4, 0), (0, 4)))
        coords = tri.barycentric((1, 1))
        assert sum(coords) == Fraction(1)
        assert all(c >= 0 for c in coords)

    def test_degenerate_simplex_rejected_at_use(self):
        flat = Simplex(((0, 0), (1, 1), (2, 2)))  # collinear
        with pytest.raises(ParameterError):
            flat.contains((1, 0))

    def test_lattice_points_right_triangle(self):
        tri = Simplex(((0, 0), (3, 0), (0, 3)))
        pts = set(tri.lattice_points())
        # Triangular number: 4+3+2+1 = 10 points including boundary.
        assert len(pts) == 10
        assert (0, 0) in pts and (3, 0) in pts and (1, 1) in pts
        assert (2, 2) not in pts

    def test_wrong_vertex_count(self):
        with pytest.raises(ParameterError):
            Simplex(((0, 0), (1, 0)))
        with pytest.raises(ParameterError):
            Simplex(((0, 0), (1, 0), (0, 1), (1, 1)))

    def test_3d_tetrahedron(self):
        tet = Simplex(((0, 0, 0), (2, 0, 0), (0, 2, 0), (0, 0, 2)))
        assert tet.contains((0, 0, 0))
        assert tet.contains((1, 0, 1))  # on a face
        assert not tet.contains((1, 1, 1))
        assert (0, 1, 0) in tet.lattice_points()


class TestEncryptedSimplexSearch:
    def test_exhaustive_triangle_query(self, setup):
        scheme, key, rng = setup
        tri = Simplex(((5, 5), (12, 6), (7, 13)))
        token = scheme.gen_simplex_token(key, tri, rng)
        for x in range(3, 16):
            for y in range(3, 16):
                got = scheme.matches(token, scheme.encrypt(key, (x, y), rng))
                assert got == tri.contains((x, y)), (x, y)

    def test_token_size_is_lattice_point_count(self, setup):
        scheme, key, rng = setup
        tri = Simplex(((0, 0), (3, 0), (0, 3)))
        token = scheme.gen_simplex_token(key, tri, rng)
        assert token.num_sub_tokens == 10

    def test_same_key_serves_circles_and_simplices(self, setup):
        # The headline interoperability property: one encrypted dataset,
        # both query shapes.
        scheme, key, rng = setup
        record = scheme.encrypt(key, (6, 6), rng)
        circle_token = scheme.gen_token(key, Circle.from_radius((6, 7), 2), rng)
        simplex_token = scheme.gen_simplex_token(
            key, Simplex(((5, 5), (8, 5), (5, 8))), rng
        )
        assert scheme.matches(circle_token, record)
        assert scheme.matches(simplex_token, record)

    def test_count_hiding(self, setup):
        scheme, key, rng = setup
        tri = Simplex(((0, 0), (3, 0), (0, 3)))  # 10 points
        token = scheme.gen_simplex_token(key, tri, rng, hide_count_to=25)
        assert token.num_sub_tokens == 25
        assert scheme.matches(token, scheme.encrypt(key, (1, 1), rng))
        assert not scheme.matches(token, scheme.encrypt(key, (9, 9), rng))

    def test_count_hiding_too_small(self, setup):
        scheme, key, rng = setup
        tri = Simplex(((0, 0), (3, 0), (0, 3)))
        with pytest.raises(SchemeError):
            scheme.gen_simplex_token(key, tri, rng, hide_count_to=5)

    def test_vertices_must_lie_in_space(self, setup):
        scheme, key, rng = setup
        with pytest.raises(ParameterError):
            scheme.gen_simplex_token(
                key, Simplex(((0, 0), (40, 0), (0, 4))), rng
            )

    def test_dimension_mismatch(self, setup):
        scheme, key, rng = setup
        tet = Simplex(((0, 0, 0), (1, 0, 0), (0, 1, 0), (0, 0, 1)))
        with pytest.raises(ParameterError):
            scheme.gen_simplex_token(key, tet, rng)

    def test_is_still_a_crse2_scheme(self, setup):
        scheme, _, _ = setup
        assert isinstance(scheme, CRSE2Scheme)
