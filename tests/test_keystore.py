"""Tests for key serialization (repro.crypto.keystore)."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.crse1 import CRSE1Scheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1, group_for_crse2, provision_group
from repro.crypto.keystore import (
    load_crse1_key,
    load_crse2_key,
    save_crse1_key,
    save_crse2_key,
)
from repro.errors import SerializationError


class TestCRSE2RoundTrip:
    def test_fast_backend(self):
        rng = random.Random(0x5E1)
        space = DataSpace(2, 32)
        scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
        key = scheme.gen_key(rng)
        blob = save_crse2_key(scheme, key)
        scheme2, key2 = load_crse2_key(blob)

        # Tokens from the restored key must match ciphertexts from the
        # original key, and vice versa.
        q = Circle.from_radius((10, 10), 2)
        ct_original = scheme.encrypt(key, (10, 11), rng)
        token_restored = scheme2.gen_token(key2, q, rng)
        assert scheme2.matches(token_restored, ct_original)

        ct_restored = scheme2.encrypt(key2, (10, 11), rng)
        token_original = scheme.gen_token(key, q, rng)
        assert scheme.matches(token_original, ct_restored)

    def test_pairing_backend(self):
        rng = random.Random(0x5E2)
        space = DataSpace(2, 8)
        group = provision_group(
            space.boundary_value_bound(), "pairing", rng,
            noise_bits=16, min_payload_bits=33,
        )
        scheme = CRSE2Scheme(space, group)
        key = scheme.gen_key(rng)
        scheme2, key2 = load_crse2_key(save_crse2_key(scheme, key))
        q = Circle.from_radius((3, 3), 1)
        ct = scheme.encrypt(key, (3, 4), rng)
        token = scheme2.gen_token(key2, q, rng)
        assert scheme2.matches(token, ct)


class TestCRSE1RoundTrip:
    def test_plain(self):
        rng = random.Random(0x5E3)
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space, group_for_crse1(space, 1, "fast", rng), r_squared=1
        )
        key = scheme.gen_key(rng)
        scheme2, key2 = load_crse1_key(save_crse1_key(scheme, key))
        assert scheme2.m == scheme.m and scheme2.alpha == scheme.alpha
        token = scheme2.gen_token(key2, Circle.from_radius((4, 4), 1), rng)
        assert scheme2.matches(token, scheme.encrypt(key, (4, 5), rng))

    def test_with_radius_hiding(self):
        rng = random.Random(0x5E4)
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space,
            group_for_crse1(space, 1, "fast", rng, hide_radius_to=3),
            r_squared=1,
            hide_radius_to=3,
        )
        key = scheme.gen_key(rng)
        scheme2, key2 = load_crse1_key(save_crse1_key(scheme, key))
        assert scheme2.m == 3
        token = scheme2.gen_token(key2, Circle.from_radius((4, 4), 1), rng)
        assert scheme2.matches(token, scheme.encrypt(key, (4, 4), rng))

    def test_irrational_radius_key(self):
        # r² = 3: the query radius itself is not among the covering radii.
        rng = random.Random(0x5E5)
        space = DataSpace(2, 8)
        scheme = CRSE1Scheme(
            space, group_for_crse1(space, 3, "fast", rng), r_squared=3
        )
        key = scheme.gen_key(rng)
        scheme2, key2 = load_crse1_key(save_crse1_key(scheme, key))
        assert key2.radii_squared == key.radii_squared
        token = scheme2.gen_token(key2, Circle((4, 4), 3), rng)
        assert scheme2.matches(token, scheme.encrypt(key, (4, 5), rng))


class TestValidation:
    def _crse2_blob(self):
        rng = random.Random(0x5E6)
        space = DataSpace(2, 16)
        scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
        key = scheme.gen_key(rng)
        return save_crse2_key(scheme, key)

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            load_crse2_key(b"\x00\x01\x02")

    def test_wrong_scheme_rejected(self):
        with pytest.raises(SerializationError):
            load_crse1_key(self._crse2_blob())

    def test_wrong_version_rejected(self):
        payload = json.loads(self._crse2_blob())
        payload["version"] = 99
        with pytest.raises(SerializationError):
            load_crse2_key(json.dumps(payload).encode())

    def test_tampered_element_rejected(self):
        payload = json.loads(self._crse2_blob())
        payload["ssw"]["h1"][0] = "ff" * 200  # wrong length for the group
        with pytest.raises(SerializationError):
            load_crse2_key(json.dumps(payload).encode())

    def test_blob_is_valid_json(self):
        payload = json.loads(self._crse2_blob())
        assert payload["scheme"] == "crse2"
        assert payload["group"]["backend"] == "fast"
