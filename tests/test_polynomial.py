"""Tests for repro.math.polynomial."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.math.polynomial import Polynomial


def poly_strategy(nvars: int = 2, max_terms: int = 5):
    """Random sparse polynomials with small exponents and coefficients."""
    expts = st.tuples(*([st.integers(0, 3)] * nvars))
    term = st.tuples(expts, st.integers(-9, 9))
    return st.lists(term, max_size=max_terms).map(
        lambda terms: Polynomial(nvars, dict(terms))
    )


points = st.tuples(st.integers(-5, 5), st.integers(-5, 5))


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        p = Polynomial(2, {(1, 0): 0, (0, 1): 3})
        assert p.num_terms() == 1

    def test_duplicate_keys_not_possible_but_bad_arity_raises(self):
        with pytest.raises(ValueError):
            Polynomial(2, {(1,): 1})

    def test_negative_exponent_raises(self):
        with pytest.raises(ValueError):
            Polynomial(1, {(-1,): 1})

    def test_constant_and_variable(self):
        c = Polynomial.constant(2, 7)
        assert c.evaluate((100, 200)) == 7
        x1 = Polynomial.variable(2, 1)
        assert x1.evaluate((3, 4)) == 4

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            Polynomial.variable(2, 2)


class TestRingAxioms:
    @given(poly_strategy(), poly_strategy(), points)
    def test_addition_commutes(self, p, q, x):
        assert (p + q).evaluate(x) == (q + p).evaluate(x)
        assert p + q == q + p

    @given(poly_strategy(), poly_strategy(), poly_strategy())
    def test_multiplication_associates(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @given(poly_strategy(), poly_strategy(), poly_strategy(), points)
    def test_distributivity(self, p, q, r, x):
        left = p * (q + r)
        right = p * q + p * r
        assert left == right
        assert left.evaluate(x) == right.evaluate(x)

    @given(poly_strategy(), points)
    def test_additive_inverse(self, p, x):
        assert (p - p).is_zero()
        assert (p + (-p)).evaluate(x) == 0

    @given(poly_strategy())
    def test_multiplicative_identity(self, p):
        assert p * Polynomial.one(2) == p
        assert p * Polynomial.zero(2) == Polynomial.zero(2)


class TestEvaluation:
    @given(poly_strategy(), poly_strategy(), points)
    def test_evaluation_is_homomorphism(self, p, q, x):
        assert (p * q).evaluate(x) == p.evaluate(x) * q.evaluate(x)
        assert (p + q).evaluate(x) == p.evaluate(x) + q.evaluate(x)

    def test_arity_check(self):
        with pytest.raises(ValueError):
            Polynomial.one(2).evaluate((1,))

    def test_circle_polynomial(self):
        # (x-3)² + (y-2)² - 1 at (2,2) should vanish (the paper's example).
        x = Polynomial.variable(2, 0)
        y = Polynomial.variable(2, 1)
        p = (x - 3) ** 2 + (y - 2) ** 2 - 1
        assert p.evaluate((2, 2)) == 0
        assert p.evaluate((1, 3)) == 4


class TestPower:
    @given(poly_strategy(max_terms=3), st.integers(0, 4), points)
    def test_pow_matches_repeated_mul(self, p, e, x):
        expected = Polynomial.one(2)
        for _ in range(e):
            expected = expected * p
        assert p**e == expected
        assert (p**e).evaluate(x) == p.evaluate(x) ** e

    def test_negative_power_raises(self):
        with pytest.raises(ValueError):
            Polynomial.one(1) ** -1


class TestMisc:
    def test_int_coercion(self):
        p = Polynomial.variable(1, 0)
        assert (p + 1).evaluate((4,)) == 5
        assert (1 + p).evaluate((4,)) == 5
        assert (2 * p).evaluate((4,)) == 8
        assert (1 - p).evaluate((4,)) == -3

    def test_hashable_and_dict_key(self):
        p = Polynomial.variable(2, 0) * Polynomial.variable(2, 1)
        q = Polynomial.variable(2, 1) * Polynomial.variable(2, 0)
        assert hash(p) == hash(q) and {p: 1}[q] == 1

    def test_total_degree(self):
        x = Polynomial.variable(2, 0)
        y = Polynomial.variable(2, 1)
        assert (x**2 * y + y).total_degree() == 3
        assert Polynomial.zero(2).total_degree() == 0

    def test_repr_roundtrip_readability(self):
        x = Polynomial.variable(2, 0)
        text = repr(x**2 - 1)
        assert "x0" in text
