"""Subprocess kill -9 round-trip for ``repro serve --data-dir``.

The one test that exercises durability the way an operator hits it: a
serve process writing to a data directory, an upload + search over TCP,
an abrupt SIGKILL (no drain, no atexit), a restart over the same
directory, and the same query returning the same matches.  Also covers
``repro store verify`` on both a healthy and a deliberately damaged
store.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest


def _repro(*argv: str, **kwargs) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        **kwargs,
    )


def _serve(key, data_dir, port_file) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--key", str(key), "--data-dir", str(data_dir),
            "--port", "0", "--port-file", str(port_file),
            "--workers", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        start_new_session=True,  # so SIGKILL can take the shard workers too
    )


def _wait_for_port(serve: subprocess.Popen, port_file) -> str:
    deadline = time.monotonic() + 60
    while not port_file.exists() and time.monotonic() < deadline:
        assert serve.poll() is None, serve.stdout.read()
        time.sleep(0.1)
    assert port_file.exists(), "serve never wrote its port file"
    return port_file.read_text().strip()


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """A tiny key + encrypted records built through the real CLI."""
    root = tmp_path_factory.mktemp("store-cli")
    key = root / "demo.key"
    points = root / "points.csv"
    records = root / "records.txt"
    result = _repro(
        "keygen", "--size", "16", "--dims", "2", "--backend", "fast",
        "--seed", "11", "--out", str(key),
    )
    assert result.returncode == 0, result.stderr
    points.write_text("3,3\n3,4\n12,12\n14,2\n")
    result = _repro(
        "encrypt", "--key", str(key), "--points", str(points),
        "--seed", "12", "--out", str(records),
    )
    assert result.returncode == 0, result.stderr
    return key, records, root


def test_sigkill_restart_same_matches(artifacts):
    key, records, root = artifacts
    data_dir = root / "data"

    # First life: empty store, upload over the wire, search.
    port_file = root / "port1"
    serve = _serve(key, data_dir, port_file)
    try:
        port = _wait_for_port(serve, port_file)
        upload = _repro(
            "query", "--key", str(key), "--upload", str(records),
            "--port", port, "--seed", "13",
        )
        assert upload.returncode == 0, upload.stdout + upload.stderr
        assert "uploaded 4 records (4 now stored)" in upload.stdout
        first = _repro(
            "query", "--key", str(key), "--center", "3,3", "--radius", "1",
            "--port", port, "--seed", "13",
        )
        assert first.returncode == 0, first.stdout + first.stderr
        assert "matches: [0, 1]" in first.stdout

        # The crash: no SIGTERM, no drain — the store's fsync-before-ack
        # discipline is the only thing standing between us and data loss.
        # Kill the whole process group so the shard workers die with the
        # server, like a machine losing power.
        os.killpg(serve.pid, signal.SIGKILL)
        serve.wait(timeout=60)
    finally:
        if serve.poll() is None:
            os.killpg(serve.pid, signal.SIGKILL)
            serve.wait(timeout=30)
        serve.stdout.close()

    # Second life: same directory, no --records, replay from disk.
    port_file = root / "port2"
    serve = _serve(key, data_dir, port_file)
    try:
        port = _wait_for_port(serve, port_file)
        second = _repro(
            "query", "--key", str(key), "--center", "3,3", "--radius", "1",
            "--port", port, "--seed", "13", "--stats",
        )
        assert second.returncode == 0, second.stdout + second.stderr
        assert "matches: [0, 1]" in second.stdout
        assert '"store"' in second.stdout  # --stats shows the store section

        serve.send_signal(signal.SIGTERM)
        stdout, _ = serve.communicate(timeout=60)
    finally:
        if serve.poll() is None:
            os.killpg(serve.pid, signal.SIGKILL)
            serve.wait(timeout=30)
            serve.stdout.close()
    assert serve.returncode == 0, stdout
    assert "replayed 4 records" in stdout
    assert "drained, bye" in stdout

    # The surviving store passes verification...
    verify = _repro("store", "verify", "--data-dir", str(data_dir))
    assert verify.returncode == 0, verify.stdout + verify.stderr
    assert ": clean" in verify.stdout

    # ...and a damaged copy does not.
    damaged = root / "damaged"
    damaged.mkdir()
    for name in os.listdir(data_dir):
        (damaged / name).write_bytes((data_dir / name).read_bytes())
    segs = sorted(p for p in damaged.iterdir() if p.suffix == ".log")
    blob = bytearray(segs[0].read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    segs[0].write_bytes(bytes(blob))
    verify = _repro("store", "verify", "--data-dir", str(damaged))
    assert verify.returncode == 1, verify.stdout + verify.stderr
    assert "damaged" in verify.stdout
