"""Tests for GenConCircle (repro.core.concircles)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.concircles import (
    gen_con_circle,
    gen_con_circles_for,
    num_concentric_circles,
)
from repro.core.geometry import Circle, point_in_circle, point_on_boundary
from repro.errors import ParameterError
from repro.math.sumsquares import lattice_points_on_sphere


class TestPaperValues:
    def test_table1_m_values(self):
        # Paper Table I: R = 1, 2, 3 → m = 2, 4, 7.
        assert num_concentric_circles(1) == 2
        assert num_concentric_circles(4) == 4
        assert num_concentric_circles(9) == 7

    def test_r10_gives_44(self):
        # Implied by Fig. 14: 28.16 KB token = 44 sub-tokens × 640 B.
        assert num_concentric_circles(100) == 44

    def test_radius_zero(self):
        # The center alone is one degenerate circle.
        assert gen_con_circle(0) == [0]

    def test_upper_bound_r2_plus_1(self):
        # Sec. VI-A: at w = 2, m <= R² + 1.
        for r_sq in (1, 4, 25, 100):
            assert num_concentric_circles(r_sq) <= r_sq + 1

    def test_exactly_r2_plus_1_for_w_at_least_4(self):
        # Sec. VI-D: Lagrange's theorem makes m = R² + 1 for w >= 4.
        for r_sq in (1, 9, 49):
            assert num_concentric_circles(r_sq, w=4) == r_sq + 1
            assert num_concentric_circles(r_sq, w=5) == r_sq + 1


class TestCoveringProperty:
    """The concentric circles cover exactly the inside lattice points."""

    @given(st.integers(0, 60), st.integers(2, 4))
    def test_every_inside_point_is_on_some_circle(self, r_sq, w):
        radii = set(gen_con_circle(r_sq, w))
        # Every lattice point inside the ball has squared distance in radii.
        center = (0,) * w
        for d in range(r_sq + 1):
            on_sphere = lattice_points_on_sphere(center, d)
            if on_sphere:
                assert d in radii, (d, r_sq, w)
            else:
                assert d not in radii, (d, r_sq, w)

    def test_no_circle_exceeds_query(self):
        assert all(r <= 50 for r in gen_con_circle(50))

    def test_sorted_and_unique(self):
        radii = gen_con_circle(100)
        assert radii == sorted(set(radii))
        assert radii[0] == 0 and radii[-1] == 100


class TestMaterialization:
    def test_gen_con_circles_for(self):
        q = Circle.from_radius((5, 5), 2)
        circles = gen_con_circles_for(q)
        assert [c.r_squared for c in circles] == [0, 1, 2, 4]
        assert all(c.center == (5, 5) for c in circles)

    def test_boundary_union_equals_interior(self):
        # The geometric heart of both CRSE schemes (Eq. 7).
        q = Circle.from_radius((8, 8), 3)
        circles = gen_con_circles_for(q)
        for x in range(0, 17):
            for y in range(0, 17):
                p = (x, y)
                on_any = any(point_on_boundary(p, c) for c in circles)
                assert on_any == point_in_circle(p, q), p


class TestValidation:
    def test_negative_radius_rejected(self):
        with pytest.raises(ParameterError):
            gen_con_circle(-1)

    def test_bad_dimension_rejected(self):
        with pytest.raises(ParameterError):
            gen_con_circle(4, w=0)
