"""Smoke tests: the example scripts must run clean end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

# lbs_proximity sweeps a 2258-sub-token query (~20 s); exercised manually.
FAST_EXAMPLES = [
    "quickstart.py",
    "crse1_vs_crse2.py",
    "healthcare_monitoring.py",
    "delaunay_verification.py",
    "fleet_tracking.py",
    "geofencing.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_quickstart_output_is_correct():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "matches: [(100, 200), (105, 205)]" in result.stdout
    assert "rounds with the server per query: 1" in result.stdout


def test_all_examples_present():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts >= set(FAST_EXAMPLES) | {"lbs_proximity.py"}
    assert len(scripts) >= 3  # the deliverable floor
