"""Tests for CRSE-II (paper Sec. VI-C)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import EncryptedRecord, encrypt_dataset, linear_search
from repro.core.crse2 import CRSE2Scheme, dummy_circle
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2
from repro.errors import ParameterError, SchemeError


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(31)
    space = DataSpace(2, 16)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    return scheme, key


class TestPaperExample:
    def test_fig5_inside_and_outside(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((3, 2), 1)
        token = scheme.gen_token(key, q, rng)
        assert token.num_sub_tokens == 2  # m = 2 for R = 1
        assert scheme.matches(token, scheme.encrypt(key, (2, 2), rng))
        assert not scheme.matches(token, scheme.encrypt(key, (1, 3), rng))

    def test_center_matches_via_zero_radius_circle(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((3, 2), 1)
        token = scheme.gen_token(key, q, rng)
        assert scheme.matches(token, scheme.encrypt(key, (3, 2), rng))


class TestExhaustiveCorrectness:
    def test_all_points_against_query(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((8, 7), 3)
        token = scheme.gen_token(key, q, rng)
        for point in scheme.space.iter_points():
            got = scheme.matches(token, scheme.encrypt(key, point, rng))
            assert got == point_in_circle(point, q), point

    @settings(max_examples=15, deadline=None)
    @given(
        x=st.integers(0, 15),
        y=st.integers(0, 15),
        cx=st.integers(0, 15),
        cy=st.integers(0, 15),
        radius=st.integers(0, 4),
    )
    def test_matches_plaintext_predicate(self, setup, x, y, cx, cy, radius):
        scheme, key = setup
        rng = random.Random(hash((x, y, cx, cy, radius)) & 0xFFFFF)
        q = Circle.from_radius((cx, cy), radius)
        token = scheme.gen_token(key, q, rng)
        ct = scheme.encrypt(key, (x, y), rng)
        assert scheme.matches(token, ct) == point_in_circle((x, y), q)

    def test_irrational_radius_query(self, setup, rng):
        # R² = 5: every point with distance² <= 5 is inside.
        scheme, key = setup
        q = Circle((8, 8), 5)
        token = scheme.gen_token(key, q, rng)
        assert scheme.matches(token, scheme.encrypt(key, (10, 7), rng))  # d²=5
        assert not scheme.matches(token, scheme.encrypt(key, (10, 6), rng))  # d²=8


class TestRadiusHiding:
    def test_padding_reaches_k(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((8, 8), 2)  # m = 4
        token = scheme.gen_token(key, q, rng, hide_radius_to=9)
        assert token.num_sub_tokens == 9

    def test_padding_preserves_results(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((8, 8), 2)
        plain = scheme.gen_token(key, q, rng)
        padded = scheme.gen_token(key, q, rng, hide_radius_to=12)
        for point in ((8, 8), (8, 10), (9, 9), (12, 12), (0, 0)):
            ct = scheme.encrypt(key, point, rng)
            assert scheme.matches(plain, ct) == scheme.matches(padded, ct)

    def test_dummy_circle_matches_nothing(self, setup, rng):
        scheme, key = setup
        dummy = dummy_circle(scheme.space, (8, 8))
        assert dummy.r_squared > scheme.space.max_distance_squared()

    def test_k_below_m_rejected(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((8, 8), 2)  # m = 4
        with pytest.raises(SchemeError):
            scheme.gen_token(key, q, rng, hide_radius_to=3)

    def test_two_radii_indistinguishable_by_count(self, setup, rng):
        # With K fixed, the sub-token count no longer reveals R.
        scheme, key = setup
        t1 = scheme.gen_token(key, Circle.from_radius((8, 8), 1), rng, hide_radius_to=10)
        t2 = scheme.gen_token(key, Circle.from_radius((8, 8), 2), rng, hide_radius_to=10)
        assert t1.num_sub_tokens == t2.num_sub_tokens == 10


class TestPermutation:
    def test_sub_token_order_varies(self, setup):
        scheme, key = setup
        q = Circle.from_radius((8, 8), 3)  # m = 7: 5040 orders
        rng = random.Random(123)
        # Fresh β per token: two tokens matching the same record should hit
        # different sub-token positions at least once over several trials.
        record = scheme.encrypt(key, (8, 10), rng)  # on r² = 4 boundary

        def hit_index(token):
            from repro.crypto.ssw import ssw_query

            for i, sub in enumerate(token.sub_tokens):
                if ssw_query(sub, record.ssw):
                    return i
            return None

        indices = {
            hit_index(scheme.gen_token(key, q, rng)) for _ in range(12)
        }
        assert None not in indices
        assert len(indices) > 1


class TestStats:
    def test_match_stats_early_exit(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((8, 8), 2)
        token = scheme.gen_token(key, q, rng)
        matched, evaluated = scheme.matches_with_stats(
            token, scheme.encrypt(key, (8, 9), rng)
        )
        assert matched and 1 <= evaluated <= token.num_sub_tokens

    def test_non_match_pays_full_m(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((8, 8), 2)
        token = scheme.gen_token(key, q, rng)
        matched, evaluated = scheme.matches_with_stats(
            token, scheme.encrypt(key, (0, 0), rng)
        )
        assert not matched and evaluated == token.num_sub_tokens


class TestDatasetHelpers:
    def test_encrypt_and_linear_search(self, setup, rng):
        scheme, key = setup
        points = [(rng.randrange(16), rng.randrange(16)) for _ in range(25)]
        records = encrypt_dataset(scheme, key, points, rng)
        assert [r.identifier for r in records] == list(range(25))
        q = Circle.from_radius((8, 8), 3)
        token = scheme.gen_token(key, q, rng)
        hits = linear_search(scheme, token, records)
        expected = [i for i, p in enumerate(points) if point_in_circle(p, q)]
        assert hits == expected

    def test_search_returns_identifier_or_none(self, setup, rng):
        scheme, key = setup
        q = Circle.from_radius((8, 8), 1)
        token = scheme.gen_token(key, q, rng)
        inside = EncryptedRecord(7, scheme.encrypt(key, (8, 8), rng))
        outside = EncryptedRecord(9, scheme.encrypt(key, (1, 1), rng))
        assert scheme.search(token, inside) == 7
        assert scheme.search(token, outside) is None


class TestValidation:
    def test_point_outside_space(self, setup, rng):
        scheme, key = setup
        with pytest.raises(ParameterError):
            scheme.encrypt(key, (16, 0), rng)

    def test_circle_outside_space(self, setup, rng):
        scheme, key = setup
        with pytest.raises(ParameterError):
            scheme.gen_token(key, Circle.from_radius((20, 0), 1), rng)

    def test_undersized_group(self, rng):
        from repro.core.provision import provision_group

        big_space = DataSpace(2, 1 << 22)
        small_group = provision_group(10, "fast", rng)
        with pytest.raises(SchemeError):
            CRSE2Scheme(big_space, small_group)
