"""Tests for composite radial queries (annulus, union of circles)."""

from __future__ import annotations

import random

import pytest

from repro.core.composite import (
    annulus_radii_squared,
    gen_annulus_token,
    gen_union_token,
    point_in_annulus,
)
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.core.provision import group_for_crse2
from repro.errors import ParameterError, SchemeError


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(0xA22)
    space = DataSpace(2, 24)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    return scheme, key, rng


class TestAnnulusRadii:
    def test_excludes_inner_disk(self):
        # (4, 25]: sums of two squares in {5, 8, 9, 10, 13, 16, 17, 18, 20, 25}.
        radii = annulus_radii_squared(4, 25)
        assert radii[0] == 5 and radii[-1] == 25
        assert 4 not in radii and 0 not in radii

    def test_full_disk_when_inner_zero_minus_one(self):
        # inner = -1 is invalid; inner = 0 drops only the center.
        radii = annulus_radii_squared(0, 25)
        assert 0 not in radii and 1 in radii

    def test_invalid(self):
        with pytest.raises(ParameterError):
            annulus_radii_squared(9, 4)
        with pytest.raises(ParameterError):
            annulus_radii_squared(-2, 4)


class TestAnnulusToken:
    def test_exhaustive(self, setup):
        scheme, key, rng = setup
        center, inner, outer = (12, 12), 4, 16
        token = gen_annulus_token(scheme, key, center, inner, outer, rng)
        for x in range(6, 19):
            for y in range(6, 19):
                got = scheme.matches(token, scheme.encrypt(key, (x, y), rng))
                assert got == point_in_annulus((x, y), center, inner, outer), (
                    x,
                    y,
                )

    def test_inner_boundary_excluded(self, setup):
        scheme, key, rng = setup
        token = gen_annulus_token(scheme, key, (12, 12), 4, 16, rng)
        # distance² = 4: exactly the inner bound — excluded (strict <).
        assert not scheme.matches(token, scheme.encrypt(key, (14, 12), rng))
        # distance² = 16: exactly the outer bound — included.
        assert scheme.matches(token, scheme.encrypt(key, (16, 12), rng))

    def test_count_hiding(self, setup):
        scheme, key, rng = setup
        token = gen_annulus_token(
            scheme, key, (12, 12), 4, 9, rng, hide_count_to=20
        )
        assert token.num_sub_tokens == 20

    def test_empty_annulus_rejected(self, setup):
        scheme, key, rng = setup
        # (2, 3]: 3 is not a sum of two squares → nothing to cover.
        with pytest.raises(SchemeError):
            gen_annulus_token(scheme, key, (12, 12), 2, 3, rng)

    def test_center_validation(self, setup):
        scheme, key, rng = setup
        with pytest.raises(ParameterError):
            gen_annulus_token(scheme, key, (99, 0), 0, 4, rng)


class TestUnionToken:
    def test_exhaustive_two_circles(self, setup):
        scheme, key, rng = setup
        circles = [
            Circle.from_radius((6, 6), 2),
            Circle.from_radius((16, 16), 3),
        ]
        token = gen_union_token(scheme, key, circles, rng)
        for x in range(3, 22, 2):
            for y in range(3, 22, 2):
                got = scheme.matches(token, scheme.encrypt(key, (x, y), rng))
                want = any(point_in_circle((x, y), c) for c in circles)
                assert got == want, (x, y)

    def test_overlapping_circles_deduplicate(self, setup):
        scheme, key, rng = setup
        same = Circle.from_radius((10, 10), 2)
        token_single = gen_union_token(scheme, key, [same], rng)
        token_double = gen_union_token(scheme, key, [same, same], rng)
        assert token_double.num_sub_tokens == token_single.num_sub_tokens

    def test_point_in_overlap_matches_once(self, setup):
        scheme, key, rng = setup
        circles = [
            Circle.from_radius((10, 10), 3),
            Circle.from_radius((12, 10), 3),
        ]
        token = gen_union_token(scheme, key, circles, rng)
        # (11, 10) is inside both circles; must match (exactly once is an
        # implementation detail — the Boolean is what matters).
        assert scheme.matches(token, scheme.encrypt(key, (11, 10), rng))

    def test_empty_union_rejected(self, setup):
        scheme, key, rng = setup
        with pytest.raises(SchemeError):
            gen_union_token(scheme, key, [], rng)

    def test_union_token_size_is_sum_of_coverings_minus_overlap(self, setup):
        scheme, key, rng = setup
        a = Circle.from_radius((6, 6), 2)  # m = 4
        b = Circle.from_radius((16, 16), 2)  # m = 4, different center
        token = gen_union_token(scheme, key, [a, b], rng)
        assert token.num_sub_tokens == 8
