"""The async multiplexing client: pairing, retries, and failure isolation.

Two kinds of servers exercise :class:`repro.service.aio.AsyncServiceClient`:

* *scripted* asyncio servers that misbehave on cue — replying out of
  order, storming BUSY, dying mid-flight, or answering late — to pin down
  the multiplexing edge cases one at a time;
* the real :class:`~repro.service.server.ServiceServer`, for end-to-end
  parity with the blocking client and the single-connection guarantee.

The blocking client's persistent-connection contract (reuse across
sequential queries, transparent redial on idle close, *no* blind resend
on a fresh connection) is regression-tested here too, since both clients
share the one-connection discipline.

No pytest-asyncio in the image: async test bodies run via ``asyncio.run``
inside plain test functions.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading

import pytest

from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ServiceBusyError,
    ServiceConnectionError,
    ServiceError,
)
from repro.service import (
    AsyncServiceClient,
    RetryPolicy,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    protocol,
)

FAST_RETRY = RetryPolicy(
    attempts=3, base_delay_s=0.001, max_delay_s=0.002, jitter=0.0
)
NO_RETRY = RetryPolicy(
    attempts=1, base_delay_s=0.001, max_delay_s=0.002, jitter=0.0
)


@pytest.fixture(scope="module")
def service_env():
    """A tiny CRSE-II dataset plus tokens with known-match geometry."""
    rng = random.Random(0xA10)
    space = DataSpace(2, 16)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    points = [(4, 4), (5, 5), (4, 6), (12, 12), (2, 13), (8, 8)]
    records = tuple(
        UploadRecord(
            identifier=index,
            payload=encode_ciphertext(scheme, scheme.encrypt(key, pt, rng)),
        )
        for index, pt in enumerate(points)
    )
    tokens = tuple(
        encode_token(
            scheme, scheme.gen_token(key, Circle.from_radius(center, 2), rng)
        )
        for center in [(4, 5), (12, 12), (8, 8), (1, 1), (5, 4), (13, 12)]
    )
    return scheme, records, tokens


class ScriptedServer:
    """An asyncio server whose per-connection behaviour is a test script.

    ``handler(reader, writer, conn_index)`` runs per connection; the
    server counts connections and frames so tests can assert on them.
    """

    def __init__(self, handler):
        self.handler = handler
        self.connections = 0
        self.frames = 0
        self._server: asyncio.Server | None = None
        self.port: int | None = None

    async def __aenter__(self) -> "ScriptedServer":
        self._server = await asyncio.start_server(
            self._on_connection, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._server.close()
        await self._server.wait_closed()

    async def _on_connection(self, reader, writer) -> None:
        index = self.connections
        self.connections += 1
        try:
            await self.handler(reader, writer, index)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def read_request(self, reader) -> protocol.Request | None:
        body = await protocol.read_frame(reader)
        if body is None:
            return None
        self.frames += 1
        return protocol.decode_request(body)


class TestMultiplexing:
    def test_out_of_order_replies_land_on_right_futures(self):
        async def scenario():
            async def handler(reader, writer, index):
                # Hold both requests, then answer them newest-first: the
                # client must pair by id, not arrival order.
                first = await server.read_request(reader)
                second = await server.read_request(reader)
                for request in (second, first):
                    await protocol.write_frame(
                        writer,
                        protocol.encode_ok(
                            request.request_id,
                            {"echo": request.request_id},
                        ),
                    )
                await server.read_request(reader)  # wait for client close

            async with ScriptedServer(handler) as server:
                async with AsyncServiceClient(
                    "127.0.0.1", server.port, retry=NO_RETRY
                ) as client:
                    one, two = await asyncio.gather(
                        client.health(), client.health()
                    )
            assert one == {"echo": 1}
            assert two == {"echo": 2}
            assert server.connections == 1

        asyncio.run(scenario())

    def test_busy_storm_retries_are_bounded(self):
        async def scenario():
            async def handler(reader, writer, index):
                while True:
                    request = await server.read_request(reader)
                    if request is None:
                        return
                    await protocol.write_frame(
                        writer,
                        protocol.encode_error(
                            request.request_id,
                            protocol.ERR_BUSY,
                            "storm",
                            retryable=True,
                        ),
                    )

            async with ScriptedServer(handler) as server:
                async with AsyncServiceClient(
                    "127.0.0.1", server.port, retry=FAST_RETRY
                ) as client:
                    with pytest.raises(ServiceBusyError):
                        await client.health()
            # Exactly `attempts` tries, all on the one connection: BUSY
            # does not tear the transport down.
            assert server.frames == FAST_RETRY.attempts
            assert server.connections == 1

        asyncio.run(scenario())

    def test_mid_flight_kill_fails_only_pending(self):
        async def scenario():
            async def handler(reader, writer, index):
                if index == 0:
                    # Answer the older request, then die with the newer
                    # one still in flight.
                    first = await server.read_request(reader)
                    second = await server.read_request(reader)
                    victim = max(
                        (first, second), key=lambda r: r.request_id
                    )
                    survivor = min(
                        (first, second), key=lambda r: r.request_id
                    )
                    assert victim is not survivor
                    await protocol.write_frame(
                        writer,
                        protocol.encode_ok(
                            survivor.request_id, {"served": True}
                        ),
                    )
                    return  # close with victim pending
                while True:
                    request = await server.read_request(reader)
                    if request is None:
                        return
                    await protocol.write_frame(
                        writer,
                        protocol.encode_ok(
                            request.request_id, {"served": True}
                        ),
                    )

            async with ScriptedServer(handler) as server:
                async with AsyncServiceClient(
                    "127.0.0.1", server.port, retry=NO_RETRY
                ) as client:
                    outcomes = await asyncio.gather(
                        client.health(),
                        client.health(),
                        return_exceptions=True,
                    )
                    answered = [o for o in outcomes if isinstance(o, dict)]
                    failed = [
                        o
                        for o in outcomes
                        if isinstance(o, ServiceConnectionError)
                    ]
                    assert len(answered) == 1 and len(failed) == 1
                    # The loss is behind us: the next request redials.
                    assert await client.health() == {"served": True}
                    assert client.connections_opened == 2
            assert server.connections == 2

        asyncio.run(scenario())

    def test_deadline_expiry_does_not_poison_connection(self):
        async def scenario():
            async def answer(writer, lock, request, delay_s):
                if delay_s:
                    await asyncio.sleep(delay_s)
                async with lock:
                    await protocol.write_frame(
                        writer,
                        protocol.encode_ok(
                            request.request_id, {"served": True}
                        ),
                    )

            async def handler(reader, writer, index):
                lock = asyncio.Lock()
                while True:
                    request = await server.read_request(reader)
                    if request is None:
                        return
                    # A request carrying a deadline is answered far too
                    # late — after the client has given up on it.
                    delay = 0.25 if request.deadline_ms is not None else 0.0
                    asyncio.ensure_future(
                        answer(writer, lock, request, delay)
                    )

            async with ScriptedServer(handler) as server:
                async with AsyncServiceClient(
                    "127.0.0.1",
                    server.port,
                    retry=NO_RETRY,
                    grace_s=0.05,
                ) as client:
                    with pytest.raises(DeadlineExceededError):
                        await client.health(deadline_ms=20.0)
                    assert client.in_flight == 0
                    # The late reply is discarded by the reader; the same
                    # connection keeps serving.
                    assert await client.health() == {"served": True}
                    await asyncio.sleep(0.3)  # let the late reply arrive
                    assert await client.health() == {"served": True}
                    assert client.connections_opened == 1
            assert server.connections == 1

        asyncio.run(scenario())

    def test_unattributable_error_fails_pending(self):
        async def scenario():
            async def handler(reader, writer, index):
                request = await server.read_request(reader)
                if request is None:
                    return
                # An id-0 error means the server could not even read the
                # envelope — nobody can claim it, so everything fails.
                await protocol.write_frame(
                    writer,
                    protocol.encode_error(
                        0, protocol.ERR_PROTOCOL, "unreadable frame"
                    ),
                )
                await server.read_request(reader)

            async with ScriptedServer(handler) as server:
                async with AsyncServiceClient(
                    "127.0.0.1", server.port, retry=NO_RETRY
                ) as client:
                    with pytest.raises(ProtocolError):
                        await client.health()

        asyncio.run(scenario())


class TestAgainstRealServer:
    def test_concurrent_searches_match_blocking_on_one_connection(
        self, service_env
    ):
        scheme, records, tokens = service_env
        server = ServiceServer(
            scheme, ServiceConfig(workers=1, max_pending=32)
        )
        with ServerThread(server) as thread:
            port = thread.port
            with ServiceClient("127.0.0.1", port) as blocking:
                blocking.upload(UploadDataset(records=records))
                expected = [
                    sorted(blocking.search(token)[0].identifiers)
                    for token in tokens
                ]

            async def scenario():
                async with AsyncServiceClient(
                    "127.0.0.1", port, max_in_flight=4
                ) as client:
                    replies = await asyncio.gather(
                        *(client.search(token) for token in tokens)
                    )
                    batched = await client.search_batch(tokens)
                    stats = await client.stats()
                    assert client.connections_opened == 1
                return replies, batched, stats

            replies, batched, stats = asyncio.run(scenario())
        assert [
            sorted(response.identifiers) for response, _ in replies
        ] == expected
        assert [
            sorted(response.identifiers) for response, _ in batched
        ] == expected
        # Saturation gauges rode along on the stats verb.
        queue = stats["queue"]
        assert queue["limit"] == 32
        assert 1 <= queue["peak_in_flight"] <= 32
        # Blocking baseline + async pass each ran the token set once.
        assert stats["verbs"]["search"]["requests"] == 2 * len(tokens)
        assert stats["verbs"]["search_batch"]["requests"] == 1
        assert "p50_ms" in stats["verbs"]["search"]


class TestBlockingConnectionReuse:
    def test_sequential_queries_reuse_one_connection(self, service_env):
        scheme, records, tokens = service_env
        server = ServiceServer(scheme, ServiceConfig(workers=1))
        with ServerThread(server) as thread:
            with ServiceClient("127.0.0.1", thread.port) as client:
                client.upload(UploadDataset(records=records))
                for token in tokens:
                    client.search(token)
                client.health()
                stats = client.stats()
                assert client.connections_opened == 1
                # The server agrees: one connection ever accepted.
                assert stats["connections"]["total"] == 1
                assert stats["connections"]["open"] == 1

    def _scripted_socket_server(self, script):
        """Run *script(listener)* on a thread; returns (port, thread)."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]
        thread = threading.Thread(
            target=script, args=(listener,), daemon=True
        )
        thread.start()
        return port, thread

    def test_idle_close_redials_transparently(self):
        def script(listener):
            with listener:
                # First connection: one reply, then an idle close.
                conn, _ = listener.accept()
                with conn:
                    request = protocol.decode_request(
                        protocol.recv_frame(conn)
                    )
                    protocol.send_frame(
                        conn,
                        protocol.encode_ok(
                            request.request_id, {"conn": 0}
                        ),
                    )
                # Second connection: serve the redialed request.
                conn, _ = listener.accept()
                with conn:
                    request = protocol.decode_request(
                        protocol.recv_frame(conn)
                    )
                    protocol.send_frame(
                        conn,
                        protocol.encode_ok(
                            request.request_id, {"conn": 1}
                        ),
                    )

        port, thread = self._scripted_socket_server(script)
        with ServiceClient(
            "127.0.0.1", port, retry=NO_RETRY, timeout_s=5.0
        ) as client:
            assert client.health() == {"conn": 0}
            # The server hung up between requests; the client redials and
            # resends without surfacing an error.
            assert client.health() == {"conn": 1}
            assert client.connections_opened == 2
        thread.join(timeout=5.0)

    def test_fresh_connection_eof_is_not_resent(self):
        def script(listener):
            with listener:
                # Reply, idle-close, then refuse to answer the redial:
                # accept it, read the frame, close without replying.
                conn, _ = listener.accept()
                with conn:
                    request = protocol.decode_request(
                        protocol.recv_frame(conn)
                    )
                    protocol.send_frame(
                        conn, protocol.encode_ok(request.request_id, {})
                    )
                conn, _ = listener.accept()
                with conn:
                    protocol.recv_frame(conn)

        port, thread = self._scripted_socket_server(script)
        with ServiceClient(
            "127.0.0.1", port, retry=NO_RETRY, timeout_s=5.0
        ) as client:
            assert client.health() == {}
            # EOF on the *redialed* (fresh after the first EOF) connection
            # must not trigger a second blind resend — a non-idempotent
            # request could otherwise double-apply.
            with pytest.raises(ServiceError):
                client.health()
        thread.join(timeout=5.0)
