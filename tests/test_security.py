"""Tests for the executable SCPA security games and attacks (Sec. IV/VII)."""

from __future__ import annotations

import random

import pytest

from repro.core.crse1 import CRSE1Scheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse1, group_for_crse2
from repro.security.attacks import (
    CoBoundaryDataAdversary,
    CoBoundaryQueryAdversary,
    RandomGuessAdversary,
)
from repro.security.games import (
    DataPrivacyGame,
    GameViolation,
    QueryPrivacyGame,
)
from repro.security.leakage import (
    Leakage,
    data_privacy_admissible,
    leakage,
    query_privacy_admissible,
    same_concentric_circle,
)

TRIALS = 16


@pytest.fixture(scope="module")
def crse2():
    rng = random.Random(81)
    space = DataSpace(2, 16)
    return CRSE2Scheme(space, group_for_crse2(space, "fast", rng))


@pytest.fixture(scope="module")
def crse1():
    rng = random.Random(82)
    space = DataSpace(2, 16)
    return CRSE1Scheme(
        space, group_for_crse1(space, 4, "fast", rng), r_squared=4
    )


CIRCLE = Circle.from_radius((8, 8), 2)


def _data_adversary():
    # d0 = (8,9): distance² 1; d1 = (9,9): distance² 2; helper (7,8): 1.
    return CoBoundaryDataAdversary(
        circle=CIRCLE, d0=(8, 9), d1=(9, 9), helper=(7, 8)
    )


def _query_adversary():
    return CoBoundaryQueryAdversary(
        q0=Circle.from_radius((8, 8), 2),
        q1=Circle.from_radius((9, 8), 2),
        probe=(8, 9),
        helper=(7, 8),
    )


class TestLeakageFunction:
    def test_leakage_fields(self):
        l = leakage((8, 9), CIRCLE)
        assert l == Leakage(inside=True, r_squared=4)

    def test_admissibility_predicates(self):
        # (8,9) is inside both circles of equal radius → admissible.
        q0, q1 = Circle.from_radius((8, 8), 2), Circle.from_radius((9, 8), 2)
        assert query_privacy_admissible((8, 9), q0, q1)
        # (6,8) is inside q0 (d²=4) but outside q1 (d²=9) → not admissible.
        assert not query_privacy_admissible((6, 8), q0, q1)
        assert data_privacy_admissible((8, 9), (9, 9), q0)
        assert not data_privacy_admissible((8, 9), (12, 8), q0)

    def test_same_concentric_circle(self):
        assert same_concentric_circle((8, 9), (7, 8), CIRCLE)
        assert not same_concentric_circle((8, 9), (9, 9), CIRCLE)
        assert not same_concentric_circle((8, 9), (12, 12), CIRCLE)


class TestCRSE2Weakness:
    """The paper's Fig. 18/19 analysis, executed."""

    def test_coboundary_attack_wins_data_game(self, crse2):
        wins = sum(
            DataPrivacyGame(scheme=crse2, rng=random.Random(0x9E3779B97F4A7C15 * t + 1)).run(
                _data_adversary()
            )
            for t in range(TRIALS)
        )
        assert wins == TRIALS  # advantage 1/2: distinguishes outright

    def test_coboundary_attack_wins_query_game(self, crse2):
        wins = sum(
            QueryPrivacyGame(scheme=crse2, rng=random.Random(0x9E3779B97F4A7C15 * t + 2)).run(
                _query_adversary()
            )
            for t in range(TRIALS)
        )
        assert wins == TRIALS

    def test_strengthened_data_game_blocks_attack(self, crse2):
        adversary = _data_adversary()
        DataPrivacyGame(
            scheme=crse2, rng=random.Random(1), strengthened=True
        ).run(adversary)
        assert adversary.violated

    def test_strengthened_query_game_blocks_attack(self, crse2):
        adversary = _query_adversary()
        QueryPrivacyGame(
            scheme=crse2, rng=random.Random(2), strengthened=True
        ).run(adversary)
        assert adversary.violated


class TestCRSE1Strength:
    def test_coboundary_attack_fails_against_crse1(self, crse1):
        # CRSE-I tokens are indivisible: the attack collapses to a constant
        # guess, winning about half the time.
        wins = sum(
            DataPrivacyGame(scheme=crse1, rng=random.Random(0x9E3779B97F4A7C15 * t + 3)).run(
                _data_adversary()
            )
            for t in range(TRIALS)
        )
        assert 0.2 * TRIALS <= wins <= 0.8 * TRIALS


class TestGameMechanics:
    def test_random_guess_near_half(self, crse2):
        # Seeds are hashed apart: Mersenne Twister streams from sequential
        # integer seeds correlate at equal draw indices.
        wins = sum(
            DataPrivacyGame(
                scheme=crse2, rng=random.Random(0x9E3779B97F4A7C15 * t + 11)
            ).run(RandomGuessAdversary(rng=random.Random(0xC2B2AE3D27D4EB4F * t + 7)))
            for t in range(TRIALS)
        )
        assert 0.2 * TRIALS <= wins <= 0.8 * TRIALS

    def test_unequal_challenge_radii_rejected(self, crse2):
        adversary = RandomGuessAdversary(
            rng=random.Random(0),
            q0=Circle.from_radius((8, 8), 1),
            q1=Circle.from_radius((8, 8), 2),
        )
        game = QueryPrivacyGame(scheme=crse2, rng=random.Random(0))
        # choose_challenge returns (d0, d1) for data games; build a query
        # adversary shim returning circles of unequal radius.
        adversary.d0, adversary.d1 = adversary.q0, adversary.q1  # type: ignore
        with pytest.raises(GameViolation):
            game.run(adversary)

    def test_inadmissible_token_request_rejected(self, crse2):
        class BadAdversary:
            def choose_challenge(self):
                return ((8, 9), (12, 8))  # inside vs far outside

            def attack(self, oracle, challenge):
                # (8,8)-radius-2 contains d0 but not d1: inadmissible.
                oracle.request_token(CIRCLE)
                return 0

        game = DataPrivacyGame(scheme=crse2, rng=random.Random(5))
        with pytest.raises(GameViolation):
            game.run(BadAdversary())

    def test_inadmissible_ciphertext_request_rejected(self, crse2):
        class BadAdversary:
            def choose_challenge(self):
                return (
                    Circle.from_radius((8, 8), 2),
                    Circle.from_radius((11, 8), 2),
                )

            def attack(self, oracle, challenge):
                # (8,8) is inside q0, outside q1: inadmissible request.
                oracle.request_ciphertext((8, 8))
                return 0

        game = QueryPrivacyGame(scheme=crse2, rng=random.Random(6))
        with pytest.raises(GameViolation):
            game.run(BadAdversary())

    def test_admissible_requests_pass(self, crse2):
        class HonestAdversary:
            def choose_challenge(self):
                return ((8, 9), (9, 9))

            def attack(self, oracle, challenge):
                oracle.request_ciphertext((0, 0))  # unrestricted in Def. 3
                # (8,8) radius 3 contains both challenge records.
                token = oracle.request_token(Circle.from_radius((8, 8), 3))
                assert oracle.observe(token, challenge).matched
                return 0

        game = DataPrivacyGame(scheme=crse2, rng=random.Random(7))
        game.run(HonestAdversary())
