"""The verifiable-search subsystem: tags, proofs, and the tamper matrix.

Unit tests pin the primitives (tag derivation, the XOR accumulator, the
shard registry, the client verifier), then an end-to-end battery drives
a real server — in-process via the dispatcher and over TCP through
:class:`ServiceClient` — and checks that every tamper class the threat
model names is detected *client-side* as a typed
:class:`~repro.errors.IntegrityError`:

* a forged authenticity tag,
* a bit-flipped ciphertext payload,
* a matching record silently dropped from the reply,
* a stale accumulator proof replayed after a delete (and after
  compaction rewrote the log),
* the integrity section stripped from the reply entirely.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import UploadDataset, UploadRecord
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import Circle, DataSpace
from repro.core.provision import group_for_crse2
from repro.errors import IntegrityError, ProtocolError
from repro.integrity import (
    EMPTY_ROOT,
    TAG_BYTES,
    IntegrityState,
    ResultVerifier,
    SetAccumulator,
    ShardIntegrity,
    TagKeys,
    header_fingerprint,
    membership_tag,
    payload_digest,
    record_tag,
    verify_record_tag,
    xor_fold,
)
from repro.service import ServerThread, ServiceClient, protocol
from repro.service.engine import SearchEngine
from repro.service.schemeio import scheme_header
from repro.service.server import ServiceConfig, ServiceServer
from repro.storage import RecordStore


@pytest.fixture(scope="module")
def env():
    rng = random.Random(0x7A65)
    space = DataSpace(2, 32)
    scheme = CRSE2Scheme(space, group_for_crse2(space, "fast", rng))
    key = scheme.gen_key(rng)
    points = [(16, 16), (17, 17), (30, 2), (2, 30), (10, 10), (16, 18)]
    keys = TagKeys.derive(scheme, key)
    records = []
    for identifier, point in enumerate(points):
        payload = encode_ciphertext(scheme, scheme.encrypt(key, point, rng))
        records.append(
            UploadRecord(
                identifier=identifier,
                payload=payload,
                content=f"record-{identifier}".encode(),
                tag=record_tag(keys, identifier, payload),
                mtag=membership_tag(keys, identifier),
            )
        )
    dataset = UploadDataset(records=tuple(records))
    token = encode_token(
        scheme, scheme.gen_token(key, Circle.from_radius((16, 16), 3), rng)
    )
    return scheme, key, points, dataset, token, keys


def flip_hex(text: str) -> str:
    """Flip one bit of a hex string (tamper helper)."""
    raw = bytearray(bytes.fromhex(text))
    raw[0] ^= 0x01
    return bytes(raw).hex()


def dispatch(server: ServiceServer, verb: str, fields: dict) -> dict:
    request = protocol.Request(
        verb=verb, request_id=1, deadline_ms=None, fields=fields
    )
    return asyncio.run(server._dispatch(request))


def make_server(scheme, store=None) -> ServiceServer:
    return ServiceServer(
        scheme,
        config=ServiceConfig(workers=1),
        engine=SearchEngine(scheme, workers=1),
        store=store,
    )


def stop(server: ServiceServer) -> None:
    server.engine.close(wait=True)
    if server.store is not None:
        server.store.close()


def verified_search(server: ServiceServer, token: bytes) -> dict:
    from repro.cloud.messages import SearchRequest

    return dispatch(
        server,
        "search",
        protocol.search_fields(SearchRequest(payload=token), verify=True),
    )


class TestTagPrimitives:
    def test_tags_are_deterministic_and_sized(self, env):
        scheme, key, _, dataset, _, keys = env
        record = dataset.records[0]
        assert record.tag == record_tag(keys, 0, record.payload)
        assert record.mtag == membership_tag(keys, 0)
        assert len(record.tag) == len(record.mtag) == TAG_BYTES

    def test_keys_bound_to_scheme_header(self, env):
        scheme, key, _, _, _, keys = env
        assert keys.header_fp == header_fingerprint(scheme)
        other = TagKeys.from_secret(b"x" * 32, b"other-header")
        assert other.record_key != keys.record_key

    def test_repr_is_redacted(self, env):
        _, _, _, _, _, keys = env
        assert repr(keys) == "TagKeys(<redacted>)"
        assert keys.record_key.hex() not in repr(keys)

    def test_verify_record_tag_rejects_forgery(self, env):
        _, _, _, dataset, _, keys = env
        record = dataset.records[0]
        digest = payload_digest(record.payload)
        assert verify_record_tag(keys, 0, digest, record.tag)
        assert not verify_record_tag(keys, 1, digest, record.tag)
        assert not verify_record_tag(
            keys, 0, payload_digest(b"flipped"), record.tag
        )


class TestAccumulator:
    def test_add_remove_roundtrip(self):
        acc = SetAccumulator()
        tags = [bytes([i]) * TAG_BYTES for i in range(1, 4)]
        for tag in tags:
            acc.add(tag)
        assert acc.count == 3
        assert acc.root == xor_fold(tags)
        for tag in tags:
            acc.remove(tag)
        assert acc.root == EMPTY_ROOT
        assert acc.count == 0
        assert acc.version == 6

    def test_remove_on_empty_raises(self):
        with pytest.raises(IntegrityError):
            SetAccumulator().remove(b"\x01" * TAG_BYTES)

    def test_fold_rejects_wrong_length(self):
        with pytest.raises(IntegrityError):
            xor_fold([b"short"])


class TestShardIntegrity:
    def test_duplicate_identifier_rejected(self, env):
        _, _, _, dataset, _, _ = env
        shard = ShardIntegrity()
        record = dataset.records[0]
        shard.add(0, record.payload, record.tag, record.mtag)
        with pytest.raises(IntegrityError):
            shard.add(0, record.payload, record.tag, record.mtag)

    def test_untagged_record_makes_shard_incomplete(self, env):
        _, _, _, dataset, token, _ = env
        shard = ShardIntegrity()
        shard.add(0, dataset.records[0].payload, b"", b"")
        assert not shard.complete
        with pytest.raises(IntegrityError):
            shard.proof_for([], token)

    def test_proof_size_independent_of_matches(self, env):
        _, _, _, dataset, token, _ = env
        shard = ShardIntegrity()
        for record in dataset.records:
            shard.add(record.identifier, record.payload, record.tag, record.mtag)
        none = shard.proof_for([], token)
        all_ids = [r.identifier for r in dataset.records]
        everything = shard.proof_for(all_ids, token)
        assert set(none) == set(everything)
        assert len(none["complement"]) == len(everything["complement"])


class TestVerifierUnit:
    """The verifier against a locally assembled (honest) shard."""

    @pytest.fixture()
    def shard_reply(self, env):
        _, _, _, dataset, token, _ = env
        shard = ShardIntegrity()
        for record in dataset.records:
            shard.add(record.identifier, record.payload, record.tag, record.mtag)
        matched = [0, 1, 5]
        section = {
            "matches": shard.matches_section(matched),
            "shards": [shard.proof_for(matched, token)],
        }
        return matched, section

    def test_honest_reply_verifies(self, env, shard_reply):
        _, _, _, dataset, token, keys = env
        matched, section = shard_reply
        state = IntegrityState()
        state.note_upload(keys, (r.identifier for r in dataset.records))
        report = ResultVerifier(keys).verify(token, matched, section, state)
        assert report.records == len(matched)
        assert report.shards == 1
        assert report.state_checked

    def test_wrong_token_detected(self, env, shard_reply):
        _, _, _, _, token, keys = env
        matched, section = shard_reply
        with pytest.raises(IntegrityError, match="different token"):
            ResultVerifier(keys).verify(b"other-token", matched, section)

    def test_extra_claimed_match_detected(self, env, shard_reply):
        _, _, _, _, token, keys = env
        matched, section = shard_reply
        with pytest.raises(IntegrityError, match="disagrees"):
            ResultVerifier(keys).verify(token, [*matched, 2], section)


def tamper_none(fields: dict) -> None:
    """Identity tamper: the honest control."""


def tamper_forge_tag(fields: dict) -> None:
    entry = fields["integrity"]["matches"][0]
    entry[2] = flip_hex(entry[2])


def tamper_flip_payload(fields: dict) -> None:
    entry = fields["integrity"]["matches"][0]
    entry[1] = flip_hex(entry[1])


def tamper_drop_match(fields: dict) -> None:
    dropped = fields["integrity"]["matches"].pop(0)
    fields["identifiers"] = [
        i for i in fields["identifiers"] if i != dropped[0]
    ]


def tamper_strip_section(fields: dict) -> None:
    fields.pop("integrity")


TAMPERS = {
    "forged tag": (tamper_forge_tag, "authenticity tag"),
    "flipped payload": (tamper_flip_payload, "authenticity tag"),
    "dropped match": (tamper_drop_match, "does not balance"),
}


class TestEndToEndTamperMatrix:
    """Dispatcher-level end-to-end: real engine, tampered reply fields."""

    @pytest.fixture(scope="class")
    def served(self, env):
        scheme, _, _, dataset, token, _ = env
        server = make_server(scheme)
        server.ingest(dataset)
        fields = verified_search(server, token)
        yield fields, token
        stop(server)

    def test_honest_reply_verifies(self, env, served):
        _, _, _, dataset, _, keys = env
        fields, token = served
        state = IntegrityState()
        state.note_upload(keys, (r.identifier for r in dataset.records))
        section = protocol.integrity_section_from_fields(fields)
        report = ResultVerifier(keys).verify(
            token, fields["identifiers"], section, state
        )
        assert report.records == len(fields["identifiers"]) > 0

    @pytest.mark.parametrize("name", sorted(TAMPERS))
    def test_tamper_detected(self, env, served, name):
        import copy

        _, _, _, dataset, _, keys = env
        fields, token = served
        tamper, expected = TAMPERS[name]
        tampered = copy.deepcopy(fields)
        tamper(tampered)
        state = IntegrityState()
        state.note_upload(keys, (r.identifier for r in dataset.records))
        section = protocol.integrity_section_from_fields(tampered)
        with pytest.raises(IntegrityError, match=expected):
            ResultVerifier(keys).verify(
                token, tampered["identifiers"], section, state
            )

    def test_untagged_upload_makes_verify_unavailable(self, env):
        scheme, _, _, dataset, token, _ = env
        server = make_server(scheme)
        server.ingest(
            UploadDataset(
                records=tuple(
                    UploadRecord(identifier=r.identifier, payload=r.payload)
                    for r in dataset.records
                )
            )
        )
        try:
            with pytest.raises(ProtocolError, match="verification unavailable"):
                verified_search(server, token)
        finally:
            stop(server)


class TestReplayAfterDeleteAndCompaction:
    """A pre-delete proof must not verify against the client's state."""

    def test_stale_proof_rejected_fresh_proof_accepted(self, env, tmp_path):
        scheme, _, _, dataset, token, keys = env
        store = RecordStore.open_or_create(tmp_path, scheme_header(scheme))
        server = make_server(scheme, store=store)
        server.ingest(dataset)
        state = IntegrityState()
        state.note_upload(keys, (r.identifier for r in dataset.records))

        stale = verified_search(server, token)
        stale_section = protocol.integrity_section_from_fields(stale)
        matched = list(stale["identifiers"])
        assert matched, "fixture query must match something"

        # Delete one matching record; the client notes it.
        victim = matched[0]
        dispatch(
            server,
            "delete",
            protocol.delete_fields(_delete_req((victim,))),
        )
        state.note_delete(keys, (victim,))

        # The replayed pre-delete reply is globally consistent with
        # itself — only the client's own state exposes it.
        with pytest.raises(IntegrityError, match="expected state|attest"):
            ResultVerifier(keys).verify(
                token, matched, stale_section, state
            )

        # A fresh proof over the post-delete dataset verifies.
        fresh = verified_search(server, token)
        report = ResultVerifier(keys).verify(
            token,
            fresh["identifiers"],
            protocol.integrity_section_from_fields(fresh),
            state,
        )
        assert victim not in fresh["identifiers"]
        assert report.state_checked
        stop(server)

        # Compaction rewrites the log; a rebuilt server still proves the
        # same accumulator state, and the stale proof still fails.
        with RecordStore.open(tmp_path) as reopened:
            reopened.compact()
        revived = make_server(
            scheme, store=RecordStore.open(tmp_path)
        )
        try:
            after = verified_search(revived, token)
            ResultVerifier(keys).verify(
                token,
                after["identifiers"],
                protocol.integrity_section_from_fields(after),
                state,
            )
            with pytest.raises(IntegrityError):
                ResultVerifier(keys).verify(
                    token, matched, stale_section, state
                )
        finally:
            stop(revived)


def _delete_req(identifiers):
    from repro.cloud.messages import DeleteRequest

    return DeleteRequest(identifiers=tuple(identifiers))


class StrippingServer(ServiceServer):
    """A malicious server that answers but drops the integrity section."""

    async def _do_search(self, request: protocol.Request) -> dict:
        fields = await super()._do_search(request)
        fields.pop("integrity", None)
        return fields


class ForgingServer(ServiceServer):
    """A malicious server that flips a tag bit in every verified reply."""

    async def _do_search(self, request: protocol.Request) -> dict:
        fields = await super()._do_search(request)
        section = fields.get("integrity")
        if section and section["matches"]:
            section["matches"][0][2] = flip_hex(section["matches"][0][2])
        return fields


class TestOverTheWire:
    """The same detections hold across real TCP via ServiceClient."""

    def run_server(self, env, cls):
        scheme, _, _, dataset, _, _ = env
        server = cls(scheme, config=ServiceConfig(workers=1))
        server.ingest(dataset)
        return ServerThread(server)

    def test_honest_search_verified(self, env):
        scheme, _, _, dataset, token, keys = env
        thread = self.run_server(env, ServiceServer)
        port = thread.start()
        try:
            client = ServiceClient("127.0.0.1", port)
            response, stats, section = client.search_verified(token)
            state = IntegrityState()
            state.note_upload(keys, (r.identifier for r in dataset.records))
            report = ResultVerifier(keys).verify(
                token, response.identifiers, section, state
            )
            assert report.shards == 1
            assert stats["matches"] == len(response.identifiers)
        finally:
            thread.stop()

    def test_proof_stripping_detected(self, env):
        _, _, _, _, token, _ = env
        thread = self.run_server(env, StrippingServer)
        port = thread.start()
        try:
            client = ServiceClient("127.0.0.1", port)
            with pytest.raises(IntegrityError, match="no integrity section"):
                client.search_verified(token)
        finally:
            thread.stop()

    def test_wire_level_forgery_detected(self, env):
        _, _, _, _, token, keys = env
        thread = self.run_server(env, ForgingServer)
        port = thread.start()
        try:
            client = ServiceClient("127.0.0.1", port)
            response, _, section = client.search_verified(token)
            with pytest.raises(IntegrityError, match="authenticity tag"):
                ResultVerifier(keys).verify(
                    token, response.identifiers, section
                )
        finally:
            thread.stop()

    def test_plain_search_has_no_integrity_section(self, env):
        _, _, _, _, token, _ = env
        thread = self.run_server(env, ServiceServer)
        port = thread.start()
        try:
            client = ServiceClient("127.0.0.1", port)
            response, stats = client.search(token)
            assert response.identifiers
        finally:
            thread.stop()


class TestStatsSurface:
    def test_integrity_stats_reported(self, env):
        scheme, _, _, dataset, token, _ = env
        server = make_server(scheme)
        server.ingest(dataset)
        try:
            snapshot = dispatch(server, "stats", {})
            section = snapshot["integrity"]
            assert section["records"] == len(dataset.records)
            assert section["tags"] == len(dataset.records)
            assert section["complete"] is True
            assert section["last_proof"] == "never"
            verified_search(server, token)
            snapshot = dispatch(server, "stats", {})
            assert snapshot["integrity"]["last_proof"] == "served"
        finally:
            stop(server)
