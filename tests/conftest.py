"""Shared fixtures: seeded randomness, cached groups, and small schemes.

Group construction and key generation are cached at session scope so the
suite stays fast; every test that needs fresh randomness derives its own
seeded ``random.Random`` instead of mutating a shared one.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    CRSE1Scheme,
    CRSE2Scheme,
    DataSpace,
    group_for_crse1,
    group_for_crse2,
)
from repro.crypto.groups import (
    FastCompositeGroup,
    SupersingularPairingGroup,
    toy_params,
)


@pytest.fixture
def rng() -> random.Random:
    """A per-test deterministic randomness source."""
    return random.Random(0xDECAF)


@pytest.fixture(scope="session")
def pairing_group() -> SupersingularPairingGroup:
    """The real curve backend at toy (fast) parameters."""
    return SupersingularPairingGroup(toy_params())


@pytest.fixture(scope="session")
def fast_group() -> FastCompositeGroup:
    """The fast backend at the same toy parameters."""
    return FastCompositeGroup(toy_params().subgroup_primes)


@pytest.fixture(scope="session")
def small_space() -> DataSpace:
    """An 8×8 two-dimensional data space (exhaustively enumerable)."""
    return DataSpace(w=2, t=8)


@pytest.fixture(scope="session")
def medium_space() -> DataSpace:
    """A 64×64 space for workload-style tests."""
    return DataSpace(w=2, t=64)


@pytest.fixture(scope="session")
def crse2_fast(medium_space) -> tuple[CRSE2Scheme, object]:
    """A CRSE-II scheme on the fast backend, with a generated key."""
    rng = random.Random(11)
    scheme = CRSE2Scheme(
        medium_space, group_for_crse2(medium_space, "fast", rng)
    )
    key = scheme.gen_key(rng)
    return scheme, key


@pytest.fixture(scope="session")
def crse1_fast(small_space) -> tuple[CRSE1Scheme, object]:
    """A CRSE-I scheme (R² = 4) on the fast backend, with a key."""
    rng = random.Random(13)
    scheme = CRSE1Scheme(
        small_space,
        group_for_crse1(small_space, 4, "fast", rng),
        r_squared=4,
    )
    key = scheme.gen_key(rng)
    return scheme, key
