"""EC2-calibrated cost model: operation counts → paper-scale milliseconds.

The paper measures on an Amazon EC2 medium instance (2×2.5 GHz, 4 GB) with
GMP+PBC, reporting "the average running time of a pairing operation with
the preprocessing model in PBC is around 0.44 milliseconds".  Our backends
run pure Python, so absolute wall-clock differs by a constant factor; to
compare *shapes and scales* against the paper we translate operation counts
(:mod:`repro.analysis.opcount`) through per-operation constants.

``PAPER_EC2_MODEL``'s exponentiation constant is back-solved from the
paper's own numbers and is self-consistent across all of them:

* CRSE-II encryption at ``w=2`` is 40 exponentiations; the paper reports
  5.61 ms → 0.14 ms/exp.
* CRSE-II token generation is 46 exps/sub-token; the paper reports
  329.47 ms at ``m = 44`` → 7.49 ms/sub-token → 0.16 ms/exp.
* CRSE-II average search at ``R = 10`` is ``m/2 = 22`` sub-token queries ×
  10 pairings × 0.44 ms ≈ 97 ms; the paper reports 98.65 ms.

``measure_calibration`` times a live backend instead, for honest "our
hardware" numbers next to the paper-scale ones in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.analysis.opcount import OpCount
from repro.crypto.groups.base import CompositeBilinearGroup

__all__ = [
    "CostModel",
    "PAPER_EC2_MODEL",
    "QueryLatencyEstimate",
    "estimate_query_latency",
    "measure_calibration",
]


@dataclass(frozen=True)
class CostModel:
    """Per-operation time constants, in milliseconds.

    ``final_exp_ms`` prices the pairing final exponentiations that
    :class:`~repro.analysis.opcount.OpCount` tracks separately from Miller
    loops.  It defaults to 0.0 because the paper's 0.44 ms/pairing figure
    is for a *complete* pairing (Miller loop plus its own final
    exponentiation): keeping the collapse un-credited in ``pairing_ms``
    makes the paper-scale predictions conservative, while a measured model
    can split the two to show the product-of-pairings saving.
    """

    pairing_ms: float
    exponentiation_ms: float
    multiplication_ms: float
    final_exp_ms: float = 0.0
    label: str = "custom"

    def time_ms(self, ops: OpCount) -> float:
        """Predicted milliseconds for an operation count."""
        return (
            ops.pairings * self.pairing_ms
            + ops.exponentiations * self.exponentiation_ms
            + ops.multiplications * self.multiplication_ms
            + ops.final_exps * self.final_exp_ms
        )

    def time_s(self, ops: OpCount) -> float:
        """Predicted seconds for an operation count."""
        return self.time_ms(ops) / 1000.0


#: The paper's EC2 medium instance with PBC preprocessing (Sec. VIII).
PAPER_EC2_MODEL = CostModel(
    pairing_ms=0.44,
    exponentiation_ms=0.15,
    multiplication_ms=0.002,
    label="paper-ec2-medium",
)


@dataclass(frozen=True)
class QueryLatencyEstimate:
    """Breakdown of one end-to-end circular query, in milliseconds."""

    token_generation_ms: float
    token_transfer_ms: float
    server_search_ms: float
    response_transfer_ms: float

    @property
    def total_ms(self) -> float:
        """Sum of all phases."""
        return (
            self.token_generation_ms
            + self.token_transfer_ms
            + self.server_search_ms
            + self.response_transfer_ms
        )


def estimate_query_latency(
    m: int,
    n_records: int,
    model: CostModel,
    w: int = 2,
    expected_matches: int = 0,
    rtt_ms: float = 0.0,
    bandwidth_mbps: float = 0.0,
    element_bytes: int = 64,
) -> QueryLatencyEstimate:
    """End-to-end latency model for one CRSE-II query.

    Combines the crypto cost model with the transfer cost of the token
    (``m`` sub-tokens of ``2(w+2)+2`` elements) and the response.  Matching
    records are charged the average case (``m/2`` sub-tokens), misses the
    full ``m`` — the composition behind the paper's Fig. 16 totals, plus
    the network terms the paper leaves implicit.
    """
    from repro.analysis.opcount import (
        crse2_gen_token_ops,
        crse2_search_record_ops,
    )

    token_ms = model.time_ms(crse2_gen_token_ops(m, w))
    misses = max(n_records - expected_matches, 0)
    search_ops = misses * crse2_search_record_ops(m, w) + (
        expected_matches * crse2_search_record_ops(max(1, m // 2), w)
    )
    search_ms = model.time_ms(search_ops)
    token_bytes = m * (2 * (w + 2) + 2) * element_bytes
    response_bytes = 8 * expected_matches

    def transfer(size_bytes: int) -> float:
        cost = rtt_ms
        if bandwidth_mbps > 0:
            cost += size_bytes * 8 / (bandwidth_mbps * 1000.0)
        return cost

    return QueryLatencyEstimate(
        token_generation_ms=token_ms,
        token_transfer_ms=transfer(token_bytes),
        server_search_ms=search_ms,
        response_transfer_ms=transfer(response_bytes),
    )


def measure_calibration(
    group: CompositeBilinearGroup,
    repetitions: int = 20,
    rng: random.Random | None = None,
) -> CostModel:
    """Time one pairing/exponentiation/multiplication on a live backend.

    Args:
        group: The backend to calibrate.
        repetitions: Averaging rounds per operation.
        rng: Randomness for the sampled operands.

    Returns:
        A :class:`CostModel` labelled with the backend's class name.
    """
    rng = rng or random.Random(0xCA11)
    g = group.generator()
    elements = [g ** group.random_exponent(rng) for _ in range(repetitions)]
    exponents = [group.random_exponent(rng) for _ in range(repetitions)]

    started = time.perf_counter()
    for element in elements:
        group.pair(element, g)
    pairing_ms = (time.perf_counter() - started) * 1000.0 / repetitions

    started = time.perf_counter()
    for element, exponent in zip(elements, exponents):
        _ = element**exponent
    exp_ms = (time.perf_counter() - started) * 1000.0 / repetitions

    started = time.perf_counter()
    for element in elements:
        _ = element * g
    mult_ms = (time.perf_counter() - started) * 1000.0 / repetitions

    return CostModel(
        pairing_ms=pairing_ms,
        exponentiation_ms=exp_ms,
        multiplication_ms=mult_ms,
        label=type(group).__name__,
    )
