"""The data owner: key management, dataset encryption, token issuance.

The owner is the only principal holding the CRSE secret key (paper Sec.
III: "The data owner manages the secret keys for encrypting data and
generating search tokens").  Data users are trusted by the owner and obtain
tokens through :class:`repro.cloud.client.DataUser`'s query flow.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.cloud.codec import encode_ciphertext, encode_token
from repro.cloud.messages import (
    QueryRequest,
    TokenResponse,
    UploadDataset,
    UploadRecord,
)
from repro.core.base import CRSEScheme
from repro.core.crse2 import CRSE2Scheme
from repro.crypto.recordcipher import RecordCipher
from repro.errors import ProtocolError
from repro.integrity import TagKeys, membership_tag, record_tag

__all__ = ["DataOwner"]


class DataOwner:
    """Holds the secret key; encrypts records and issues tokens."""

    def __init__(
        self,
        scheme: CRSEScheme,
        rng: random.Random | None = None,
        record_key: bytes | None = None,
    ):
        """Generate a fresh key for *scheme*.

        Args:
            scheme: The CRSE construction to deploy.
            rng: Randomness source; defaults to a fresh system-seeded one.
            record_key: Master key for the traditional-encryption layer
                protecting record contents; generated if omitted.
        """
        self.scheme = scheme
        self._rng = rng or random.Random()
        self._key = scheme.gen_key(self._rng)
        self.record_cipher = RecordCipher(
            record_key if record_key is not None else RecordCipher.generate_key()
        )
        self._next_identifier = 0
        self._tag_keys: TagKeys | None = None
        # identifier → plaintext point, so the owner can interpret results.
        self.directory: dict[int, tuple[int, ...]] = {}

    @property
    def tag_keys(self) -> TagKeys:
        """The result-integrity tag keys, derived once from the secret key.

        Derivation canonicalizes the whole SSW key, so the value is
        cached; the same owner key always yields the same tag keys.
        """
        if self._tag_keys is None:
            self._tag_keys = TagKeys.derive(self.scheme, self._key)
        return self._tag_keys

    # ------------------------------------------------------------------
    def encrypt_dataset(
        self,
        points: Sequence[Sequence[int]],
        contents: Sequence[bytes] | None = None,
    ) -> UploadDataset:
        """Encrypt *points* and build the upload message (flow 1 in Fig. 2).

        Args:
            points: Spatial coordinates, one record each.
            contents: Optional plaintext record bodies; each is protected by
                the independent traditional-encryption layer before upload.

        Raises:
            ProtocolError: If *contents* has a different length than *points*.
        """
        if contents is not None and len(contents) != len(points):
            raise ProtocolError("one content body per point required")
        keys = self.tag_keys
        records = []
        for index, point in enumerate(points):
            identifier = self._next_identifier
            self._next_identifier += 1
            ciphertext = self.scheme.encrypt(self._key, point, self._rng)
            self.directory[identifier] = tuple(point)
            body = b""
            if contents is not None:
                body = self.record_cipher.encrypt(contents[index])
            payload = encode_ciphertext(self.scheme, ciphertext)
            records.append(
                UploadRecord(
                    identifier=identifier,
                    payload=payload,
                    content=body,
                    tag=record_tag(keys, identifier, payload),
                    mtag=membership_tag(keys, identifier),
                )
            )
        return UploadDataset(records=tuple(records))

    def handle_query(self, request: QueryRequest) -> TokenResponse:
        """Tokenize a trusted user's query (flows 2 → 3 in Fig. 2).

        Raises:
            ProtocolError: If radius hiding is requested on a scheme that
                only supports it at key-generation time (CRSE-I).
        """
        if request.hide_radius_to is not None and not isinstance(
            self.scheme, CRSE2Scheme
        ):
            raise ProtocolError(
                "per-query radius hiding requires CRSE-II; CRSE-I fixes the "
                "padding K at key generation"
            )
        if isinstance(self.scheme, CRSE2Scheme):
            token = self.scheme.gen_token(
                self._key,
                request.circle,
                self._rng,
                hide_radius_to=request.hide_radius_to,
            )
        else:
            token = self.scheme.gen_token(self._key, request.circle, self._rng)
        return TokenResponse(payload=encode_token(self.scheme, token))

    def resolve(self, identifiers: Sequence[int]) -> list[tuple[int, ...]]:
        """Map result identifiers back to plaintext points (owner-side)."""
        return [self.directory[i] for i in identifiers]
