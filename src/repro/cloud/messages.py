"""Protocol messages for the outsourced-search system model (paper Fig. 2).

The paper's deployment has three principals and five message flows:

1. data owner → cloud server: the encrypted dataset,
2. data user → data owner: a circular range query (center, radius),
3. data owner → data user: the search token for that query,
4. data user → cloud server: the search token,
5. cloud server → data user: the matching identifiers.

Messages carry already-serialized payloads (bytes), so the channel layer
can do honest byte accounting — the numbers behind the paper's
ciphertext-size and token-size figures are exactly these payload lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.geometry import Circle

__all__ = [
    "UploadRecord",
    "UploadDataset",
    "QueryRequest",
    "TokenResponse",
    "SearchRequest",
    "SearchResponse",
]


@dataclass(frozen=True)
class UploadRecord:
    """One encrypted record as shipped to the server.

    ``payload`` is the searchable CRSE ciphertext of the coordinates;
    ``content`` is the record's body under the independent traditional
    encryption layer the paper assumes (Sec. III) — opaque bytes to the
    server, fetched back by identifier after a search.  ``tag`` and
    ``mtag`` are the result-integrity layer's authenticity and
    membership MACs (:mod:`repro.integrity`) — opaque to the server,
    empty when the owner predates the integrity layer.
    """

    identifier: int
    payload: bytes
    content: bytes = b""
    tag: bytes = b""
    mtag: bytes = b""

    @property
    def size_bytes(self) -> int:
        """Payload size (identifier overhead excluded, as in the paper)."""
        return len(self.payload) + len(self.content)


@dataclass(frozen=True)
class UploadDataset:
    """Message 1: the encrypted dataset."""

    records: tuple[UploadRecord, ...]

    @property
    def size_bytes(self) -> int:
        """Total ciphertext bytes."""
        return sum(record.size_bytes for record in self.records)


@dataclass(frozen=True)
class QueryRequest:
    """Message 2: a data user asks the owner to tokenize a query.

    Sent over the trusted user↔owner channel (the user trusts the data
    owner, paper Sec. III), so it may carry the plaintext circle.
    """

    circle: Circle
    hide_radius_to: int | None = None


@dataclass(frozen=True)
class TokenResponse:
    """Message 3: the owner returns the search token (serialized)."""

    payload: bytes

    @property
    def size_bytes(self) -> int:
        """Token size in bytes — the quantity in Fig. 14 / Table II."""
        return len(self.payload)


@dataclass(frozen=True)
class SearchRequest:
    """Message 4: the user forwards the token to the cloud server."""

    payload: bytes

    @property
    def size_bytes(self) -> int:
        """Token size in bytes."""
        return len(self.payload)


@dataclass(frozen=True)
class SearchResponse:
    """Message 5: identifiers of matching encrypted records."""

    identifiers: tuple[int, ...] = field(default_factory=tuple)

    @property
    def size_bytes(self) -> int:
        """Approximate response size (8 bytes per identifier)."""
        return 8 * len(self.identifiers)


@dataclass(frozen=True)
class FetchRequest:
    """Follow-up: retrieve the encrypted contents of matched records."""

    identifiers: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        """Request size (8 bytes per identifier)."""
        return 8 * len(self.identifiers)


@dataclass(frozen=True)
class FetchResponse:
    """Encrypted record bodies, by identifier."""

    contents: tuple[tuple[int, bytes], ...]

    @property
    def size_bytes(self) -> int:
        """Total encrypted-content bytes (plus 8 per identifier)."""
        return sum(8 + len(body) for _, body in self.contents)


@dataclass(frozen=True)
class DeleteRequest:
    """Dynamic update: remove records by identifier.

    Linear CRSE needs no index maintenance for deletions — one reason the
    paper highlights that trees make "secure dynamic data … another major
    challenging issue" while the linear design stays trivially dynamic.
    """

    identifiers: tuple[int, ...]

    @property
    def size_bytes(self) -> int:
        """Request size (8 bytes per identifier)."""
        return 8 * len(self.identifiers)
