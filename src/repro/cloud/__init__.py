"""Simulated cloud deployment: the paper's system model as running code."""

from repro.cloud.client import DataUser
from repro.cloud.codec import (
    decode_ciphertext,
    decode_token,
    encode_ciphertext,
    encode_token,
)
from repro.cloud.costmodel import (
    PAPER_EC2_MODEL,
    CostModel,
    QueryLatencyEstimate,
    estimate_query_latency,
    measure_calibration,
)
from repro.cloud.deployment import CloudDeployment
from repro.cloud.messages import (
    QueryRequest,
    SearchRequest,
    SearchResponse,
    TokenResponse,
    UploadDataset,
    UploadRecord,
)
from repro.cloud.network import Channel, ChannelStats, LatencyModel
from repro.cloud.owner import DataOwner
from repro.cloud.server import CloudServer, SearchStats

__all__ = [
    "Channel",
    "ChannelStats",
    "CloudDeployment",
    "CloudServer",
    "CostModel",
    "DataOwner",
    "DataUser",
    "LatencyModel",
    "QueryLatencyEstimate",
    "PAPER_EC2_MODEL",
    "QueryRequest",
    "SearchRequest",
    "SearchResponse",
    "SearchStats",
    "TokenResponse",
    "UploadDataset",
    "UploadRecord",
    "decode_ciphertext",
    "decode_token",
    "encode_ciphertext",
    "encode_token",
    "estimate_query_latency",
    "measure_calibration",
]
