"""One-call assembly of the full system model (paper Fig. 2).

``CloudDeployment`` wires a data owner, a cloud server, a data user, and the
two channels between them, then exposes the end-to-end flows: outsource the
dataset, run queries, inspect byte/round accounting.  Examples and
integration tests build on this instead of re-wiring principals by hand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.cloud.client import DataUser
from repro.cloud.messages import SearchResponse
from repro.cloud.network import Channel, LatencyModel
from repro.cloud.owner import DataOwner
from repro.cloud.server import CloudServer
from repro.core.base import CRSEScheme
from repro.core.geometry import Circle

__all__ = ["CloudDeployment"]


@dataclass
class CloudDeployment:
    """A fully wired owner / user / server triple."""

    scheme: CRSEScheme
    owner: DataOwner
    server: CloudServer
    user: DataUser
    owner_channel: Channel
    server_channel: Channel

    @classmethod
    def create(
        cls,
        scheme: CRSEScheme,
        rng: random.Random | None = None,
        latency: LatencyModel | None = None,
    ) -> "CloudDeployment":
        """Stand up the three principals around *scheme*."""
        owner = DataOwner(scheme, rng=rng)
        server = CloudServer(scheme)
        owner_channel = Channel("user<->owner", latency or LatencyModel())
        server_channel = Channel("user<->server", latency or LatencyModel())
        user = DataUser(owner, server, owner_channel, server_channel)
        return cls(
            scheme=scheme,
            owner=owner,
            server=server,
            user=user,
            owner_channel=owner_channel,
            server_channel=server_channel,
        )

    # ------------------------------------------------------------------
    def outsource(
        self,
        points: Sequence[Sequence[int]],
        contents: Sequence[bytes] | None = None,
    ) -> int:
        """Encrypt and upload *points*; returns the upload size in bytes.

        Callable repeatedly — linear CRSE supports incremental additions
        with no index maintenance.
        """
        upload = self.owner.encrypt_dataset(points, contents=contents)
        self.server_channel.deliver(upload)
        self.server.handle_upload(upload)
        return upload.size_bytes

    def delete(self, identifiers: Sequence[int]) -> int:
        """Remove records from the server; returns how many were removed."""
        from repro.cloud.messages import DeleteRequest

        request = DeleteRequest(identifiers=tuple(identifiers))
        self.server_channel.deliver(request)
        removed = self.server.handle_delete(request)
        for identifier in identifiers:
            self.owner.directory.pop(identifier, None)
        return removed

    def query(
        self, circle: Circle, hide_radius_to: int | None = None
    ) -> SearchResponse:
        """Run one circular range query through the full protocol."""
        return self.user.search(circle, hide_radius_to=hide_radius_to)

    def query_points(
        self, circle: Circle, hide_radius_to: int | None = None
    ) -> list[tuple[int, ...]]:
        """Query and resolve identifiers to plaintext points (owner-side)."""
        response = self.query(circle, hide_radius_to=hide_radius_to)
        return self.owner.resolve(response.identifiers)
