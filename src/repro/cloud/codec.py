"""Wire encoding of scheme-level ciphertexts and tokens.

The cloud protocol ships bytes; this codec maps CRSE-I/CRSE-II objects onto
the SSW wire format from :mod:`repro.crypto.serialize`.  A CRSE-II token is
framed as a 2-byte sub-token count followed by the fixed-size SSW token
blobs (sub-token order is exactly the permuted order — the wire must not
re-sort what ``Permute`` shuffled).

Decoding is the untrusted direction: the bytes arrive from the network, so
every framing failure — truncation, an oversized or inconsistent frame,
junk bytes — raises :class:`repro.errors.WireFormatError` (a subclass of
both ``SerializationError`` and ``ProtocolError``) rather than leaking
``ValueError``/``IndexError`` from the parsing internals.
"""

from __future__ import annotations

from repro.core.base import CRSEScheme
from repro.core.crse1 import CRSE1Ciphertext, CRSE1Scheme, CRSE1Token
from repro.core.crse2 import CRSE2Ciphertext, CRSE2Scheme, CRSE2Token
from repro.crypto.serialize import (
    deserialize_ciphertext,
    deserialize_token,
    serialize_ciphertext,
    serialize_token,
)
from repro.errors import SerializationError, WireFormatError

__all__ = [
    "encode_ciphertext",
    "decode_ciphertext",
    "encode_token",
    "decode_token",
    "MAX_SUB_TOKENS",
]

_COUNT_PREFIX = 2

#: Upper bound on CRSE-II sub-tokens accepted off the wire.  The paper's
#: largest sweep (R = 50, w = 2) needs m = 857 sub-tokens; 4096 leaves
#: generous headroom for radius hiding while refusing frames whose declared
#: count would drive a pathological decode loop.
MAX_SUB_TOKENS = 4096


def encode_ciphertext(scheme: CRSEScheme, ciphertext) -> bytes:
    """Serialize a scheme ciphertext for upload."""
    if isinstance(ciphertext, (CRSE1Ciphertext, CRSE2Ciphertext)):
        return serialize_ciphertext(scheme.group, ciphertext.ssw)
    raise SerializationError(
        f"cannot encode ciphertext of type {type(ciphertext).__name__}"
    )


def decode_ciphertext(scheme: CRSEScheme, data: bytes):
    """Deserialize an uploaded ciphertext for the scheme in use.

    Raises:
        WireFormatError: On malformed bytes.
    """
    try:
        ssw = deserialize_ciphertext(scheme.group, data)
    except WireFormatError:
        raise
    except SerializationError as exc:
        raise WireFormatError(f"malformed ciphertext: {exc}") from exc
    if isinstance(scheme, CRSE1Scheme):
        return CRSE1Ciphertext(ssw=ssw)
    if isinstance(scheme, CRSE2Scheme):
        return CRSE2Ciphertext(ssw=ssw)
    raise SerializationError(
        f"cannot decode ciphertexts for scheme {type(scheme).__name__}"
    )


def encode_token(scheme: CRSEScheme, token) -> bytes:
    """Serialize a search token for transmission."""
    if isinstance(token, CRSE1Token):
        return serialize_token(scheme.group, token.ssw)
    if isinstance(token, CRSE2Token):
        chunks = [len(token.sub_tokens).to_bytes(_COUNT_PREFIX, "big")]
        chunks.extend(
            serialize_token(scheme.group, sub) for sub in token.sub_tokens
        )
        return b"".join(chunks)
    raise SerializationError(f"cannot encode token of type {type(token).__name__}")


def decode_token(scheme: CRSEScheme, data: bytes):
    """Deserialize a search token for the scheme in use.

    Raises:
        WireFormatError: On malformed framing or junk bytes.
    """
    if isinstance(scheme, CRSE1Scheme):
        return CRSE1Token(ssw=_deserialize_sub_token(scheme, data))
    if isinstance(scheme, CRSE2Scheme):
        if len(data) < _COUNT_PREFIX:
            raise WireFormatError("truncated CRSE-II token")
        count = int.from_bytes(data[:_COUNT_PREFIX], "big")
        body = data[_COUNT_PREFIX:]
        if count == 0:
            raise WireFormatError("CRSE-II token must have sub-tokens")
        if count > MAX_SUB_TOKENS:
            raise WireFormatError(
                f"CRSE-II token declares {count} sub-tokens "
                f"(limit {MAX_SUB_TOKENS})"
            )
        if len(body) % count != 0:
            raise WireFormatError("CRSE-II token framing is inconsistent")
        chunk = len(body) // count
        subs = tuple(
            _deserialize_sub_token(
                scheme, body[i * chunk : (i + 1) * chunk]
            )
            for i in range(count)
        )
        return CRSE2Token(sub_tokens=subs)
    raise SerializationError(
        f"cannot decode tokens for scheme {type(scheme).__name__}"
    )


def _deserialize_sub_token(scheme: CRSEScheme, data: bytes):
    """Deserialize one SSW token blob, normalizing failures to wire errors."""
    try:
        return deserialize_token(scheme.group, data)
    except WireFormatError:
        raise
    except SerializationError as exc:
        raise WireFormatError(f"malformed token: {exc}") from exc
