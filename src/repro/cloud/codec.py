"""Wire encoding of scheme-level ciphertexts and tokens.

The cloud protocol ships bytes; this codec maps CRSE-I/CRSE-II objects onto
the SSW wire format from :mod:`repro.crypto.serialize`.  A CRSE-II token is
framed as a 2-byte sub-token count followed by the fixed-size SSW token
blobs (sub-token order is exactly the permuted order — the wire must not
re-sort what ``Permute`` shuffled).
"""

from __future__ import annotations

from repro.core.base import CRSEScheme
from repro.core.crse1 import CRSE1Ciphertext, CRSE1Scheme, CRSE1Token
from repro.core.crse2 import CRSE2Ciphertext, CRSE2Scheme, CRSE2Token
from repro.crypto.serialize import (
    deserialize_ciphertext,
    deserialize_token,
    serialize_ciphertext,
    serialize_token,
)
from repro.errors import SerializationError

__all__ = [
    "encode_ciphertext",
    "decode_ciphertext",
    "encode_token",
    "decode_token",
]

_COUNT_PREFIX = 2


def encode_ciphertext(scheme: CRSEScheme, ciphertext) -> bytes:
    """Serialize a scheme ciphertext for upload."""
    if isinstance(ciphertext, (CRSE1Ciphertext, CRSE2Ciphertext)):
        return serialize_ciphertext(scheme.group, ciphertext.ssw)
    raise SerializationError(
        f"cannot encode ciphertext of type {type(ciphertext).__name__}"
    )


def decode_ciphertext(scheme: CRSEScheme, data: bytes):
    """Deserialize an uploaded ciphertext for the scheme in use."""
    ssw = deserialize_ciphertext(scheme.group, data)
    if isinstance(scheme, CRSE1Scheme):
        return CRSE1Ciphertext(ssw=ssw)
    if isinstance(scheme, CRSE2Scheme):
        return CRSE2Ciphertext(ssw=ssw)
    raise SerializationError(
        f"cannot decode ciphertexts for scheme {type(scheme).__name__}"
    )


def encode_token(scheme: CRSEScheme, token) -> bytes:
    """Serialize a search token for transmission."""
    if isinstance(token, CRSE1Token):
        return serialize_token(scheme.group, token.ssw)
    if isinstance(token, CRSE2Token):
        chunks = [len(token.sub_tokens).to_bytes(_COUNT_PREFIX, "big")]
        chunks.extend(
            serialize_token(scheme.group, sub) for sub in token.sub_tokens
        )
        return b"".join(chunks)
    raise SerializationError(f"cannot encode token of type {type(token).__name__}")


def decode_token(scheme: CRSEScheme, data: bytes):
    """Deserialize a search token for the scheme in use.

    Raises:
        SerializationError: On malformed framing.
    """
    if isinstance(scheme, CRSE1Scheme):
        return CRSE1Token(ssw=deserialize_token(scheme.group, data))
    if isinstance(scheme, CRSE2Scheme):
        if len(data) < _COUNT_PREFIX:
            raise SerializationError("truncated CRSE-II token")
        count = int.from_bytes(data[:_COUNT_PREFIX], "big")
        body = data[_COUNT_PREFIX:]
        if count == 0:
            raise SerializationError("CRSE-II token must have sub-tokens")
        if len(body) % count != 0:
            raise SerializationError("CRSE-II token framing is inconsistent")
        chunk = len(body) // count
        subs = tuple(
            deserialize_token(scheme.group, body[i * chunk : (i + 1) * chunk])
            for i in range(count)
        )
        return CRSE2Token(sub_tokens=subs)
    raise SerializationError(
        f"cannot decode tokens for scheme {type(scheme).__name__}"
    )
