"""The data user: query issuance over the one-round protocol.

A data user trusts the data owner (who tokenizes queries) but not the cloud
server.  One circular range search is exactly one round with the server —
``SearchRequest`` out, ``SearchResponse`` back — which is the interaction
pattern the paper sets as a design goal against compute-then-compare
alternatives (Sec. III, "A Straightforward Design").
"""

from __future__ import annotations

from repro.cloud.messages import (
    FetchRequest,
    QueryRequest,
    SearchRequest,
    SearchResponse,
)
from repro.cloud.network import Channel
from repro.cloud.owner import DataOwner
from repro.cloud.server import CloudServer
from repro.core.geometry import Circle

__all__ = ["DataUser"]


class DataUser:
    """A querier wired to a data owner and a cloud server via channels."""

    def __init__(
        self,
        owner: DataOwner,
        server: CloudServer,
        owner_channel: Channel,
        server_channel: Channel,
    ):
        self._owner = owner
        self._server = server
        self._owner_channel = owner_channel
        self._server_channel = server_channel

    def search(
        self, circle: Circle, hide_radius_to: int | None = None
    ) -> SearchResponse:
        """Run one full circular range query.

        Flows 2-5 of Fig. 2: ask the owner for a token, forward it to the
        server, return the server's response.

        Args:
            circle: The query circle.
            hide_radius_to: Optional CRSE-II dummy-token padding ``K``.
        """
        request = QueryRequest(circle=circle, hide_radius_to=hide_radius_to)
        self._owner_channel.deliver(request)
        token = self._owner.handle_query(request)
        self._owner_channel.deliver(token)

        search = SearchRequest(payload=token.payload)
        self._server_channel.deliver(search)
        response = self._server.handle_search(search)
        self._server_channel.deliver(response)
        return response

    def fetch_contents(self, identifiers: tuple[int, ...]) -> dict[int, bytes]:
        """Retrieve and decrypt matched records' contents.

        The server ships the traditional-encryption ciphertexts; decryption
        happens client-side with the record key the (trusted) owner shares
        with its users.
        """
        request = FetchRequest(identifiers=tuple(identifiers))
        self._server_channel.deliver(request)
        response = self._server.handle_fetch(request)
        self._server_channel.deliver(response)
        cipher = self._owner.record_cipher
        return {
            identifier: cipher.decrypt(body)
            for identifier, body in response.contents
        }

    @property
    def server_round_trips(self) -> int:
        """Messages exchanged with the untrusted server, in rounds.

        Exactly one per query — the paper's "minimal one-round client-server
        interaction".
        """
        return self._server_channel.stats.messages // 2
