"""The semi-honest cloud server.

Stores the encrypted dataset and answers search tokens by the paper's
linear scan (Sec. VI-D discusses why linear is the honest baseline for a
first construction).  The server holds only **public** material: the scheme
object (public parameters: data space, group, split form) — never the
secret key.  Consequently everything it can compute is exactly the paper's
leakage function: Boolean match results (access pattern), repeated token
bytes (search pattern), record and query counts (size pattern), and the
sub-token count of CRSE-II tokens (radius pattern).

``parallel_search`` models the paper's closing remark that "the performance
… can be further improved by using parallel computing with multiple
instances of Amazon EC2": records are partitioned across *k* simulated
instances; the reported wall-clock is the slowest partition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cloud.codec import decode_ciphertext, decode_token, encode_ciphertext
from repro.cloud.messages import (
    DeleteRequest,
    FetchRequest,
    FetchResponse,
    SearchRequest,
    SearchResponse,
    UploadDataset,
)
from repro.core.base import CRSEScheme, EncryptedRecord
from repro.core.crse2 import CRSE2Scheme
from repro.errors import ProtocolError

__all__ = ["SearchStats", "CloudServer", "PreparedUpload"]


@dataclass(frozen=True)
class PreparedUpload:
    """A validated, decoded upload batch awaiting commit.

    Produced by :meth:`CloudServer.prepare_upload`; holding one of these
    means every record decoded and no identifier collides, so
    :meth:`CloudServer.commit_upload` cannot fail.  The durable server
    persists the original message bytes between the two steps.
    """

    message: UploadDataset
    decoded: tuple[tuple[EncryptedRecord, bytes], ...]


@dataclass
class SearchStats:
    """Observable work done for one search request.

    ``partitions`` holds the per-partition scan times in milliseconds — one
    entry per simulated instance for :meth:`CloudServer.parallel_search`
    (so benchmarks can report load-balance skew), a single entry for the
    serial path.  ``elapsed_ms`` is the wall-clock of the slowest partition,
    since partitions run independently.
    """

    records_scanned: int = 0
    matches: int = 0
    sub_token_evaluations: int = 0
    elapsed_ms: float = 0.0
    partitions: tuple[float, ...] = ()


@dataclass
class _ServerLog:
    """What a curious server could write down (the leakage function)."""

    uploads: int = 0
    records_stored: int = 0
    queries_served: int = 0
    token_sizes: list[int] = field(default_factory=list)
    sub_token_counts: list[int] = field(default_factory=list)
    access_pattern: list[tuple[int, ...]] = field(default_factory=list)


class CloudServer:
    """Honest-but-curious storage and search service."""

    def __init__(self, scheme: CRSEScheme):
        """Create a server knowing only public scheme parameters."""
        self.scheme = scheme
        self._records: list[EncryptedRecord] = []
        self._contents: dict[int, bytes] = {}
        self.log = _ServerLog()
        self.last_search_stats = SearchStats()

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Number of stored encrypted records (the size pattern)."""
        return len(self._records)

    def prepare_upload(self, message: UploadDataset) -> PreparedUpload:
        """Validate and decode an upload without mutating any state.

        Splitting validation from mutation lets a durable server order the
        steps safely: validate, *then* log to disk, *then*
        :meth:`commit_upload` — so a batch that would be rejected never
        reaches the log, and a batch that reached the log is guaranteed to
        commit.

        Raises:
            ProtocolError: On duplicate identifiers (within the batch or
                against stored records).
            WireFormatError: If a payload does not decode.
        """
        seen = {record.identifier for record in self._records}
        decoded: list[tuple[EncryptedRecord, bytes]] = []
        for upload in message.records:
            if upload.identifier in seen:
                raise ProtocolError(
                    f"duplicate record identifier {upload.identifier}"
                )
            seen.add(upload.identifier)
            ciphertext = decode_ciphertext(self.scheme, upload.payload)
            decoded.append(
                (EncryptedRecord(upload.identifier, ciphertext), upload.content)
            )
        return PreparedUpload(message=message, decoded=tuple(decoded))

    def commit_upload(self, prepared: PreparedUpload) -> None:
        """Apply a validated upload batch to the in-memory state."""
        for record, content in prepared.decoded:
            self._records.append(record)
            if content:
                self._contents[record.identifier] = content
        self.log.uploads += 1
        self.log.records_stored = len(self._records)

    def handle_upload(self, message: UploadDataset) -> None:
        """Store an encrypted dataset (message 1).

        Raises:
            ProtocolError: On duplicate identifiers.
        """
        self.commit_upload(self.prepare_upload(message))

    def handle_fetch(self, message: FetchRequest) -> FetchResponse:
        """Return the encrypted contents of previously matched records.

        Raises:
            ProtocolError: For an unknown identifier.
        """
        contents = []
        for identifier in message.identifiers:
            if identifier not in self._contents:
                raise ProtocolError(
                    f"no stored content for identifier {identifier}"
                )
            contents.append((identifier, self._contents[identifier]))
        return FetchResponse(contents=tuple(contents))

    def export_records(
        self, identifiers: tuple[int, ...]
    ) -> tuple[tuple[int, bytes, bytes], ...]:
        """Re-encode stored records for migration to another shard.

        Returns ``(identifier, payload_bytes, content_bytes)`` rows — the
        codec ciphertext plus the (possibly empty) encrypted content.
        Nothing beyond the paper's leakage is revealed: both byte strings
        are exactly what this honest-but-curious server already holds.

        Raises:
            ProtocolError: For an unknown identifier.
        """
        by_id = {record.identifier: record for record in self._records}
        rows = []
        for identifier in identifiers:
            record = by_id.get(identifier)
            if record is None:
                raise ProtocolError(
                    f"no stored record for identifier {identifier}"
                )
            rows.append(
                (
                    identifier,
                    encode_ciphertext(self.scheme, record.ciphertext),
                    self._contents.get(identifier, b""),
                )
            )
        return tuple(rows)

    def handle_delete(self, message: DeleteRequest) -> int:
        """Remove records (the trivially-dynamic upside of linear search).

        Returns:
            How many records were actually removed.
        """
        doomed = set(message.identifiers)
        before = len(self._records)
        self._records = [
            record for record in self._records if record.identifier not in doomed
        ]
        for identifier in doomed:
            self._contents.pop(identifier, None)
        removed = before - len(self._records)
        self.log.records_stored = len(self._records)
        return removed

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _record_query_leakage(self, message: SearchRequest, token) -> None:
        """Append the per-query leakage every search path must expose."""
        self.log.queries_served += 1
        self.log.token_sizes.append(message.size_bytes)
        if hasattr(token, "num_sub_tokens"):
            self.log.sub_token_counts.append(token.num_sub_tokens)

    def _scan(
        self, token, records: list[EncryptedRecord], stats: SearchStats
    ) -> list[int]:
        """Linear-scan *records* with *token*, accumulating into *stats*."""
        identifiers = []
        for record in records:
            stats.records_scanned += 1
            if isinstance(self.scheme, CRSE2Scheme):
                matched, evaluated = self.scheme.matches_with_stats(
                    token, record.ciphertext
                )
                stats.sub_token_evaluations += evaluated
            else:
                matched = self.scheme.matches(token, record.ciphertext)
                stats.sub_token_evaluations += 1
            if matched:
                identifiers.append(record.identifier)
        return identifiers

    def handle_search(self, message: SearchRequest) -> SearchResponse:
        """Linear-scan search (messages 4 → 5)."""
        token = decode_token(self.scheme, message.payload)
        self._record_query_leakage(message, token)

        stats = SearchStats()
        started = time.perf_counter()
        identifiers = self._scan(token, self._records, stats)
        stats.matches = len(identifiers)
        stats.elapsed_ms = (time.perf_counter() - started) * 1000.0
        stats.partitions = (stats.elapsed_ms,)
        self.last_search_stats = stats
        self.log.access_pattern.append(tuple(identifiers))
        return SearchResponse(identifiers=tuple(identifiers))

    def parallel_search(
        self, message: SearchRequest, instances: int
    ) -> tuple[SearchResponse, SearchStats]:
        """Search with the dataset partitioned over *instances* simulated VMs.

        The recorded leakage (token size, sub-token count, access pattern)
        is identical to :meth:`handle_search` — the partitioning is a
        server-side implementation detail a curious server learns nothing
        extra from.

        Returns:
            The combined response and a :class:`SearchStats` whose
            ``partitions`` field holds each partition's scan time (ms) and
            whose ``elapsed_ms`` is the slowest partition — the simulated
            wall-clock, since partitions run independently on separate
            instances.

        Raises:
            ProtocolError: If *instances* is not positive.
        """
        if instances < 1:
            raise ProtocolError("need at least one instance")
        token = decode_token(self.scheme, message.payload)
        self._record_query_leakage(message, token)
        partitions: list[list[EncryptedRecord]] = [
            self._records[i::instances] for i in range(instances)
        ]
        stats = SearchStats()
        identifiers: list[int] = []
        partition_ms: list[float] = []
        for partition in partitions:
            started = time.perf_counter()
            identifiers.extend(self._scan(token, partition, stats))
            partition_ms.append((time.perf_counter() - started) * 1000.0)
        identifiers.sort()
        stats.matches = len(identifiers)
        stats.partitions = tuple(partition_ms)
        stats.elapsed_ms = max(partition_ms)
        self.last_search_stats = stats
        self.log.access_pattern.append(tuple(identifiers))
        return SearchResponse(identifiers=tuple(identifiers)), stats
