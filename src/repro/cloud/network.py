"""Simulated network channels with byte accounting and a latency model.

The paper's evaluation runs on one EC2 instance and reports crypto time and
object sizes; client↔server transfer cost is implicit in the token and
ciphertext sizes.  The reproduction makes that explicit: every message flow
passes through a :class:`Channel` that records message counts and bytes and
(optionally) accumulates simulated wall-clock under a simple
latency + bandwidth model, so examples and benchmarks can report end-to-end
protocol cost, not just crypto time.

One-round interaction — the design goal the paper contrasts with
compute-then-compare protocols — shows up here directly: a full query is
exactly one ``SearchRequest`` and one ``SearchResponse`` on the
client↔server channel (:class:`repro.cloud.deployment.CloudDeployment`
asserts this in its round accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["LatencyModel", "ChannelStats", "Channel"]


@dataclass(frozen=True)
class LatencyModel:
    """A fixed-RTT plus bandwidth cost model.

    Attributes:
        rtt_ms: One round-trip time charged per message.
        bandwidth_mbps: Link bandwidth in megabits per second; zero or
            negative disables the bandwidth term.
    """

    rtt_ms: float = 0.0
    bandwidth_mbps: float = 0.0

    def transfer_ms(self, size_bytes: int) -> float:
        """Simulated milliseconds to deliver one message of *size_bytes*."""
        cost = self.rtt_ms
        if self.bandwidth_mbps > 0:
            cost += size_bytes * 8 / (self.bandwidth_mbps * 1000.0)
        return cost


@dataclass
class ChannelStats:
    """Running totals for one channel."""

    messages: int = 0
    bytes_sent: int = 0
    simulated_ms: float = 0.0

    def record(self, size_bytes: int, cost_ms: float) -> None:
        """Account for one delivered message."""
        self.messages += 1
        self.bytes_sent += size_bytes
        self.simulated_ms += cost_ms


@dataclass
class Channel:
    """A point-to-point simulated link between two principals.

    Messages are delivered synchronously (returned to the caller); the
    channel only observes and accounts.  Message objects must expose a
    ``size_bytes`` property (all :mod:`repro.cloud.messages` types do).
    """

    name: str
    latency: LatencyModel = field(default_factory=LatencyModel)
    stats: ChannelStats = field(default_factory=ChannelStats)

    def deliver(self, message: Any) -> Any:
        """Deliver *message*, recording its size and simulated latency."""
        size = getattr(message, "size_bytes", 0)
        self.stats.record(size, self.latency.transfer_ms(size))
        return message

    def reset_stats(self) -> None:
        """Zero the counters (e.g. between benchmark repetitions)."""
        self.stats = ChannelStats()
