"""Turn workload query streams into wire-ready search tokens.

Token generation holds the key and burns CPU on crypto, so it happens
up front, synchronously, *outside* the measured load run — the harness
measures the service, not the client's tokenizer.
"""

from __future__ import annotations

import random

from repro.cloud.codec import encode_token

__all__ = ["tokens_for_queries"]


def tokens_for_queries(
    scheme,
    key,
    queries,
    rng: random.Random,
    hide_radius_to: int | None = None,
) -> tuple[bytes, ...]:
    """Encode one search-token payload per query op, in stream order.

    Args:
        scheme: The CRSE scheme the service was keyed with.
        key: The owner's key.
        queries: ``QueryOp`` sequence (e.g. from
            :func:`repro.datasets.workload.generate_query_stream`).
        rng: Token randomness.
        hide_radius_to: Default dummy-padding target for ops that do not
            fix their own ``hide_radius_to``.
    """
    payloads = []
    for op in queries:
        hide = (
            op.hide_radius_to
            if op.hide_radius_to is not None
            else hide_radius_to
        )
        token = scheme.gen_token(key, op.circle, rng, hide_radius_to=hide)
        payloads.append(encode_token(scheme, token))
    return tuple(payloads)
