"""HDR-style latency recorder: log-bucketed histogram with bounded error.

Storing every sample is wasteful at sustained load, and a fixed-bucket
histogram (like the server's :mod:`repro.service.metrics`) trades too much
tail resolution away for a client-side report.  This recorder keeps the
classic high-dynamic-range compromise: microsecond values below 2^7 are
exact, and every larger value lands in a sub-bucket holding the top 7
significant bits of its magnitude — relative quantile error is bounded by
``1/128`` (< 1%) across the whole range, from microseconds to minutes,
using O(occupied buckets) memory.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = ["LatencyRecorder"]

#: Significant bits kept per magnitude; error is bounded by 2^-bits.
_PRECISION_BITS = 7
_PRECISION = 1 << _PRECISION_BITS


class LatencyRecorder:
    """Accumulates latencies (seconds in, milliseconds out)."""

    def __init__(self) -> None:
        """Start empty."""
        self._counts: dict[int, int] = {}
        self.count = 0
        self._min_us: int | None = None
        self._max_us = 0
        self._total_us = 0

    # ------------------------------------------------------------------
    # Bucketing
    # ------------------------------------------------------------------
    @staticmethod
    def _index_of(us: int) -> int:
        if us < _PRECISION:
            return us
        shift = us.bit_length() - _PRECISION_BITS
        return (shift << _PRECISION_BITS) + (us >> shift)

    @staticmethod
    def _value_of(index: int) -> int:
        shift = index >> _PRECISION_BITS
        mantissa = index & (_PRECISION - 1)
        if shift == 0:
            return mantissa
        # Bucket midpoint: halves the worst-case quantile error.
        return (mantissa << shift) + (1 << (shift - 1))

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one latency observation.

        Raises:
            ParameterError: On a negative latency (a clock bug upstream —
                silently clamping would corrupt the tail).
        """
        if seconds < 0:
            raise ParameterError(f"negative latency {seconds!r}")
        us = int(round(seconds * 1e6))
        self._counts[self._index_of(us)] = (
            self._counts.get(self._index_of(us), 0) + 1
        )
        self.count += 1
        self._total_us += us
        self._max_us = max(self._max_us, us)
        self._min_us = us if self._min_us is None else min(self._min_us, us)

    def merge(self, other: LatencyRecorder) -> None:
        """Fold *other*'s observations into this recorder."""
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.count += other.count
        self._total_us += other._total_us
        self._max_us = max(self._max_us, other._max_us)
        if other._min_us is not None:
            self._min_us = (
                other._min_us
                if self._min_us is None
                else min(self._min_us, other._min_us)
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def percentile_ms(self, quantile: float) -> float:
        """The latency at *quantile* (in ``(0, 1]``), in milliseconds.

        Raises:
            ParameterError: On a quantile outside ``(0, 1]``.
        """
        if not 0 < quantile <= 1:
            raise ParameterError(f"quantile {quantile!r} outside (0, 1]")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(quantile * self.count))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                return self._value_of(index) / 1000.0
        return self._max_us / 1000.0

    @property
    def min_ms(self) -> float:
        """Smallest recorded latency (exact, not bucketed)."""
        return (self._min_us or 0) / 1000.0

    @property
    def max_ms(self) -> float:
        """Largest recorded latency (exact, not bucketed)."""
        return self._max_us / 1000.0

    @property
    def mean_ms(self) -> float:
        """Arithmetic mean (exact: totals are kept beside the buckets)."""
        return self._total_us / self.count / 1000.0 if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready summary (what reports and benchmarks persist)."""
        return {
            "count": self.count,
            "min_ms": round(self.min_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.percentile_ms(0.50), 3),
            "p95_ms": round(self.percentile_ms(0.95), 3),
            "p99_ms": round(self.percentile_ms(0.99), 3),
            "p999_ms": round(self.percentile_ms(0.999), 3),
        }
