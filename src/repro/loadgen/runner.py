"""Open- and closed-loop load generation against a running service.

Two canonical driving modes, because they answer different questions:

* **closed loop** — a fixed number of workers, each firing its next query
  the moment the previous reply lands.  Measures the *capacity* of the
  system at a given concurrency: sustained QPS and the latency the system
  settles into under that pressure.
* **open loop** — queries arrive on a fixed schedule (``rate_qps``)
  regardless of whether earlier ones have finished, the way real traffic
  does.  Latency is measured from each query's **intended** start time,
  not its actual send — the coordinated-omission correction: if the
  client stalls behind a slow server, the stall *is* queueing delay and
  must show up in the tail, not be silently edited out of it.

Both runners drive an :class:`~repro.service.aio.AsyncServiceClient`
(anything with awaitable ``search``/``search_batch`` works) and fold every
outcome into a :class:`LoadResult`: ok/busy/deadline/failed counts and an
HDR-style latency histogram.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.errors import (
    DeadlineExceededError,
    ParameterError,
    ServiceBusyError,
)
from repro.loadgen.recorder import LatencyRecorder

__all__ = ["LoadResult", "run_closed_loop", "run_open_loop"]

#: Cap on remembered error messages — enough to diagnose, bounded memory.
_MAX_ERROR_SAMPLES = 8


@dataclass
class LoadResult:
    """Everything one load run observed."""

    mode: str
    requested: int
    ok: int = 0
    busy: int = 0
    deadline: int = 0
    failed: int = 0
    elapsed_s: float = 0.0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    error_samples: list[str] = field(default_factory=list)
    concurrency: int | None = None
    rate_qps: float | None = None
    batch: int = 1
    #: Per-query sorted identifier tuples (request order), populated only
    #: when the run collects results — parity checks need them, pure
    #: throughput runs skip the memory.
    results: list[tuple[int, ...] | None] | None = None

    @property
    def qps(self) -> float:
        """Completed queries per wall-clock second."""
        return self.ok / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def observe_failure(self, exc: BaseException) -> None:
        """Classify and count one failed query."""
        if isinstance(exc, ServiceBusyError):
            self.busy += 1
        elif isinstance(exc, DeadlineExceededError):
            self.deadline += 1
        else:
            self.failed += 1
        if len(self.error_samples) < _MAX_ERROR_SAMPLES:
            self.error_samples.append(f"{type(exc).__name__}: {exc}")

    def to_dict(self) -> dict:
        """JSON-ready summary (what benchmarks persist)."""
        summary = {
            "mode": self.mode,
            "requested": self.requested,
            "ok": self.ok,
            "busy": self.busy,
            "deadline": self.deadline,
            "failed": self.failed,
            "elapsed_s": round(self.elapsed_s, 4),
            "qps": round(self.qps, 1),
            "batch": self.batch,
            "latency": self.latency.to_dict(),
        }
        if self.concurrency is not None:
            summary["concurrency"] = self.concurrency
        if self.rate_qps is not None:
            summary["rate_qps"] = self.rate_qps
        if self.error_samples:
            summary["error_samples"] = list(self.error_samples)
        return summary


async def run_closed_loop(
    client,
    payloads,
    concurrency: int,
    deadline_ms: float | None = None,
    batch: int = 1,
    collect_results: bool = False,
) -> LoadResult:
    """Drive *payloads* through *client* with *concurrency* workers.

    Each worker claims the next unclaimed query (or, with ``batch > 1``,
    the next contiguous chunk, sent as one ``search_batch`` round trip —
    every query in a chunk is charged the chunk's full latency) and fires
    it as soon as its previous one completes.

    Raises:
        ParameterError: On non-positive concurrency or batch, or an
            empty payload list.
    """
    payloads = list(payloads)
    if concurrency < 1:
        raise ParameterError("closed loop needs at least one worker")
    if batch < 1:
        raise ParameterError("batch must be at least 1")
    if not payloads:
        raise ParameterError("load run needs at least one query")
    result = LoadResult(
        mode="closed",
        requested=len(payloads),
        concurrency=concurrency,
        batch=batch,
    )
    if collect_results:
        result.results = [None] * len(payloads)
    position = 0
    started = time.perf_counter()

    async def run_one(index: int) -> None:
        fired = time.perf_counter()
        try:
            response, _stats = await client.search(
                payloads[index], deadline_ms=deadline_ms
            )
        except Exception as exc:
            result.observe_failure(exc)
            return
        result.latency.record(time.perf_counter() - fired)
        result.ok += 1
        if result.results is not None:
            result.results[index] = tuple(sorted(response.identifiers))

    async def run_chunk(indices: list[int]) -> None:
        fired = time.perf_counter()
        try:
            replies = await client.search_batch(
                tuple(payloads[i] for i in indices),
                deadline_ms=deadline_ms,
            )
        except Exception as exc:
            for _ in indices:
                result.observe_failure(exc)
            return
        elapsed = time.perf_counter() - fired
        for index, (response, _stats) in zip(indices, replies):
            result.latency.record(elapsed)
            result.ok += 1
            if result.results is not None:
                result.results[index] = tuple(sorted(response.identifiers))

    async def worker() -> None:
        nonlocal position
        while position < len(payloads):
            # Claim without awaiting in between: single-threaded asyncio
            # makes the read-advance pair atomic.
            start = position
            position = min(start + batch, len(payloads))
            indices = list(range(start, position))
            if batch > 1:
                await run_chunk(indices)
            else:
                await run_one(indices[0])

    await asyncio.gather(*(worker() for _ in range(concurrency)))
    result.elapsed_s = time.perf_counter() - started
    return result


async def run_open_loop(
    client,
    payloads,
    rate_qps: float,
    deadline_ms: float | None = None,
    collect_results: bool = False,
) -> LoadResult:
    """Fire *payloads* at a fixed arrival rate, one query per tick.

    Arrivals are scheduled, not reactive: query *i*'s intended start is
    ``i / rate_qps`` after the run begins, and its latency is measured
    from that intended start even when the client fell behind — the
    coordinated-omission correction described in the module docstring.

    Raises:
        ParameterError: On a non-positive rate or an empty payload list.
    """
    payloads = list(payloads)
    if rate_qps <= 0:
        raise ParameterError("open loop needs a positive arrival rate")
    if not payloads:
        raise ParameterError("load run needs at least one query")
    result = LoadResult(
        mode="open", requested=len(payloads), rate_qps=rate_qps
    )
    if collect_results:
        result.results = [None] * len(payloads)
    started = time.perf_counter()

    async def fire(index: int) -> None:
        intended = started + index / rate_qps
        delay = intended - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            response, _stats = await client.search(
                payloads[index], deadline_ms=deadline_ms
            )
        except Exception as exc:
            result.observe_failure(exc)
            return
        result.latency.record(time.perf_counter() - intended)
        result.ok += 1
        if result.results is not None:
            result.results[index] = tuple(sorted(response.identifiers))

    await asyncio.gather(*(fire(i) for i in range(len(payloads))))
    result.elapsed_s = time.perf_counter() - started
    return result
