"""Load generation: measure sustained query traffic against the service.

The pieces compose into one pipeline:

1. :func:`repro.datasets.workload.generate_query_stream` produces a
   reproducible query stream;
2. :func:`~repro.loadgen.tokens.tokens_for_queries` encrypts it into
   wire-ready tokens (up front, off the clock);
3. :func:`~repro.loadgen.runner.run_closed_loop` /
   :func:`~repro.loadgen.runner.run_open_loop` replay the tokens through
   an :class:`~repro.service.aio.AsyncServiceClient`, folding outcomes
   into a :class:`~repro.loadgen.runner.LoadResult` with an HDR-style
   :class:`~repro.loadgen.recorder.LatencyRecorder`;
4. :func:`~repro.loadgen.report.render_report` /
   :func:`~repro.loadgen.report.saturation_sweep` turn results into the
   numbers that matter: sustained QPS, p50/p95/p99/p999, and the
   concurrency level where the engine saturates.

``repro loadtest`` is the CLI face of this package;
``bench_ablation_async_throughput`` is the benchmark one.
"""

from repro.loadgen.recorder import LatencyRecorder
from repro.loadgen.report import render_report, render_sweep, saturation_sweep
from repro.loadgen.runner import LoadResult, run_closed_loop, run_open_loop
from repro.loadgen.tokens import tokens_for_queries

__all__ = [
    "LatencyRecorder",
    "LoadResult",
    "run_closed_loop",
    "run_open_loop",
    "render_report",
    "render_sweep",
    "saturation_sweep",
    "tokens_for_queries",
]
