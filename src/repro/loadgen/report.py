"""Render load-run results and sweep concurrency to find saturation.

The report format is deliberately greppable — stable ``key=value`` pairs
on the first line (CI smoke checks assert on ``failed=0``) with latency
percentiles spelled out beneath.  The sweep runs the same closed-loop
workload at increasing concurrency and reports QPS per level, which is
the classic way to read off the saturation knee: throughput climbs until
the serial resource (here, the engine's worker pool) is full, then
latency climbs instead.
"""

from __future__ import annotations

from repro.loadgen.runner import LoadResult, run_closed_loop

__all__ = ["render_report", "render_sweep", "saturation_sweep"]


def render_report(result: LoadResult) -> str:
    """Human-readable (and greppable) summary of one load run."""
    lat = result.latency
    shape = f"mode={result.mode}"
    if result.concurrency is not None:
        shape += f" concurrency={result.concurrency}"
    if result.rate_qps is not None:
        shape += f" rate_qps={result.rate_qps:g}"
    if result.batch > 1:
        shape += f" batch={result.batch}"
    lines = [
        f"{shape} requested={result.requested} ok={result.ok} "
        f"busy={result.busy} deadline={result.deadline} "
        f"failed={result.failed}",
        f"elapsed={result.elapsed_s:.3f}s qps={result.qps:.1f}",
        f"latency_ms p50={lat.percentile_ms(0.50):.3f} "
        f"p95={lat.percentile_ms(0.95):.3f} "
        f"p99={lat.percentile_ms(0.99):.3f} "
        f"p999={lat.percentile_ms(0.999):.3f} "
        f"min={lat.min_ms:.3f} max={lat.max_ms:.3f} mean={lat.mean_ms:.3f}",
    ]
    if result.error_samples:
        lines.append("errors: " + "; ".join(result.error_samples))
    return "\n".join(lines)


async def saturation_sweep(
    client,
    payloads,
    concurrency_levels,
    deadline_ms: float | None = None,
    batch: int = 1,
) -> list[LoadResult]:
    """Run the closed-loop workload once per concurrency level, in order.

    Levels run sequentially (a sweep whose levels contend with each
    other measures nothing), reusing one client so connection setup is
    paid once.
    """
    results = []
    for level in concurrency_levels:
        results.append(
            await run_closed_loop(
                client,
                payloads,
                concurrency=level,
                deadline_ms=deadline_ms,
                batch=batch,
            )
        )
    return results


def render_sweep(results) -> str:
    """A fixed-width table of one sweep's per-level outcomes."""
    lines = [
        f"{'conc':>5} {'qps':>9} {'p50_ms':>9} {'p95_ms':>9} "
        f"{'p99_ms':>9} {'ok':>7} {'busy':>5} {'fail':>5}"
    ]
    for result in results:
        lat = result.latency
        lines.append(
            f"{result.concurrency or 0:>5} {result.qps:>9.1f} "
            f"{lat.percentile_ms(0.50):>9.3f} "
            f"{lat.percentile_ms(0.95):>9.3f} "
            f"{lat.percentile_ms(0.99):>9.3f} "
            f"{result.ok:>7} {result.busy:>5} "
            f"{result.failed + result.deadline:>5}"
        )
    return "\n".join(lines)
