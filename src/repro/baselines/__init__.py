"""Baselines: plaintext search structures and the OPE rectangular scheme."""

from repro.baselines.aspe_knn import (
    ASPEKey,
    ASPEScheme,
    recover_key_known_plaintext,
)
from repro.baselines.kdtree import KDTree
from repro.baselines.ope import OPECipher
from repro.baselines.plaintext import GridIndex, linear_circular_search
from repro.baselines.rect_range import (
    EncryptedRectRecord,
    OPERectangularScheme,
    RectToken,
)
from repro.baselines.rtree import Rect, RTree, RTreeStats

__all__ = [
    "ASPEKey",
    "ASPEScheme",
    "EncryptedRectRecord",
    "GridIndex",
    "KDTree",
    "OPECipher",
    "OPERectangularScheme",
    "RTree",
    "RTreeStats",
    "Rect",
    "RectToken",
    "linear_circular_search",
    "recover_key_known_plaintext",
]
