"""Encrypted rectangular range search over OPE — the false-positive baseline.

Paper Sec. II: "Rectangular range search … is an alternative approach to
conduct circular range search … However, this alternative introduces many
false positives" (points inside the circle's minimal bounding rectangle but
outside the circle).  This baseline makes that trade-off measurable:

* each coordinate is encrypted with a per-dimension :class:`OPECipher`;
* a circular query becomes the MBR ``[c_k - ⌈R⌉, c_k + ⌈R⌉]`` per dimension,
  encrypted endpoint-wise;
* the server returns every record whose OPE ciphertexts fall inside the
  encrypted box — no decryption, only the order leakage OPE grants it.

The asymptotic false-positive fraction for a uniform plane is
``1 - π/4 ≈ 21.5%`` of the box; the ablation benchmark checks we land near
it and contrasts with CRSE's exact (zero-false-positive) answers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.baselines.ope import OPECipher
from repro.core.geometry import Circle, DataSpace, point_in_circle
from repro.errors import ParameterError

__all__ = ["EncryptedRectRecord", "RectToken", "OPERectangularScheme"]


@dataclass(frozen=True)
class EncryptedRectRecord:
    """A record as stored by the server: OPE ciphertext per coordinate."""

    identifier: int
    coords: tuple[int, ...]


@dataclass(frozen=True)
class RectToken:
    """An encrypted box: per-dimension (low, high) OPE ciphertexts."""

    lows: tuple[int, ...]
    highs: tuple[int, ...]


class OPERectangularScheme:
    """MBR-over-OPE circular search with inherent false positives."""

    def __init__(self, space: DataSpace, key: int = 0):
        """Set up one OPE cipher per dimension of *space*."""
        self.space = space
        self._ciphers = [
            OPECipher(key=key * 1000 + dim, domain_size=space.t)
            for dim in range(space.w)
        ]

    # ------------------------------------------------------------------
    def encrypt_dataset(
        self, points: Sequence[Sequence[int]]
    ) -> list[EncryptedRectRecord]:
        """Encrypt points coordinate-wise (deterministic, like OPE itself)."""
        records = []
        for identifier, point in enumerate(points):
            point = self.space.validate_point(point)
            records.append(
                EncryptedRectRecord(
                    identifier=identifier,
                    coords=tuple(
                        cipher.encrypt(c)
                        for cipher, c in zip(self._ciphers, point)
                    ),
                )
            )
        return records

    def gen_box_token(
        self, mins: Sequence[int], maxs: Sequence[int]
    ) -> RectToken:
        """Encrypt an explicit axis-aligned box (endpoint-wise OPE).

        Raises:
            ParameterError: If the box leaves the data space or is inverted.
        """
        if len(mins) != self.space.w or len(maxs) != self.space.w:
            raise ParameterError("box bounds must match the space dimension")
        if any(lo > hi for lo, hi in zip(mins, maxs)):
            raise ParameterError("box has min > max")
        self.space.validate_point(tuple(mins))
        self.space.validate_point(tuple(maxs))
        return RectToken(
            lows=tuple(
                cipher.encrypt(lo) for cipher, lo in zip(self._ciphers, mins)
            ),
            highs=tuple(
                cipher.encrypt(hi) for cipher, hi in zip(self._ciphers, maxs)
            ),
        )

    def gen_token(self, circle: Circle) -> RectToken:
        """Encrypt the circle's minimal bounding rectangle, clamped to the space."""
        self.space.validate_circle(circle)
        radius = math.isqrt(circle.r_squared)
        if radius * radius < circle.r_squared:
            radius += 1  # ceil for non-perfect-square r²
        lows = []
        highs = []
        for cipher, c in zip(self._ciphers, circle.center):
            lows.append(cipher.encrypt(max(0, c - radius)))
            highs.append(cipher.encrypt(min(self.space.t - 1, c + radius)))
        return RectToken(lows=tuple(lows), highs=tuple(highs))

    # ------------------------------------------------------------------
    @staticmethod
    def server_search(
        token: RectToken, records: Sequence[EncryptedRectRecord]
    ) -> list[int]:
        """The server's comparison-only scan: identifiers inside the box."""
        if len(token.lows) == 0:
            raise ParameterError("empty token")
        return [
            record.identifier
            for record in records
            if all(
                lo <= c <= hi
                for lo, c, hi in zip(token.lows, record.coords, token.highs)
            )
        ]

    def false_positives(
        self, points: Sequence[Sequence[int]], circle: Circle
    ) -> tuple[list[int], list[int]]:
        """Run the pipeline and split results into true and false positives.

        Returns:
            ``(true_positive_ids, false_positive_ids)`` relative to the
            exact circular predicate.
        """
        records = self.encrypt_dataset(points)
        candidates = self.server_search(self.gen_token(circle), records)
        true_pos = []
        false_pos = []
        for identifier in candidates:
            if point_in_circle(points[identifier], circle):
                true_pos.append(identifier)
            else:
                false_pos.append(identifier)
        return true_pos, false_pos
