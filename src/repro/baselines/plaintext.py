"""Plaintext circular range search baselines.

Ground truth and speed references for the encrypted schemes: the linear
scan every CRSE search is compared against, plus a uniform-grid index —
the simplest faster-than-linear structure — to quantify what the paper
gives up by staying linear (Sec. VI-D, "The Challenge and Trade-off of
Achieving Faster-Than-Linear Search").
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Sequence

from repro.core.geometry import Circle, distance_squared, point_in_circle
from repro.errors import ParameterError

__all__ = ["linear_circular_search", "GridIndex"]


def linear_circular_search(
    points: Iterable[Sequence[int]], circle: Circle
) -> list[tuple[int, ...]]:
    """Scan *points* and return those inside (or on) *circle*."""
    return [tuple(p) for p in points if point_in_circle(p, circle)]


class GridIndex:
    """A uniform bucket grid over integer points.

    Cell size should be on the order of the typical query radius; queries
    visit only the cells overlapping the circle's bounding box and then
    filter exactly.
    """

    def __init__(self, points: Iterable[Sequence[int]], cell_size: int = 8):
        """Index *points* into cells of side *cell_size*.

        Raises:
            ParameterError: If *cell_size* is not positive.
        """
        if cell_size < 1:
            raise ParameterError("cell size must be positive")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, ...], list[tuple[int, ...]]] = defaultdict(list)
        self._count = 0
        for point in points:
            key = tuple(c // cell_size for c in point)
            self._cells[key].append(tuple(point))
            self._count += 1

    def __len__(self) -> int:
        return self._count

    def query(self, circle: Circle) -> list[tuple[int, ...]]:
        """Return all indexed points inside (or on) *circle*."""
        radius = math.isqrt(circle.r_squared) + 1
        lows = [(c - radius) // self.cell_size for c in circle.center]
        highs = [(c + radius) // self.cell_size for c in circle.center]

        results: list[tuple[int, ...]] = []

        def visit(dim: int, key: tuple[int, ...]) -> None:
            if dim == len(circle.center):
                for point in self._cells.get(key, ()):
                    if distance_squared(point, circle.center) <= circle.r_squared:
                        results.append(point)
                return
            for cell in range(lows[dim], highs[dim] + 1):
                visit(dim + 1, key + (cell,))

        visit(0, ())
        return results
