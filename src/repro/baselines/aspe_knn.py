"""Secure kNN via ASPE — the related-work baseline (paper Sec. II, ref. [22]).

Wong et al.'s Asymmetric Scalar-Product-preserving Encryption (SIGMOD'09)
was the first secure-kNN scheme the paper contrasts with: it supports
nearest-neighbor queries over encrypted points with linear search, but

* it answers a *different question* than circular range search — kNN fixes
  the result count, a circular query fixes the radius (the paper's core
  Related Work distinction, demonstrated in the tests); and
* it is "vulnerable under Chosen-Plaintext Attacks": an attacker holding
  ``d + 1`` known (plaintext, ciphertext) pairs recovers the secret matrix
  by solving a linear system — also demonstrated in the tests.

Construction (exact rational arithmetic, see :mod:`repro.math.linalg`):

* point ``p`` → ``p̂ = (p, -½‖p‖²)``, ciphertext ``M^T p̂``;
* query ``q`` → ``q̂ = r·(q, 1)`` for fresh random ``r > 0``, token
  ``M^{-1} q̂``;
* then ``⟨Enc(p), Tok(q)⟩ = r(⟨p,q⟩ - ½‖p‖²) = -r/2·(‖p-q‖² - ‖q‖²)``,
  so ordering the dot products orders the distances — the server ranks
  without learning either side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.errors import CryptoError, ParameterError
from repro.math.linalg import (
    mat_inverse,
    mat_vec,
    random_invertible_matrix,
)

__all__ = ["ASPEKey", "ASPEScheme", "recover_key_known_plaintext"]


@dataclass(frozen=True)
class ASPEKey:
    """The secret invertible matrix and its inverse (both kept client-side)."""

    dimension: int
    matrix_t: tuple[tuple[Fraction, ...], ...]  # M^T, used on points
    matrix_inv: tuple[tuple[Fraction, ...], ...]  # M^{-1}, used on queries


class ASPEScheme:
    """Asymmetric scalar-product-preserving encryption for kNN."""

    def __init__(self, dimension: int):
        """Fix the point dimension ``d`` (vectors are lifted to ``d + 1``)."""
        if dimension < 1:
            raise ParameterError("dimension must be positive")
        self.dimension = dimension

    # ------------------------------------------------------------------
    def gen_key(self, rng: random.Random) -> ASPEKey:
        """Sample the secret invertible matrix ``M``."""
        n = self.dimension + 1
        m = random_invertible_matrix(n, rng)
        m_t = [[m[j][i] for j in range(n)] for i in range(n)]
        m_inv = mat_inverse(m)
        return ASPEKey(
            dimension=self.dimension,
            matrix_t=tuple(tuple(row) for row in m_t),
            matrix_inv=tuple(tuple(row) for row in m_inv),
        )

    def _check(self, key: ASPEKey, vector: Sequence[int]) -> None:
        if key.dimension != self.dimension:
            raise CryptoError("key dimension does not match scheme")
        if len(vector) != self.dimension:
            raise CryptoError(
                f"vector has {len(vector)} coordinates, expected {self.dimension}"
            )

    # ------------------------------------------------------------------
    def encrypt_point(
        self, key: ASPEKey, point: Sequence[int]
    ) -> tuple[Fraction, ...]:
        """Encrypt a database point: ``M^T (p, -½‖p‖²)``."""
        self._check(key, point)
        norm_sq = sum(c * c for c in point)
        lifted = [Fraction(c) for c in point] + [Fraction(-norm_sq, 2)]
        return tuple(mat_vec([list(r) for r in key.matrix_t], lifted))

    def encrypt_query(
        self, key: ASPEKey, query: Sequence[int], rng: random.Random
    ) -> tuple[Fraction, ...]:
        """Tokenize a query point: ``M^{-1} · r(q, 1)`` with fresh ``r > 0``."""
        self._check(key, query)
        r = Fraction(rng.randint(1, 1_000_000))
        lifted = [r * c for c in query] + [r]
        return tuple(mat_vec([list(row) for row in key.matrix_inv], lifted))

    # ------------------------------------------------------------------
    @staticmethod
    def score(
        encrypted_point: Sequence[Fraction], token: Sequence[Fraction]
    ) -> Fraction:
        """The server-computable ranking score (larger = closer)."""
        return sum(
            (a * b for a, b in zip(encrypted_point, token)), Fraction(0)
        )

    @classmethod
    def knn(
        cls,
        token: Sequence[Fraction],
        records: Sequence[tuple[int, tuple[Fraction, ...]]],
        k: int,
    ) -> list[int]:
        """Server-side kNN: identifiers of the *k* highest-scoring records.

        Raises:
            ParameterError: If ``k < 1``.
        """
        if k < 1:
            raise ParameterError("k must be at least 1")
        ranked = sorted(
            records,
            key=lambda item: cls.score(item[1], token),
            reverse=True,
        )
        return [identifier for identifier, _ in ranked[:k]]


def recover_key_known_plaintext(
    scheme: ASPEScheme,
    pairs: Sequence[tuple[Sequence[int], Sequence[Fraction]]],
) -> list[list[Fraction]]:
    """The known-plaintext attack the paper's Related Work cites.

    Given ``d + 1`` known (point, ciphertext) pairs with linearly
    independent lifted points, solve ``lifted_i · X = ciphertext_i`` for the
    secret ``M^T`` column by column.

    Returns:
        The recovered ``M^T``.

    Raises:
        ParameterError: If the pairs are insufficient or dependent.
    """
    n = scheme.dimension + 1
    if len(pairs) < n:
        raise ParameterError(f"need at least {n} known pairs")
    lifted_rows = []
    outputs = []
    for point, ciphertext in pairs[:n]:
        norm_sq = sum(c * c for c in point)
        lifted_rows.append(
            [Fraction(c) for c in point] + [Fraction(-norm_sq, 2)]
        )
        outputs.append(list(ciphertext))
    # ciphertext = M^T · lifted  ⇔  lifted_rows · M = outputs (row-wise),
    # so M = lifted_rows^{-1} · outputs and we return its transpose.
    m = mat_inverse(lifted_rows)
    product = [
        [
            sum((m[i][k] * outputs[k][j] for k in range(n)), Fraction(0))
            for j in range(n)
        ]
        for i in range(n)
    ]
    return [[product[j][i] for j in range(n)] for i in range(n)]
