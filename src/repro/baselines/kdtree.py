"""A k-d tree for exact circular range search and nearest neighbors.

The faster-than-linear plaintext structure the paper cites for encrypted
rectangular range search (Lu, NDSS'12 uses kd-trees) and for the
nearest-neighbor comparison in Related Work.  Supports:

* circular range queries (prune subtrees whose bounding slab cannot meet
  the circle),
* k-nearest-neighbor queries — used to demonstrate the paper's Related
  Work argument that kNN and circular range search answer *different*
  questions even in plaintext.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.geometry import Circle, distance_squared
from repro.errors import ParameterError

__all__ = ["KDTree"]


class _Node:
    __slots__ = ("point", "axis", "left", "right")

    def __init__(self, point: tuple[int, ...], axis: int):
        self.point = point
        self.axis = axis
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None


class KDTree:
    """A static k-d tree built by median splitting."""

    def __init__(self, points: Sequence[Sequence[int]]):
        """Build the tree over integer points (duplicates allowed).

        Raises:
            ParameterError: On inconsistent dimensions.
        """
        pts = [tuple(p) for p in points]
        if pts:
            w = len(pts[0])
            if any(len(p) != w for p in pts):
                raise ParameterError("points must share one dimension")
            self.w = w
        else:
            self.w = 0
        self._size = len(pts)
        self._root = self._build(pts, 0)

    def __len__(self) -> int:
        return self._size

    def _build(self, pts: list[tuple[int, ...]], depth: int) -> "_Node | None":
        if not pts:
            return None
        axis = depth % self.w
        pts.sort(key=lambda p: p[axis])
        mid = len(pts) // 2
        node = _Node(pts[mid], axis)
        node.left = self._build(pts[:mid], depth + 1)
        node.right = self._build(pts[mid + 1 :], depth + 1)
        return node

    # ------------------------------------------------------------------
    def range_query(self, circle: Circle) -> list[tuple[int, ...]]:
        """All indexed points inside (or on) *circle*."""
        if self._root is not None and circle.w != self.w:
            raise ParameterError("query dimension does not match tree")
        results: list[tuple[int, ...]] = []

        def visit(node: "_Node | None") -> None:
            if node is None:
                return
            if distance_squared(node.point, circle.center) <= circle.r_squared:
                results.append(node.point)
            axis, split = node.axis, node.point[node.axis]
            delta = circle.center[axis] - split
            # The splitting hyperplane is at distance |delta|; a subtree on
            # the far side can be pruned once delta² exceeds r².
            if delta <= 0 or delta * delta <= circle.r_squared:
                visit(node.left)
            if delta >= 0 or delta * delta <= circle.r_squared:
                visit(node.right)

        visit(self._root)
        return results

    # ------------------------------------------------------------------
    def nearest(self, query: Sequence[int], k: int = 1) -> list[tuple[int, ...]]:
        """The *k* nearest indexed points to *query* (ties broken arbitrarily).

        Raises:
            ParameterError: If ``k < 1`` or dimensions mismatch.
        """
        if k < 1:
            raise ParameterError("k must be at least 1")
        if self._root is not None and len(query) != self.w:
            raise ParameterError("query dimension does not match tree")
        query = tuple(query)
        # Max-heap of (-dist², counter, point) keeping the best k.
        heap: list[tuple[int, int, tuple[int, ...]]] = []
        counter = 0

        def visit(node: "_Node | None") -> None:
            nonlocal counter
            if node is None:
                return
            dist = distance_squared(node.point, query)
            counter += 1
            if len(heap) < k:
                heapq.heappush(heap, (-dist, counter, node.point))
            elif dist < -heap[0][0]:
                heapq.heapreplace(heap, (-dist, counter, node.point))
            axis = node.axis
            delta = query[axis] - node.point[axis]
            near, far = (
                (node.left, node.right) if delta <= 0 else (node.right, node.left)
            )
            visit(near)
            if len(heap) < k or delta * delta <= -heap[0][0]:
                visit(far)

        visit(self._root)
        return [point for _, __, point in sorted(heap, reverse=True)]
