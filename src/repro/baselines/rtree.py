"""An R-tree (STR bulk-loaded) with circle queries and pruning statistics.

The paper's Sec. VI-D names R-trees as the natural route to
faster-than-linear circular range search, and identifies the missing
encrypted primitive: testing whether a *rectangle intersects a circle* at
non-leaf nodes.  This module provides the plaintext structure, the exact
rectangle-circle intersection predicate, and visit counters — so the
``leaky R-tree`` ablation can quantify how much pruning the paper's schemes
forgo by staying linear (and what the leaked intersection pattern would
buy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.geometry import Circle, distance_squared
from repro.errors import ParameterError

__all__ = ["Rect", "RTree", "RTreeStats"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned minimum bounding rectangle (closed box)."""

    mins: tuple[int, ...]
    maxs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.mins) != len(self.maxs):
            raise ParameterError("MBR min/max dimension mismatch")
        if any(lo > hi for lo, hi in zip(self.mins, self.maxs)):
            raise ParameterError("MBR has min > max")

    @classmethod
    def of_point(cls, point: Sequence[int]) -> "Rect":
        """Degenerate rectangle covering a single point."""
        p = tuple(point)
        return cls(p, p)

    @classmethod
    def union(cls, rects: Sequence["Rect"]) -> "Rect":
        """Smallest rectangle covering all of *rects*."""
        if not rects:
            raise ParameterError("cannot take the union of zero rectangles")
        w = len(rects[0].mins)
        mins = tuple(min(r.mins[d] for r in rects) for d in range(w))
        maxs = tuple(max(r.maxs[d] for r in rects) for d in range(w))
        return cls(mins, maxs)

    def min_distance_squared(self, point: Sequence[int]) -> int:
        """Squared distance from *point* to the nearest point of the box."""
        total = 0
        for lo, hi, c in zip(self.mins, self.maxs, point):
            if c < lo:
                total += (lo - c) * (lo - c)
            elif c > hi:
                total += (c - hi) * (c - hi)
        return total

    def intersects_circle(self, circle: Circle) -> bool:
        """The non-leaf predicate the paper lacks in the ciphertext domain."""
        return self.min_distance_squared(circle.center) <= circle.r_squared

    def contains_point(self, point: Sequence[int]) -> bool:
        """True if *point* lies inside the closed box."""
        return all(
            lo <= c <= hi for lo, hi, c in zip(self.mins, self.maxs, point)
        )


@dataclass
class RTreeStats:
    """Work counters for one query: the pruning the tree achieved."""

    internal_nodes_visited: int = 0
    leaf_nodes_visited: int = 0
    points_tested: int = 0


class _RNode:
    __slots__ = ("rect", "children", "points")

    def __init__(
        self,
        rect: Rect,
        children: "list[_RNode] | None" = None,
        points: list[tuple[int, ...]] | None = None,
    ):
        self.rect = rect
        self.children = children
        self.points = points

    @property
    def is_leaf(self) -> bool:
        return self.points is not None


class RTree:
    """A static R-tree bulk-loaded with Sort-Tile-Recursive packing."""

    def __init__(self, points: Sequence[Sequence[int]], leaf_capacity: int = 16):
        """Build the tree.

        Args:
            points: Integer points to index.
            leaf_capacity: Max entries per node (leaves and internals).

        Raises:
            ParameterError: On bad capacity or inconsistent dimensions.
        """
        if leaf_capacity < 2:
            raise ParameterError("leaf capacity must be at least 2")
        pts = [tuple(p) for p in points]
        if pts:
            w = len(pts[0])
            if any(len(p) != w for p in pts):
                raise ParameterError("points must share one dimension")
            self.w = w
        else:
            self.w = 0
        self.capacity = leaf_capacity
        self._size = len(pts)
        self._root = self._bulk_load(pts)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # STR bulk loading
    # ------------------------------------------------------------------
    def _pack_leaves(self, pts: list[tuple[int, ...]]) -> list[_RNode]:
        leaves = []
        for start in range(0, len(pts), self.capacity):
            chunk = pts[start : start + self.capacity]
            rect = Rect.union([Rect.of_point(p) for p in chunk])
            leaves.append(_RNode(rect, points=chunk))
        return leaves

    def _str_sort(self, pts: list[tuple[int, ...]]) -> list[tuple[int, ...]]:
        """Sort-Tile-Recursive ordering: slabs on x, sorted by y within."""
        if self.w < 2:
            return sorted(pts)
        pts = sorted(pts)
        leaf_count = math.ceil(len(pts) / self.capacity)
        slab_count = math.ceil(math.sqrt(leaf_count)) or 1
        slab_size = math.ceil(len(pts) / slab_count) * 1
        ordered: list[tuple[int, ...]] = []
        for start in range(0, len(pts), max(slab_size, 1)):
            slab = pts[start : start + slab_size]
            ordered.extend(sorted(slab, key=lambda p: p[1:]))
        return ordered

    def _bulk_load(self, pts: list[tuple[int, ...]]) -> "_RNode | None":
        if not pts:
            return None
        nodes: list[_RNode] = self._pack_leaves(self._str_sort(pts))
        while len(nodes) > 1:
            parents = []
            for start in range(0, len(nodes), self.capacity):
                group = nodes[start : start + self.capacity]
                rect = Rect.union([n.rect for n in group])
                parents.append(_RNode(rect, children=group))
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(
        self, circle: Circle
    ) -> tuple[list[tuple[int, ...]], RTreeStats]:
        """Exact circular range query with pruning statistics."""
        stats = RTreeStats()
        results: list[tuple[int, ...]] = []

        def visit(node: "_RNode | None") -> None:
            if node is None:
                return
            if node.is_leaf:
                stats.leaf_nodes_visited += 1
                for point in node.points or ():
                    stats.points_tested += 1
                    if distance_squared(point, circle.center) <= circle.r_squared:
                        results.append(point)
                return
            stats.internal_nodes_visited += 1
            for child in node.children or ():
                # This is the intersects-circle test the paper cannot do
                # over ciphertexts; here it prunes whole subtrees.
                if child.rect.intersects_circle(circle):
                    visit(child)

        visit(self._root)
        return results, stats

    def linear_scan_cost(self) -> int:
        """Points a linear scan would test — the paper's search cost."""
        return self._size
