"""A toy order-preserving encryption (OPE) substrate.

Related-work baseline infrastructure: the paper notes that "simply using
Order-Preserving Encryption with multiple dimensions is … another option to
enable rectangular range search on encrypted spatial data" (Sec. II), and
rectangular range search is the classic *approximate* route to circular
search (take the circle's MBR, accept false positives).

This is a pedagogical OPE in the Agrawal-et-al. spirit: a keyed, strictly
increasing random mapping built from pseudorandom gaps.  It preserves order
(hence leaks it — the well-known OPE weakness, far more leakage than CRSE's
boolean results) and is deterministic under one key.  It is **not** a
secure OPE construction; it exists so the rectangular baseline exercises a
realistic encrypted-comparison code path.
"""

from __future__ import annotations

import bisect
import itertools
import random

from repro.errors import CryptoError, ParameterError

__all__ = ["OPECipher"]


class OPECipher:
    """Keyed order-preserving encryption on the domain ``[0, domain_size)``.

    Ciphertexts are strictly increasing in the plaintext, so any comparison
    a server performs on ciphertexts mirrors the plaintext comparison.
    """

    def __init__(self, key: int, domain_size: int, gap_bits: int = 16):
        """Derive the mapping from *key*.

        Args:
            key: Integer secret key (seeds the gap generator).
            domain_size: Number of plaintexts; table construction is
                ``O(domain_size)``.
            gap_bits: Gap magnitude; larger gaps spread ciphertexts more.

        Raises:
            ParameterError: For a non-positive domain.
        """
        if domain_size < 1:
            raise ParameterError("OPE domain must be non-empty")
        rng = random.Random(("ope-key", key, domain_size, gap_bits).__hash__())
        gaps = (rng.randrange(1, 1 << gap_bits) for _ in range(domain_size))
        self._table = list(itertools.accumulate(gaps))
        self.domain_size = domain_size

    def encrypt(self, plaintext: int) -> int:
        """Encrypt one value.

        Raises:
            CryptoError: If the plaintext is outside the domain.
        """
        if not 0 <= plaintext < self.domain_size:
            raise CryptoError(
                f"plaintext {plaintext} outside OPE domain [0, {self.domain_size})"
            )
        return self._table[plaintext]

    def decrypt(self, ciphertext: int) -> int:
        """Invert :meth:`encrypt`.

        Raises:
            CryptoError: If *ciphertext* is not a valid ciphertext.
        """
        index = bisect.bisect_left(self._table, ciphertext)
        if index >= self.domain_size or self._table[index] != ciphertext:
            raise CryptoError("value is not a valid OPE ciphertext")
        return index

    def max_ciphertext(self) -> int:
        """The largest ciphertext (encryption of ``domain_size - 1``)."""
        return self._table[-1]
