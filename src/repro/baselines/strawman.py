"""The compute-then-compare strawman: two non-colluding servers + AHE.

Paper Sec. III, "A Straightforward Design": evaluate the distance under
additively homomorphic encryption, then compare against the radius — and
the paper rejects it because AHE cannot chain into a comparison without
"heavy interactions between a client and the cloud server or the
impractical assumption of two (or more) non-colluding servers".  This
module implements the two-server variant in the style of the secure-kNN
line the paper cites ([23] Hu et al., [24] Elmehdwi et al.), so the cost of
that rejection is measurable:

* **S1** stores Paillier ciphertexts of the coordinates and drives the
  protocol; it never holds the key.
* **S2** holds the decryption key and answers *masked* sub-queries; it
  never sees an unmasked value, only (a) products of additively masked
  operands during secure multiplication, and (b) the sign of a
  multiplicatively masked difference — the Boolean result the model
  concedes anyway.
* The querying client does one round with S1, but S1↔S2 run **2w + 1
  interactions per record** (one secure multiplication per squared
  coordinate difference — each a full mask/decrypt/re-encrypt round trip —
  plus one comparison).  CRSE needs zero: that is the paper's argument,
  in numbers (see ``bench_ablation_strawman``).

Security caveats (inherent to the strawman, worth stating): S2 learns the
per-record Boolean result and the *sign* masking leaks nothing further,
but the additive masks in secure multiplication must be sampled from a
range dominating the operands; we size them per the data space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.geometry import Circle, DataSpace
from repro.crypto.paillier import (
    PaillierPublicKey,
    PaillierSecretKey,
    paillier_keygen,
)
from repro.errors import CryptoError, ParameterError

__all__ = ["InteractionStats", "StrawmanServerS2", "StrawmanSystem"]


@dataclass
class InteractionStats:
    """Protocol-cost counters for the S1↔S2 channel."""

    interactions: int = 0
    secure_multiplications: int = 0
    comparisons: int = 0
    ciphertexts_transferred: int = 0


class StrawmanServerS2:
    """The key-holding server: answers masked multiplication and sign queries."""

    def __init__(self, secret: PaillierSecretKey, rng: random.Random):
        self._secret = secret
        self._rng = rng

    def multiply_masked(self, enc_a_masked: int, enc_b_masked: int) -> int:
        """Decrypt two masked operands, multiply, re-encrypt the product."""
        a = self._secret.decrypt(enc_a_masked)
        b = self._secret.decrypt(enc_b_masked)
        return self._secret.public.encrypt(a * b, self._rng)

    def sign_of_masked(self, enc_masked: int) -> bool:
        """True iff the masked value is non-negative (the Boolean result)."""
        return self._secret.decrypt(enc_masked) >= 0


class StrawmanSystem:
    """S1's side of the protocol, wired to an S2 instance."""

    def __init__(
        self,
        space: DataSpace,
        rng: random.Random,
        modulus_bits: int = 128,
    ):
        """Set up keys, both servers, and the mask ranges.

        Args:
            space: The data space (bounds the masks).
            rng: Randomness for keys, encryption, and masks.
            modulus_bits: Paillier modulus size; must comfortably exceed
                the masked products (checked).

        Raises:
            ParameterError: If the modulus cannot hold the masked values.
        """
        self.space = space
        self._rng = rng
        self._secret = paillier_keygen(modulus_bits, rng)
        self.public: PaillierPublicKey = self._secret.public
        self.s2 = StrawmanServerS2(self._secret, rng)
        self.stats = InteractionStats()
        # Masks dominate the coordinate differences; masked products must
        # stay inside the signed plaintext space.
        self._mask_bound = 4 * space.t
        if (4 * self._mask_bound * self._mask_bound) >= self.public.n // 2:
            raise ParameterError(
                "Paillier modulus too small for this data space's masks"
            )
        self._records: list[tuple[int, list[int]]] = []

    # ------------------------------------------------------------------
    # Data upload (owner side: encrypt coordinates)
    # ------------------------------------------------------------------
    def outsource(self, points: Sequence[Sequence[int]]) -> None:
        """Encrypt and store coordinate ciphertexts on S1."""
        for point in points:
            point = self.space.validate_point(point)
            identifier = len(self._records)
            self._records.append(
                (
                    identifier,
                    [self.public.encrypt(c, self._rng) for c in point],
                )
            )

    @property
    def record_count(self) -> int:
        """Records stored on S1."""
        return len(self._records)

    # ------------------------------------------------------------------
    # The S1↔S2 sub-protocols
    # ------------------------------------------------------------------
    def _secure_multiply(self, enc_a: int, enc_b: int) -> int:
        """SM(Enc(a), Enc(b)) → Enc(a·b), one S2 round trip.

        S1 masks additively, S2 multiplies in the clear, S1 strips the
        cross terms homomorphically:
        ``ab = (a+ra)(b+rb) - a·rb - b·ra - ra·rb``.
        """
        ra = self._rng.randrange(1, self._mask_bound)
        rb = self._rng.randrange(1, self._mask_bound)
        masked_a = self.public.add(enc_a, self.public.encrypt(ra, self._rng))
        masked_b = self.public.add(enc_b, self.public.encrypt(rb, self._rng))
        enc_product_masked = self.s2.multiply_masked(masked_a, masked_b)
        self.stats.interactions += 1
        self.stats.secure_multiplications += 1
        self.stats.ciphertexts_transferred += 3
        result = enc_product_masked
        result = self.public.add(result, self.public.scalar_mul(enc_a, -rb))
        result = self.public.add(result, self.public.scalar_mul(enc_b, -ra))
        result = self.public.add(
            result, self.public.encrypt(-ra * rb, self._rng)
        )
        return result

    def _secure_compare_nonpositive(self, enc_t: int) -> bool:
        """Is the encrypted value ``t <= 0``?  One S2 round trip.

        S1 multiplicatively masks with a random positive ρ (sign-preserving)
        before S2 decrypts; S2 learns only the sign.
        """
        rho = self._rng.randrange(1, self._mask_bound)
        masked = self.public.scalar_mul(enc_t, rho)
        non_negative = self.s2.sign_of_masked(
            self.public.rerandomize(masked, self._rng)
        )
        self.stats.interactions += 1
        self.stats.comparisons += 1
        self.stats.ciphertexts_transferred += 1
        return not non_negative or self._is_zero_probe(enc_t)

    def _is_zero_probe(self, enc_t: int) -> bool:
        """Boundary case ``t == 0``: check sign of ``-t`` as well."""
        negated = self.public.scalar_mul(enc_t, -1)
        rho = self._rng.randrange(1, self._mask_bound)
        masked = self.public.scalar_mul(negated, rho)
        self.stats.interactions += 1
        self.stats.ciphertexts_transferred += 1
        return self.s2.sign_of_masked(
            self.public.rerandomize(masked, self._rng)
        )

    # ------------------------------------------------------------------
    # The query
    # ------------------------------------------------------------------
    def circular_search(self, circle: Circle) -> list[int]:
        """Return identifiers inside *circle* via compute-then-compare.

        The query circle arrives at S1 **encrypted** (center ciphertexts),
        so S1 learns neither side; the price is the per-record interaction
        storm with S2.

        Raises:
            ParameterError: On a circle outside the space.
        """
        self.space.validate_circle(circle)
        enc_center = [
            self.public.encrypt(-c, self._rng) for c in circle.center
        ]
        matches = []
        for identifier, enc_coords in self._records:
            if len(enc_coords) != len(enc_center):
                raise CryptoError("record/query dimension mismatch")
            # Enc(d²) = Σ SM(x_k - c_k, x_k - c_k).
            enc_d_squared = self.public.encrypt(0, self._rng)
            for enc_x, enc_neg_c in zip(enc_coords, enc_center):
                enc_diff = self.public.add(enc_x, enc_neg_c)
                enc_d_squared = self.public.add(
                    enc_d_squared, self._secure_multiply(enc_diff, enc_diff)
                )
            # t = d² - r²; inside ⇔ t <= 0.
            enc_t = self.public.add(
                enc_d_squared,
                self.public.encrypt(-circle.r_squared, self._rng),
            )
            if self._secure_compare_nonpositive(enc_t):
                matches.append(identifier)
        return matches

    def interactions_per_record(self) -> int:
        """Protocol cost: w secure mults + up to 2 comparison rounds."""
        return self.space.w + 2
