"""Sums of squares: the number theory behind ``GenConCircle``.

The paper's core covering argument (Sec. VI-A) is that the integer lattice
points inside a circle of radius ``R`` lie on exactly the concentric circles
whose squared radius is an integer in ``[0, R²]`` expressible as a sum of
``w`` squares.  This module implements the classical theorems the paper
cites:

* **Fermat / sum-of-two-squares** (paper Theorem 1): ``n = a² + b²`` iff every
  prime ``p ≡ 3 (mod 4)`` divides ``n`` to an even power.
* **Legendre's three-square theorem**: ``n = a² + b² + c²`` iff
  ``n ≠ 4^a (8b + 7)``.
* **Lagrange's four-square theorem**: every non-negative integer is a sum of
  four squares (so for ``w ≥ 4`` the circle count is exactly ``R² + 1``).

It also constructs explicit representations (Cornacchia's algorithm plus
Gaussian-integer composition) and enumerates lattice points on circle
boundaries, which the test suite and workload generators use to place points
exactly on concentric circles.
"""

from __future__ import annotations

import math
import random

from repro.math.factorint import divisors, factorint
from repro.math.modular import sqrt_mod

__all__ = [
    "is_sum_of_two_squares",
    "is_sum_of_three_squares",
    "is_sum_of_squares",
    "sums_of_two_squares_up_to",
    "sums_of_squares_up_to",
    "two_square_representation",
    "all_two_square_representations",
    "lattice_points_on_circle",
    "lattice_points_on_sphere",
    "count_lattice_points_in_circle",
    "representation_count",
]


def is_sum_of_two_squares(n: int) -> bool:
    """Return True if ``n = a² + b²`` for integers a, b (Fermat's theorem)."""
    if n < 0:
        return False
    if n in (0, 1, 2):
        return True
    return all(
        e % 2 == 0 for p, e in factorint(n).items() if p % 4 == 3
    )


def is_sum_of_three_squares(n: int) -> bool:
    """Return True if ``n = a² + b² + c²`` (Legendre's theorem)."""
    if n < 0:
        return False
    while n % 4 == 0 and n > 0:
        n //= 4
    return n % 8 != 7


def is_sum_of_squares(n: int, w: int) -> bool:
    """Return True if *n* is a sum of *w* integer squares.

    Args:
        n: The candidate value (a squared radius).
        w: Number of squares, i.e. the spatial dimension; ``w >= 1``.

    Raises:
        ValueError: If ``w < 1``.
    """
    if w < 1:
        raise ValueError("dimension w must be at least 1")
    if n < 0:
        return False
    if w == 1:
        root = math.isqrt(n)
        return root * root == n
    if w == 2:
        return is_sum_of_two_squares(n)
    if w == 3:
        return is_sum_of_three_squares(n)
    # Lagrange: every non-negative integer is a sum of four squares.
    return True


def sums_of_two_squares_up_to(limit: int) -> list[int]:
    """Return all ``n ∈ [0, limit]`` expressible as a sum of two squares.

    Uses an additive sieve (mark every ``a² + b²``), which is far cheaper
    than factoring each candidate when enumerating the full range needed by
    ``GenConCircle``.
    """
    if limit < 0:
        return []
    marked = bytearray(limit + 1)
    a = 0
    while a * a <= limit:
        aa = a * a
        b = a
        while aa + b * b <= limit:
            marked[aa + b * b] = 1
            b += 1
        a += 1
    return [n for n in range(limit + 1) if marked[n]]


def sums_of_squares_up_to(limit: int, w: int) -> list[int]:
    """Return all ``n ∈ [0, limit]`` expressible as a sum of *w* squares.

    For ``w = 3`` this applies Legendre's criterion directly; for ``w >= 4``
    it is the full range (Lagrange).
    """
    if w < 1:
        raise ValueError("dimension w must be at least 1")
    if limit < 0:
        return []
    if w == 1:
        return [k * k for k in range(math.isqrt(limit) + 1)]
    if w == 2:
        return sums_of_two_squares_up_to(limit)
    if w == 3:
        return [n for n in range(limit + 1) if is_sum_of_three_squares(n)]
    return list(range(limit + 1))


def _cornacchia_prime(p: int, rng: random.Random) -> tuple[int, int]:
    """Return ``(a, b)`` with ``a² + b² == p`` for a prime ``p ≡ 1 (mod 4)``.

    Cornacchia's algorithm: start from a root of ``x² ≡ -1 (mod p)`` and run
    the Euclidean algorithm down past ``sqrt(p)``.
    """
    x = sqrt_mod(p - 1, p)
    x = min(x, p - x)
    # Descend: gcd chain p, x until below sqrt(p).
    a, b = p, x
    bound = math.isqrt(p)
    while b > bound:
        a, b = b, a % b
    c_sq = p - b * b
    c = math.isqrt(c_sq)
    if c * c != c_sq:  # pragma: no cover - cannot happen for prime p ≡ 1 (4)
        raise ArithmeticError(f"Cornacchia failed for prime {p}")
    return b, c


def _gaussian_mul(ab: tuple[int, int], cd: tuple[int, int]) -> tuple[int, int]:
    """Compose two-square representations via (a+bi)(c+di)."""
    a, b = ab
    c, d = cd
    return abs(a * c - b * d), abs(a * d + b * c)


def two_square_representation(
    n: int, rng: random.Random | None = None
) -> tuple[int, int]:
    """Return one ``(a, b)`` with ``a² + b² == n`` and ``0 <= a <= b``.

    Constructive counterpart of :func:`is_sum_of_two_squares`: factor *n*,
    represent each prime ``p ≡ 1 (mod 4)`` by Cornacchia, compose with
    Gaussian-integer multiplication, and scale by the square part.

    Raises:
        ValueError: If *n* is not a sum of two squares.
    """
    if n < 0 or not is_sum_of_two_squares(n):
        raise ValueError(f"{n} is not a sum of two squares")
    if n == 0:
        return (0, 0)
    rng = rng or random.SystemRandom()
    rep = (1, 0)
    scale = 1
    for p, e in factorint(n).items():
        if p % 4 == 3:
            scale *= p ** (e // 2)
            continue
        if p == 2:
            prime_rep = (1, 1)
        else:
            prime_rep = _cornacchia_prime(p, rng)
        for _ in range(e):
            rep = _gaussian_mul(rep, prime_rep)
    a, b = abs(rep[0]) * scale, abs(rep[1]) * scale
    return (min(a, b), max(a, b))


def all_two_square_representations(n: int) -> list[tuple[int, int]]:
    """Return every ``(a, b)`` with ``a² + b² == n`` and ``0 <= a <= b``.

    Brute-force over ``a <= sqrt(n/2)``; used for boundary-point enumeration
    where *n* is a squared radius (small in the paper's experiments).
    """
    if n < 0:
        return []
    reps = []
    a = 0
    while 2 * a * a <= n:
        rest = n - a * a
        b = math.isqrt(rest)
        if b * b == rest:
            reps.append((a, b))
        a += 1
    return reps


def lattice_points_on_circle(
    center: tuple[int, int], r_squared: int
) -> list[tuple[int, int]]:
    """Return all integer points on the circle with squared radius *r_squared*.

    Args:
        center: Integer circle center ``(xc, yc)``.
        r_squared: Squared radius (must be a non-negative integer).

    Returns:
        All ``(x, y) ∈ Z²`` with ``(x-xc)² + (y-yc)² == r_squared``, sorted.
    """
    if r_squared < 0:
        return []
    xc, yc = center
    points: set[tuple[int, int]] = set()
    for a, b in all_two_square_representations(r_squared):
        for da, db in ((a, b), (b, a)):
            for sa in (da, -da):
                for sb in (db, -db):
                    points.add((xc + sa, yc + sb))
    return sorted(points)


def lattice_points_on_sphere(
    center: tuple[int, ...], r_squared: int
) -> list[tuple[int, ...]]:
    """Return all integer points at squared distance *r_squared* from *center*.

    Works in any dimension ``w = len(center)`` by recursive decomposition of
    *r_squared* into *w* squares.  Exponential in *w*, intended for the small
    radii used in tests and workload generation.
    """
    w = len(center)
    if r_squared < 0:
        return []

    def rec(dims: int, remaining: int) -> list[tuple[int, ...]]:
        if dims == 1:
            root = math.isqrt(remaining)
            if root * root != remaining:
                return []
            return [(root,)] if root == 0 else [(root,), (-root,)]
        combos = []
        v = 0
        while v * v <= remaining:
            for tail in rec(dims - 1, remaining - v * v):
                combos.append((v,) + tail)
                if v:
                    combos.append((-v,) + tail)
            v += 1
        return combos

    return sorted(
        tuple(c + d for c, d in zip(center, delta))
        for delta in rec(w, r_squared)
    )


def representation_count(n: int) -> int:
    """Jacobi's ``r₂(n)``: signed lattice points with ``x² + y² = n``.

    Classical identity: ``r₂(n) = 4·(d₁(n) - d₃(n))`` where ``d₁``/``d₃``
    count divisors congruent to 1/3 mod 4; ``r₂(0) = 1`` (the origin).
    This is how many records can sit on one concentric circle — the
    granularity of CRSE-II's co-boundary leakage.
    """
    if n < 0:
        return 0
    if n == 0:
        return 1
    d1 = d3 = 0
    for divisor in divisors(n):
        residue = divisor % 4
        if residue == 1:
            d1 += 1
        elif residue == 3:
            d3 += 1
    return 4 * (d1 - d3)


def count_lattice_points_in_circle(r_squared: int) -> int:
    """Count integer points ``(x, y)`` with ``x² + y² <= r_squared`` (Gauss circle)."""
    if r_squared < 0:
        return 0
    r = math.isqrt(r_squared)
    total = 0
    for x in range(-r, r + 1):
        rest = r_squared - x * x
        total += 2 * math.isqrt(rest) + 1
    return total
