"""Primality testing and prime generation.

This module provides the prime machinery needed to build composite-order
bilinear group parameters (:mod:`repro.crypto.groups.params`) and the
number-theoretic predicates behind ``GenConCircle``
(:mod:`repro.core.concircles`).

The primality test is deterministic for 64-bit inputs (fixed Miller-Rabin
bases) and probabilistic with a negligible error for larger inputs
(random bases), matching standard practice in cryptographic libraries.
"""

from __future__ import annotations

import random
from typing import Iterator

__all__ = [
    "is_prime",
    "next_prime",
    "prev_prime",
    "random_prime",
    "primes_up_to",
    "small_primes",
]

# Primes below 1000, used for cheap trial division before Miller-Rabin.
_SMALL_PRIME_LIMIT = 1000


def _sieve(limit: int) -> list[int]:
    """Return all primes strictly below *limit* via Eratosthenes."""
    if limit <= 2:
        return []
    flags = bytearray([1]) * limit
    flags[0] = flags[1] = 0
    for p in range(2, int(limit**0.5) + 1):
        if flags[p]:
            flags[p * p :: p] = bytearray(len(flags[p * p :: p]))
    return [i for i, flag in enumerate(flags) if flag]


_SMALL_PRIMES: list[int] = _sieve(_SMALL_PRIME_LIMIT)

# Deterministic Miller-Rabin bases: correct for all n < 3.3 * 10^24
# (Sorenson & Webster), which covers every fixed-width integer we test
# deterministically.
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981

# Default randomness source: the OS CSPRNG.  Primes generated here become
# Paillier moduli and pairing-group orders, so the *default* must be
# cryptographically strong; callers needing reproducibility pass an explicit
# seeded ``random.Random`` via ``rng=``.
_SYSTEM_RANDOM = random.SystemRandom()


def small_primes() -> list[int]:
    """Return the cached list of primes below 1000 (a copy)."""
    return list(_SMALL_PRIMES)


def primes_up_to(limit: int) -> list[int]:
    """Return all primes ``p <= limit`` (sieve of Eratosthenes)."""
    if limit < 2:
        return []
    return _sieve(limit + 1)


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True if *a* witnesses that *n* is composite."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Test *n* for primality.

    Deterministic for ``n < 3.3e24`` via fixed Miller-Rabin bases; otherwise
    probabilistic with error at most ``4**-rounds``.

    Args:
        n: The integer to test.  Values below 2 are never prime.
        rounds: Number of random bases for the probabilistic path.
        rng: Optional random source for reproducible probabilistic testing;
            defaults to the OS CSPRNG.

    Returns:
        True if *n* is (almost certainly) prime.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_LIMIT:
        bases: Iterator[int] = iter(_DETERMINISTIC_BASES)
        return not any(
            _miller_rabin_witness(n, a % n, d, r) for a in bases if a % n
        )
    rng = rng or _SYSTEM_RANDOM
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than *n*."""
    candidate = max(n + 1, 2)
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def prev_prime(n: int) -> int:
    """Return the largest prime strictly smaller than *n*.

    Raises:
        ValueError: If no prime below *n* exists (``n <= 2``).
    """
    if n <= 2:
        raise ValueError(f"no prime below {n}")
    candidate = n - 1
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate -= 1
    while candidate >= 2 and not is_prime(candidate):
        candidate -= 2
    if candidate < 2:
        raise ValueError(f"no prime below {n}")
    return candidate


def random_prime(bits: int, rng: random.Random | None = None) -> int:
    """Return a uniformly sampled prime with exactly *bits* bits.

    Args:
        bits: Bit length of the prime; must be at least 2.
        rng: Optional random source for reproducibility; defaults to the
            OS CSPRNG (pass a seeded ``random.Random`` only for tests).

    Raises:
        ValueError: If *bits* < 2.
    """
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits")
    rng = rng or _SYSTEM_RANDOM
    while True:
        # Force the top bit (exact bit length) and the low bit (odd).
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate, rng=rng):
            return candidate
