"""Number-theoretic and algebraic substrates.

Everything the crypto and geometry layers need that a C library (GMP) would
normally provide: primality and prime generation, modular arithmetic,
integer factorization, the sums-of-squares theorems behind ``GenConCircle``,
and sparse multivariate polynomials for the CRSE-I ``Split`` pipeline.
"""

from repro.math.factorint import divisors, factorint, squarefree_part
from repro.math.modular import (
    crt,
    crt_pair,
    egcd,
    is_quadratic_residue,
    jacobi,
    modinv,
    sqrt_mod,
)
from repro.math.polynomial import Polynomial
from repro.math.primes import (
    is_prime,
    next_prime,
    prev_prime,
    primes_up_to,
    random_prime,
    small_primes,
)
from repro.math.sumsquares import (
    all_two_square_representations,
    count_lattice_points_in_circle,
    is_sum_of_squares,
    is_sum_of_three_squares,
    is_sum_of_two_squares,
    lattice_points_on_circle,
    lattice_points_on_sphere,
    representation_count,
    sums_of_squares_up_to,
    sums_of_two_squares_up_to,
    two_square_representation,
)

__all__ = [
    "Polynomial",
    "all_two_square_representations",
    "count_lattice_points_in_circle",
    "crt",
    "crt_pair",
    "divisors",
    "egcd",
    "factorint",
    "is_prime",
    "is_quadratic_residue",
    "is_sum_of_squares",
    "is_sum_of_three_squares",
    "is_sum_of_two_squares",
    "jacobi",
    "lattice_points_on_circle",
    "lattice_points_on_sphere",
    "modinv",
    "next_prime",
    "prev_prime",
    "primes_up_to",
    "random_prime",
    "representation_count",
    "small_primes",
    "sqrt_mod",
    "squarefree_part",
    "sums_of_squares_up_to",
    "sums_of_two_squares_up_to",
    "two_square_representation",
]
