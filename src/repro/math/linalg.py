"""Exact linear algebra over rationals (Gauss-Jordan on ``Fraction``).

Substrate for the ASPE secure-kNN baseline
(:mod:`repro.baselines.aspe_knn`), which needs an invertible secret matrix,
its inverse, and exact matrix-vector products — floating point would make
the known-plaintext recovery test flaky.  Matrices are plain list-of-list
rows of :class:`fractions.Fraction`; dimensions are small (``d + 1``).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Sequence

from repro.errors import ParameterError

__all__ = [
    "identity_matrix",
    "mat_mul",
    "mat_vec",
    "mat_inverse",
    "random_invertible_matrix",
    "solve_linear_system",
]

Matrix = list[list[Fraction]]
Vector = list[Fraction]


def identity_matrix(n: int) -> Matrix:
    """The n×n identity."""
    return [
        [Fraction(1) if i == j else Fraction(0) for j in range(n)]
        for i in range(n)
    ]


def _check_rect(matrix: Sequence[Sequence[object]]) -> tuple[int, int]:
    rows = len(matrix)
    if rows == 0:
        raise ParameterError("matrix must be non-empty")
    cols = len(matrix[0])
    if any(len(row) != cols for row in matrix):
        raise ParameterError("matrix rows must have equal length")
    return rows, cols


def mat_mul(a: Sequence[Sequence[Fraction]], b: Sequence[Sequence[Fraction]]) -> Matrix:
    """Matrix product ``a @ b``.

    Raises:
        ParameterError: On dimension mismatch.
    """
    ra, ca = _check_rect(a)
    rb, cb = _check_rect(b)
    if ca != rb:
        raise ParameterError(f"cannot multiply {ra}x{ca} by {rb}x{cb}")
    return [
        [
            sum((a[i][k] * b[k][j] for k in range(ca)), Fraction(0))
            for j in range(cb)
        ]
        for i in range(ra)
    ]


def mat_vec(matrix: Sequence[Sequence[Fraction]], vector: Sequence[Fraction]) -> Vector:
    """Matrix-vector product."""
    rows, cols = _check_rect(matrix)
    if cols != len(vector):
        raise ParameterError(f"cannot apply {rows}x{cols} to length-{len(vector)}")
    return [
        sum((matrix[i][k] * vector[k] for k in range(cols)), Fraction(0))
        for i in range(rows)
    ]


def mat_inverse(matrix: Sequence[Sequence[Fraction]]) -> Matrix:
    """Exact inverse by Gauss-Jordan elimination.

    Raises:
        ParameterError: If the matrix is singular or not square.
    """
    n, cols = _check_rect(matrix)
    if n != cols:
        raise ParameterError("only square matrices have inverses")
    # Augment [A | I] and reduce.
    aug = [
        [Fraction(v) for v in row]
        + [Fraction(1) if i == j else Fraction(0) for j in range(n)]
        for i, row in enumerate(matrix)
    ]
    for col in range(n):
        pivot_row = next(
            (r for r in range(col, n) if aug[r][col] != 0), None
        )
        if pivot_row is None:
            raise ParameterError("matrix is singular")
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        aug[col] = [v / pivot for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [v - factor * p for v, p in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]


def solve_linear_system(
    matrix: Sequence[Sequence[Fraction]], rhs: Sequence[Fraction]
) -> Vector:
    """Solve ``A x = b`` exactly.

    Raises:
        ParameterError: If *matrix* is singular or shapes mismatch.
    """
    inverse = mat_inverse(matrix)
    return mat_vec(inverse, rhs)


def random_invertible_matrix(
    n: int, rng: random.Random, magnitude: int = 10
) -> Matrix:
    """Sample a random invertible n×n integer matrix (as Fractions).

    Rejection-samples until the determinant is non-zero (almost always the
    first draw).
    """
    if n < 1:
        raise ParameterError("matrix size must be positive")
    while True:
        candidate = [
            [Fraction(rng.randint(-magnitude, magnitude)) for _ in range(n)]
            for _ in range(n)
        ]
        try:
            mat_inverse(candidate)
        except ParameterError:
            continue
        return candidate
