"""Integer factorization.

``GenConCircle`` (paper Sec. VI-A) decides which squared radii occur inside a
query circle via the sum-of-two-squares theorem, which needs the prime
factorization of every candidate ``r² ∈ [0, R²]``.  Radii are small (the
paper evaluates up to ``R = 50``, i.e. ``R² = 2500``), but we implement a
general-purpose factorizer — trial division by cached small primes followed
by Brent's variant of Pollard's rho — so the library also handles the larger
values that appear in parameter generation and tests.
"""

from __future__ import annotations

import math
import random

from repro.math.primes import is_prime, small_primes

__all__ = ["factorint", "divisors", "squarefree_part"]

_SMALL_PRIMES = small_primes()


def _pollard_brent(n: int, rng: random.Random) -> int:
    """Return a non-trivial factor of composite odd *n* (Brent's rho)."""
    if n % 2 == 0:
        return 2
    while True:
        y = rng.randrange(1, n)
        c = rng.randrange(1, n)
        m = 128
        g = r = q = 1
        x = ys = y
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(m, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = math.gcd(q, n)
                k += m
            r *= 2
        if g == n:
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = math.gcd(abs(x - ys), n)
        if g != n:
            return g


def factorint(n: int, rng: random.Random | None = None) -> dict[int, int]:
    """Return the prime factorization of *n* as ``{prime: exponent}``.

    Args:
        n: A positive integer.  ``factorint(1) == {}``.
        rng: Optional random source for Pollard rho; defaults to the OS
            CSPRNG (the factorization itself is independent of the rho
            walk, so determinism is only needed for benchmark replay —
            pass a seeded ``random.Random`` there).

    Raises:
        ValueError: If ``n < 1``.
    """
    if n < 1:
        raise ValueError("factorint requires a positive integer")
    rng = rng or random.SystemRandom()
    factors: dict[int, int] = {}
    for p in _SMALL_PRIMES:
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
        if n == 1:
            return factors
    # Remaining cofactor has no factor below 1000; split recursively.
    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        root = math.isqrt(m)
        if root * root == m:
            stack.extend((root, root))
            continue
        d = _pollard_brent(m, rng)
        stack.extend((d, m // d))
    return factors


def divisors(n: int) -> list[int]:
    """Return all positive divisors of *n* in ascending order."""
    result = [1]
    for p, e in factorint(n).items():
        result = [d * p**k for d in result for k in range(e + 1)]
    return sorted(result)


def squarefree_part(n: int) -> int:
    """Return the squarefree part of positive *n* (product of odd-power primes)."""
    part = 1
    for p, e in factorint(n).items():
        if e % 2 == 1:
            part *= p
    return part
