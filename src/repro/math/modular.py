"""Modular arithmetic utilities.

Building blocks for the finite-field layer (:mod:`repro.crypto.groups.field`)
and for Cornacchia's algorithm in :mod:`repro.math.sumsquares`:
extended gcd, modular inverse, Jacobi symbol, modular square roots
(Tonelli-Shanks with the fast ``q ≡ 3 (mod 4)`` path used by our
supersingular curves), and the Chinese Remainder Theorem.
"""

from __future__ import annotations

__all__ = [
    "egcd",
    "modinv",
    "batch_modinv",
    "jacobi",
    "is_quadratic_residue",
    "sqrt_mod",
    "crt",
    "crt_pair",
]


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def modinv(a: int, n: int) -> int:
    """Return the inverse of *a* modulo *n*.

    Raises:
        ValueError: If ``gcd(a, n) != 1``.
    """
    g, x, _ = egcd(a % n, n)
    if g != 1:
        # Never echo the operand: in a composite-order group a
        # non-invertible value shares a factor with n, so printing it (or
        # the gcd) would hand out part of the secret factorization.
        raise ValueError(
            f"value is not invertible modulo the {n.bit_length()}-bit "
            f"modulus (gcd is {g.bit_length()} bits)"
        )
    return x % n


def batch_modinv(values: list[int], n: int) -> list[int]:
    """Invert every entry of *values* modulo *n* with a single inversion.

    Montgomery's trick: one extended-gcd inversion plus ``3(k - 1)``
    multiplications replace ``k`` inversions.  This is what makes batched
    normalization of projective curve points affordable (the elliptic-curve
    layer converts whole precomputation tables to affine form at once).

    Raises:
        ValueError: If any entry shares a factor with *n*.
    """
    if not values:
        return []
    prefix = [1] * len(values)
    acc = 1
    for i, value in enumerate(values):
        prefix[i] = acc
        acc = acc * value % n
    acc_inv = modinv(acc, n)  # raises ValueError on a non-invertible entry
    inverses = [0] * len(values)
    for i in range(len(values) - 1, -1, -1):
        inverses[i] = acc_inv * prefix[i] % n
        acc_inv = acc_inv * values[i] % n
    return inverses


def jacobi(a: int, n: int) -> int:
    """Return the Jacobi symbol ``(a / n)`` for odd positive *n*.

    Raises:
        ValueError: If *n* is not a positive odd integer.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires positive odd n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def is_quadratic_residue(a: int, p: int) -> bool:
    """Return True if *a* is a quadratic residue modulo prime *p*.

    Zero counts as a residue (``0 = 0²``).
    """
    a %= p
    if a == 0:
        return True
    if p == 2:
        return True
    return jacobi(a, p) == 1


def sqrt_mod(a: int, p: int) -> int:
    """Return a square root of *a* modulo prime *p*.

    Uses the direct exponentiation shortcut when ``p ≡ 3 (mod 4)`` (the case
    for all our supersingular-curve fields) and Tonelli-Shanks otherwise.
    The returned root is the one in ``[0, p)``; the other root is ``p - r``.

    Raises:
        ValueError: If *a* is not a quadratic residue modulo *p*.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if jacobi(a, p) != 1:
        raise ValueError(f"{a} is not a quadratic residue mod {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli-Shanks for p ≡ 1 (mod 4).
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while jacobi(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i in (0, m) with t^(2^i) == 1.
        i = 0
        t2i = t
        while t2i != 1:
            t2i = (t2i * t2i) % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = (b * b) % p
        t = (t * c) % p
        r = (r * b) % p
    return r


def crt_pair(r1: int, n1: int, r2: int, n2: int) -> tuple[int, int]:
    """Combine two congruences ``x ≡ r1 (mod n1)``, ``x ≡ r2 (mod n2)``.

    Returns:
        ``(r, n)`` with ``n = lcm(n1, n2)`` and ``x ≡ r (mod n)``.

    Raises:
        ValueError: If the congruences are inconsistent.
    """
    g, p, _ = egcd(n1, n2)
    if (r2 - r1) % g != 0:
        raise ValueError("inconsistent congruences")
    lcm = n1 // g * n2
    diff = (r2 - r1) // g
    r = (r1 + n1 * (diff * p % (n2 // g))) % lcm
    return r, lcm


def crt(residues: list[int], moduli: list[int]) -> int:
    """Solve a system of congruences by the Chinese Remainder Theorem.

    Args:
        residues: Target residues ``r_i``.
        moduli: Pairwise compatible moduli ``n_i`` (coprime or consistent).

    Returns:
        The unique ``x`` in ``[0, lcm(moduli))`` with ``x ≡ r_i (mod n_i)``.

    Raises:
        ValueError: On empty input, length mismatch, or inconsistency.
    """
    if not residues or len(residues) != len(moduli):
        raise ValueError("residues and moduli must be equal-length, non-empty")
    r, n = residues[0] % moduli[0], moduli[0]
    for r_i, n_i in zip(residues[1:], moduli[1:]):
        r, n = crt_pair(r, n, r_i % n_i, n_i)
    return r
