"""Sparse multivariate polynomials over the integers.

CRSE-I (paper Sec. VI-B) combines the ``m`` concentric-circle boundary
polynomials into a single product ``P = P1 · P2 ⋯ Pm`` and then splits ``P``
into an inner product of two vectors.  This module supplies the exact
symbolic arithmetic for that pipeline: the ``Split`` implementation in
:mod:`repro.core.split` manipulates polynomials in the *point* variables
``x, y, …`` (one per dimension), and the test suite uses full evaluation to
check that every split satisfies ``⟨f_u(D), f_v(Q)⟩ = P(D, Q)``.

Representation: a mapping from exponent tuples to non-zero integer
coefficients.  Polynomials are immutable and hashable, so they can serve as
dictionary keys when the optimized split merges duplicate point-monomials.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["Polynomial"]


class Polynomial:
    """An immutable sparse polynomial in ``nvars`` variables over ℤ."""

    __slots__ = ("_nvars", "_terms", "_hash")

    def __init__(self, nvars: int, terms: Mapping[tuple[int, ...], int] | None = None):
        """Build a polynomial from an exponent-tuple → coefficient mapping.

        Args:
            nvars: Number of variables; every exponent tuple must have this
                length.
            terms: Coefficients by exponent tuple; zero coefficients are
                dropped.

        Raises:
            ValueError: If an exponent tuple has the wrong arity or a
                negative exponent.
        """
        if nvars < 0:
            raise ValueError("nvars must be non-negative")
        clean: dict[tuple[int, ...], int] = {}
        for expts, coeff in (terms or {}).items():
            if len(expts) != nvars:
                raise ValueError(
                    f"exponent tuple {expts} has arity {len(expts)}, expected {nvars}"
                )
            if any(e < 0 for e in expts):
                raise ValueError(f"negative exponent in {expts}")
            if coeff:
                clean[tuple(expts)] = clean.get(tuple(expts), 0) + coeff
                if not clean[tuple(expts)]:
                    del clean[tuple(expts)]
        self._nvars = nvars
        self._terms = clean
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, nvars: int, value: int) -> "Polynomial":
        """Return the constant polynomial *value*."""
        zero = (0,) * nvars
        return cls(nvars, {zero: value} if value else {})

    @classmethod
    def variable(cls, nvars: int, index: int) -> "Polynomial":
        """Return the polynomial ``x_index``."""
        if not 0 <= index < nvars:
            raise ValueError(f"variable index {index} out of range for {nvars} vars")
        expts = tuple(1 if i == index else 0 for i in range(nvars))
        return cls(nvars, {expts: 1})

    @classmethod
    def zero(cls, nvars: int) -> "Polynomial":
        """Return the zero polynomial."""
        return cls(nvars, {})

    @classmethod
    def one(cls, nvars: int) -> "Polynomial":
        """Return the constant polynomial 1."""
        return cls.constant(nvars, 1)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nvars(self) -> int:
        """Number of variables."""
        return self._nvars

    @property
    def terms(self) -> dict[tuple[int, ...], int]:
        """A copy of the exponent-tuple → coefficient mapping."""
        return dict(self._terms)

    def is_zero(self) -> bool:
        """True if this is the zero polynomial."""
        return not self._terms

    def total_degree(self) -> int:
        """Total degree (0 for constants, including zero)."""
        if not self._terms:
            return 0
        return max(sum(expts) for expts in self._terms)

    def num_terms(self) -> int:
        """Number of monomials with non-zero coefficient."""
        return len(self._terms)

    def coefficient(self, expts: tuple[int, ...]) -> int:
        """Return the coefficient of the given monomial (0 if absent)."""
        return self._terms.get(tuple(expts), 0)

    # ------------------------------------------------------------------
    # Ring operations
    # ------------------------------------------------------------------
    def _coerce(self, other: "Polynomial | int") -> "Polynomial":
        if isinstance(other, Polynomial):
            if other._nvars != self._nvars:
                raise ValueError("polynomial arity mismatch")
            return other
        if isinstance(other, int):
            return Polynomial.constant(self._nvars, other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: "Polynomial | int") -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        terms = dict(self._terms)
        for expts, coeff in rhs._terms.items():
            terms[expts] = terms.get(expts, 0) + coeff
        return Polynomial(self._nvars, terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial(
            self._nvars, {expts: -c for expts, c in self._terms.items()}
        )

    def __sub__(self, other: "Polynomial | int") -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: int) -> "Polynomial":
        return (-self) + other

    def __mul__(self, other: "Polynomial | int") -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        terms: dict[tuple[int, ...], int] = {}
        for e1, c1 in self._terms.items():
            for e2, c2 in rhs._terms.items():
                key = tuple(a + b for a, b in zip(e1, e2))
                terms[key] = terms.get(key, 0) + c1 * c2
        return Polynomial(self._nvars, terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("negative powers are not polynomials")
        result = Polynomial.one(self._nvars)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, values: Iterable[int]) -> int:
        """Evaluate at an integer point.

        Args:
            values: One integer per variable, in variable order.

        Raises:
            ValueError: If the number of values does not match ``nvars``.
        """
        point = tuple(values)
        if len(point) != self._nvars:
            raise ValueError(
                f"expected {self._nvars} values, got {len(point)}"
            )
        total = 0
        for expts, coeff in self._terms.items():
            term = coeff
            for base, e in zip(point, expts):
                if e:
                    term *= base**e
            total += term
        return total

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self == Polynomial.constant(self._nvars, other)
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._nvars == other._nvars and self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._nvars, frozenset(self._terms.items()))
            )
        return self._hash

    def __repr__(self) -> str:
        if not self._terms:
            return "Polynomial(0)"
        parts = []
        for expts in sorted(self._terms, key=lambda e: (-sum(e), e)):
            coeff = self._terms[expts]
            factors = [
                f"x{i}" if e == 1 else f"x{i}^{e}"
                for i, e in enumerate(expts)
                if e
            ]
            body = "*".join(factors)
            if not body:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(body)
            elif coeff == -1:
                parts.append(f"-{body}")
            else:
                parts.append(f"{coeff}*{body}")
        return "Polynomial(" + " + ".join(parts).replace("+ -", "- ") + ")"
