"""The networked CRSE query service.

This package turns the in-process simulation of :mod:`repro.cloud` into a
runnable client/server system:

* :mod:`repro.service.protocol` — the length-prefixed framed wire protocol
  (JSON envelopes carrying the :mod:`repro.cloud.messages` payloads encoded
  by :mod:`repro.cloud.codec`);
* :mod:`repro.service.engine` — a :class:`~repro.service.engine.SearchEngine`
  that shards the encrypted dataset across single-worker process pools so
  token evaluation genuinely uses multiple cores;
* :mod:`repro.service.server` — the asyncio TCP server with a bounded
  request queue (typed BUSY backpressure), server-enforced per-request
  deadlines, per-verb metrics, and graceful drain on SIGTERM;
* :mod:`repro.service.client` — a blocking client holding one persistent
  connection (transparent redial on idle-close), with configurable
  timeouts and exponential-backoff-with-jitter retries that distinguishes
  retryable (connect failures, BUSY) from non-retryable (protocol) errors;
* :mod:`repro.service.aio` — an asyncio client multiplexing many
  in-flight requests over one connection (replies matched to futures by
  request id), with bounded in-flight, per-request deadlines, and
  connection supervision — the engine behind :mod:`repro.loadgen`;
* :mod:`repro.service.metrics` — per-verb counters and latency histograms
  exposed through the ``stats`` verb;
* :mod:`repro.service.coordinator` — a distributed front-end that owns a
  persisted partition map with a replication factor R: uploads and
  deletes fan out to every live replica of a partition (missed writes
  are tracked and re-replicated), searches pick the least-loaded live
  replica and fail over to a sibling mid-query within the original
  deadline, and a typed ``SHARD_UNAVAILABLE`` error carrying partial
  results is raised only when every replica of a partition is gone;
* :mod:`repro.service.harness` — :class:`~repro.service.harness.ServerThread`,
  which runs any of these servers on a private event loop in a daemon
  thread, and :class:`~repro.service.harness.ReplicatedCluster`, which
  stands up a whole partitions×replicas cluster in-process so tests and
  benchmarks can kill and replace replicas under load.

Durability is optional: hand :class:`ServiceServer` an open
:class:`~repro.storage.RecordStore` and every upload/delete is logged to
disk *before* the client is acked, while construction replays the store's
live records into the cloud state and engine shards — a server restarted
on the same data directory resumes with the dataset (and upload/delete
leakage counters) it had when it died.

Security model is unchanged from the paper: the server still holds only
public scheme parameters, so everything the service can observe remains
exactly the paper's leakage function (sizes, access pattern, sub-token
counts).  The service adds *operational* observables (latency, queue depth)
that are properties of the deployment, not of the ciphertexts.
"""

from repro.service.aio import AsyncServiceClient
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.coordinator import (
    Coordinator,
    CoordinatorConfig,
    PartitionMap,
    ShardSpec,
)
from repro.service.engine import SearchEngine
from repro.service.harness import ReplicatedCluster, ServerThread
from repro.service.server import FramedServer, ServiceConfig, ServiceServer

__all__ = [
    "AsyncServiceClient",
    "Coordinator",
    "CoordinatorConfig",
    "FramedServer",
    "PartitionMap",
    "ReplicatedCluster",
    "RetryPolicy",
    "ServerThread",
    "ServiceClient",
    "SearchEngine",
    "ServiceConfig",
    "ServiceServer",
    "ShardSpec",
]
