"""Asynchronous multiplexing client for the CRSE query service.

The blocking :class:`~repro.service.client.ServiceClient` holds strict
request→reply discipline: one outstanding request per connection.  That
caps a single client's throughput at ``1 / round_trip`` even when the
server — which pipelines requests per connection and fans work across
worker processes — has capacity to spare.  :class:`AsyncServiceClient`
removes the cap by multiplexing: many requests are written to **one
persistent connection** without waiting, and a background reader task
matches each arriving reply to its request by the envelope ``id`` the
protocol already carries.  Replies may arrive in any order; the id is
the pairing, not the position.

Concurrency discipline:

* **bounded in-flight** — an ``asyncio.Semaphore`` caps how many requests
  may be outstanding at once, so a burst degrades into queueing at the
  client instead of a BUSY storm at the server;
* **per-request deadlines** — each request carries its ``deadline_ms``
  budget to the server and additionally arms a local timer (budget plus a
  small grace for the reply to travel); expiry abandons *that* future
  only — the connection is not poisoned, and a late reply is silently
  discarded by the reader;
* **typed retries** — the same narrow policy as the blocking client:
  ``BUSY`` and connection failures back off and retry, everything else
  surfaces typed.  One deliberate difference: a connection lost
  *mid-flight* fails every pending request with a retryable
  :class:`~repro.errors.ServiceConnectionError`, because the query path
  is idempotent (re-searching a token returns the same identifiers) and
  the one non-idempotent verb, ``upload``, is guarded server-side by
  duplicate-identifier rejection — a replayed upload that already
  applied fails loudly rather than double-applying;
* **connection supervision** — the reader task owns failure detection:
  EOF, truncation, or an unattributable reply tears the connection down
  and fails all pending futures; the next request transparently redials.
"""

from __future__ import annotations

import asyncio
import base64
import random

from repro.cloud.messages import (
    DeleteRequest,
    FetchRequest,
    SearchRequest,
    SearchResponse,
    UploadDataset,
)
from repro.errors import (
    DeadlineExceededError,
    IntegrityError,
    ProtocolError,
    ServiceBusyError,
    ServiceConnectionError,
    WireFormatError,
)
from repro.service import protocol
from repro.service.client import (
    RetryPolicy,
    _error_from_reply,
    _parse_batch_reply,
    _parse_search_reply,
)

__all__ = ["AsyncServiceClient"]


class AsyncServiceClient:
    """Asyncio client multiplexing many requests over one connection."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        max_in_flight: int = 64,
        grace_s: float = 5.0,
    ):
        """Point the client at ``host:port``.

        Args:
            host: Server host.
            port: Server port.
            timeout_s: Connect timeout, and the local reply timeout for
                requests that carry no ``deadline_ms``.
            retry: Backoff schedule; defaults to 4 attempts.
            rng: Jitter randomness (injectable for deterministic tests).
            max_in_flight: Cap on concurrently outstanding requests; the
                excess queues locally on the semaphore.
            grace_s: Extra local wait beyond a request's ``deadline_ms``
                before the client gives up on the reply — covers the
                server's own deadline error travelling back.
        """
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry or RetryPolicy()
        self.grace_s = grace_s
        self._rng = rng or random.Random()
        self._gate = asyncio.Semaphore(max_in_flight)
        self._send_lock = asyncio.Lock()
        self._conn_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Future] = {}
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._next_request_id = 1
        self._connections_opened = 0
        self._closed = False

    @property
    def connections_opened(self) -> int:
        """How many connections this client has dialed (ever)."""
        return self._connections_opened

    @property
    def in_flight(self) -> int:
        """How many requests are currently awaiting replies."""
        return len(self._pending)

    async def __aenter__(self) -> AsyncServiceClient:
        """Enter an ``async with`` block; the client needs no setup."""
        return self

    async def __aexit__(self, *exc_info) -> None:
        """Close the connection on block exit."""
        await self.close()

    async def close(self) -> None:
        """Tear down the connection and fail anything still pending."""
        self._closed = True
        task = self._reader_task
        writer = self._writer
        self._reader = None
        self._writer = None
        self._reader_task = None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        if writer is not None:
            await self._close_writer(writer)
        self._fail_pending(ServiceConnectionError("client closed"))

    # ------------------------------------------------------------------
    # Connection supervision
    # ------------------------------------------------------------------
    async def _ensure_connection(self) -> asyncio.StreamWriter:
        async with self._conn_lock:
            if self._closed:
                raise ServiceConnectionError("client is closed")
            if self._writer is not None:
                return self._writer
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.timeout_s,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                raise ServiceConnectionError(
                    f"cannot connect to {self.host}:{self.port}: {exc}"
                ) from exc
            self._reader = reader
            self._writer = writer
            self._connections_opened += 1
            self._reader_task = asyncio.ensure_future(
                self._read_loop(reader, writer)
            )
            return writer

    async def _read_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Dispatch every arriving reply to its pending future.

        Runs until the connection dies; whatever ends the loop becomes
        the exception failing all still-pending futures, so callers see
        *why* their request has no answer.
        """
        error: Exception | None = None
        try:
            while True:
                body = await protocol.read_frame(reader)
                if body is None:
                    error = ServiceConnectionError(
                        f"{self.host}:{self.port} closed the connection"
                    )
                    break
                reply = protocol.decode_reply(body)
                future = self._pending.pop(reply.request_id, None)
                if future is not None:
                    if not future.done():
                        future.set_result(reply)
                    continue
                if reply.request_id == 0 and not reply.ok:
                    # The server could not even attribute a request id —
                    # framing on this connection is suspect, and there is
                    # no telling whose request died.  Fail everything.
                    error = ProtocolError(
                        "server rejected an unattributable frame: "
                        f"{reply.error_message}"
                    )
                    break
                # A reply for a request we abandoned (deadline expiry):
                # drop it and keep the connection healthy.
        except WireFormatError as exc:
            error = exc
        except OSError as exc:
            error = ServiceConnectionError(
                f"connection to {self.host}:{self.port} lost: {exc}"
            )
        except asyncio.CancelledError:
            error = ServiceConnectionError("client closed")
        finally:
            await self._lose_connection(
                writer,
                error
                or ServiceConnectionError(
                    f"connection to {self.host}:{self.port} lost"
                ),
            )

    async def _lose_connection(
        self, writer: asyncio.StreamWriter, exc: Exception
    ) -> None:
        """Drop *writer* (if still current) and fail all pending futures."""
        if self._writer is writer:
            self._reader = None
            self._writer = None
            self._reader_task = None
        await self._close_writer(writer)
        self._fail_pending(exc)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    async def _roundtrip_once(
        self,
        request_id: int,
        body: bytes,
        deadline_ms: float | None,
    ) -> protocol.Reply:
        writer = await self._ensure_connection()
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._send_lock:
                if self._writer is not writer:
                    raise ServiceConnectionError(
                        "connection lost before the request was sent"
                    )
                await protocol.write_frame(writer, body)
        except OSError as exc:
            self._pending.pop(request_id, None)
            await self._lose_connection(
                writer,
                ServiceConnectionError(
                    f"send to {self.host}:{self.port} failed: {exc}"
                ),
            )
            raise ServiceConnectionError(
                f"send to {self.host}:{self.port} failed: {exc}"
            ) from exc
        except ServiceConnectionError:
            self._pending.pop(request_id, None)
            raise
        wait_s = (
            self.timeout_s
            if deadline_ms is None
            else deadline_ms / 1000.0 + self.grace_s
        )
        try:
            return await asyncio.wait_for(future, wait_s)
        except asyncio.TimeoutError as exc:
            # Abandon only this request: pop it so the reader discards
            # the late reply instead of poisoning the connection.
            self._pending.pop(request_id, None)
            raise DeadlineExceededError(
                f"no reply to request {request_id} within {wait_s:.3f} s"
            ) from exc

    async def _request(
        self,
        verb: str,
        fields: dict | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        request_id = self._next_request_id
        self._next_request_id += 1
        body = protocol.encode_request(
            verb, request_id, fields=fields, deadline_ms=deadline_ms
        )
        retries_left = self.retry.attempts - 1
        retry_index = 0
        async with self._gate:
            while True:
                try:
                    reply = await self._roundtrip_once(
                        request_id, body, deadline_ms
                    )
                except ServiceConnectionError:
                    if retries_left <= 0:
                        raise
                    retries_left -= 1
                    await asyncio.sleep(
                        self.retry.delay_s(retry_index, self._rng)
                    )
                    retry_index += 1
                    continue
                # The pending map is keyed by request id, so a reply can
                # only reach this coroutine if its id matched ours —
                # no positional-pairing check is needed here.
                if reply.ok:
                    return reply.fields
                if reply.error_code == protocol.ERR_BUSY:
                    if retries_left <= 0:
                        raise ServiceBusyError(reply.error_message)
                    retries_left -= 1
                    await asyncio.sleep(
                        self.retry.delay_s(retry_index, self._rng)
                    )
                    retry_index += 1
                    continue
                raise _error_from_reply(reply)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def upload(
        self, dataset: UploadDataset, deadline_ms: float | None = None
    ) -> int:
        """Upload an encrypted dataset; returns the server's record count."""
        fields = await self._request(
            "upload", protocol.upload_fields(dataset), deadline_ms=deadline_ms
        )
        stored = fields.get("stored")
        if not isinstance(stored, int):
            raise WireFormatError("upload reply missing 'stored' count")
        return stored

    async def search(
        self,
        token_payload: bytes,
        deadline_ms: float | None = None,
    ) -> tuple[SearchResponse, dict]:
        """Run one search; returns the response and the server's stats."""
        fields = await self._request(
            "search",
            protocol.search_fields(SearchRequest(payload=token_payload)),
            deadline_ms=deadline_ms,
        )
        return _parse_search_reply(fields)

    async def search_verified(
        self,
        token_payload: bytes,
        deadline_ms: float | None = None,
    ) -> tuple[SearchResponse, dict, dict]:
        """Run one search with a completeness proof attached.

        Raises:
            IntegrityError: If the server answered without the requested
                integrity section.
        """
        fields = await self._request(
            "search",
            protocol.search_fields(
                SearchRequest(payload=token_payload), verify=True
            ),
            deadline_ms=deadline_ms,
        )
        response, stats = _parse_search_reply(fields)
        section = protocol.integrity_section_from_fields(fields)
        if section is None:
            raise IntegrityError(
                "verification requested but the reply carries no "
                "integrity section"
            )
        return response, stats, section

    async def search_batch(
        self,
        token_payloads: tuple[bytes, ...],
        deadline_ms: float | None = None,
    ) -> tuple[tuple[SearchResponse, dict], ...]:
        """Run several searches in one round trip (request-order results)."""
        payloads = tuple(token_payloads)
        fields = await self._request(
            "search_batch",
            protocol.search_batch_fields(payloads),
            deadline_ms=deadline_ms,
        )
        return _parse_batch_reply(fields, len(payloads))

    async def fetch(
        self,
        identifiers: tuple[int, ...],
        deadline_ms: float | None = None,
    ) -> dict[int, bytes]:
        """Fetch encrypted record contents for *identifiers*."""
        fields = await self._request(
            "fetch",
            protocol.fetch_fields(FetchRequest(identifiers=identifiers)),
            deadline_ms=deadline_ms,
        )
        contents = fields.get("contents")
        if not isinstance(contents, list):
            raise WireFormatError("fetch reply missing contents")
        out: dict[int, bytes] = {}
        for entry in contents:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or not isinstance(entry[1], str)
            ):
                raise WireFormatError("malformed fetch reply entry")
            out[entry[0]] = base64.b64decode(entry[1].encode("ascii"))
        return out

    async def delete(
        self,
        identifiers: tuple[int, ...],
        deadline_ms: float | None = None,
    ) -> int:
        """Delete records by identifier; returns how many were removed."""
        fields = await self._request(
            "delete",
            protocol.delete_fields(DeleteRequest(identifiers=identifiers)),
            deadline_ms=deadline_ms,
        )
        removed = fields.get("removed")
        if not isinstance(removed, int):
            raise WireFormatError("delete reply missing 'removed' count")
        return removed

    async def health(self, deadline_ms: float | None = None) -> dict:
        """Liveness probe: status, record count, worker count."""
        return await self._request("health", deadline_ms=deadline_ms)

    async def stats(self, deadline_ms: float | None = None) -> dict:
        """The server's metrics snapshot (counters, latency histograms)."""
        return await self._request("stats", deadline_ms=deadline_ms)

    async def cluster(self, deadline_ms: float | None = None) -> dict:
        """The coordinator's topology report (replication, replica
        liveness, resync debt); plain shards answer ``PROTOCOL``."""
        fields = await self._request("cluster", deadline_ms=deadline_ms)
        if not isinstance(fields.get("partitions"), list):
            raise WireFormatError("cluster reply missing 'partitions'")
        return fields
