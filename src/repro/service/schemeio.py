"""Shipping public scheme parameters to search worker processes.

The search engine's worker processes must rebuild the scheme — data space,
group backend, split form — from parameters alone, exactly the way a real
cloud instance would receive them out of band.  Only **public** material
crosses the process boundary: for CRSE-I the fixed squared radius is public
by design (paper Sec. VI-B), and for CRSE-II the split form is a pure
function of the dimension.  The secret SSW key never leaves the owner.

The header is a plain JSON-able dict so it can also ride inside protocol
envelopes if a future deployment provisions workers over the network.
"""

from __future__ import annotations

from repro.core.base import CRSEScheme
from repro.core.crse1 import CRSE1Scheme
from repro.core.crse2 import CRSE2Scheme
from repro.core.geometry import DataSpace
from repro.crypto.keystore import group_header, restore_group
from repro.errors import SerializationError

__all__ = ["scheme_header", "restore_scheme"]


def scheme_header(scheme: CRSEScheme) -> dict:
    """Public parameters from which *scheme* can be rebuilt in a worker.

    Raises:
        SerializationError: For an unsupported scheme type.
    """
    header: dict = {
        "group": group_header(scheme.group),
        "space": {"w": scheme.space.w, "t": scheme.space.t},
    }
    if isinstance(scheme, CRSE2Scheme):
        header["scheme"] = "crse2"
        return header
    if isinstance(scheme, CRSE1Scheme):
        header["scheme"] = "crse1"
        header["r_squared"] = scheme.r_squared
        # Same derivations the key format uses (repro.crypto.keystore):
        # whether the merged split is in play, and the public padding K.
        header["optimized"] = scheme.alpha != (scheme.space.w + 2) ** scheme.m
        header["hide_to"] = scheme.m if scheme.m != scheme._m_real else None
        return header
    raise SerializationError(
        f"cannot describe scheme {type(scheme).__name__} for workers"
    )


def restore_scheme(header: dict) -> CRSEScheme:
    """Rebuild the scheme described by :func:`scheme_header`.

    Raises:
        SerializationError: On a malformed or unknown header.
    """
    try:
        group = restore_group(header["group"])
        space = DataSpace(header["space"]["w"], header["space"]["t"])
        kind = header["scheme"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed scheme header: {exc}") from exc
    if kind == "crse2":
        return CRSE2Scheme(space, group)
    if kind == "crse1":
        try:
            return CRSE1Scheme(
                space,
                group,
                r_squared=header["r_squared"],
                optimize_split=header["optimized"],
                hide_radius_to=header["hide_to"],
            )
        except (KeyError, TypeError) as exc:
            raise SerializationError(
                f"malformed CRSE-I scheme header: {exc}"
            ) from exc
    raise SerializationError(f"unknown scheme kind {kind!r}")
