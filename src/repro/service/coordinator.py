"""Distributed search: a coordinator fanning out to backend shards.

The :class:`Coordinator` is a front-end speaking the same framed wire
protocol as :class:`~repro.service.server.ServiceServer` — clients cannot
tell the difference on the happy path — but it stores no records itself.
It owns only the :class:`PartitionMap` (which record identifier lives on
which backend) and routes every verb:

* **upload** — new records are assigned to the least-loaded shard and the
  per-shard sub-batches are uploaded concurrently; the partition map is
  persisted (atomic tmp+rename, same discipline as the storage manifest)
  recording exactly the assignments the shards acked.
* **search** — the token is fanned out to *every* shard concurrently (the
  dataset is partitioned, so each shard scans only its slice), matched
  identifiers are merged, and the per-shard
  :class:`~repro.cloud.server.SearchStats` are aggregated: scan counts
  sum, wall-clock is the slowest shard — the paper's multi-instance
  parallel-search model, now over real processes.
* **fetch / delete** — routed to the owning shard(s) via the map.

Failure semantics are explicit rather than optimistic.  A dead shard
turns the reply into a typed ``SHARD_UNAVAILABLE`` error that still
carries the partial results the reachable shards attested to, plus one
report per shard saying who answered.  A ``BUSY`` shard is retried by
that shard's own client (independent backoff) without re-querying shards
that already answered.  Deadlines propagate: each shard receives the
budget that remains after coordinator-side elapsed time.

The coordinator never holds key material and never decodes tokens or
ciphertexts — it routes opaque bytes.  Its view (which shard stores how
many records, which shards matched per query) is a subset of what the
shards themselves already observe, so the paper's leakage function is
unchanged; only its bookkeeping is now split across machines.

Membership changes are handled offline (before serving) by
:meth:`Coordinator.reconcile_membership` and :meth:`Coordinator.rebalance`:
records are migrated shard-to-shard via payload-bearing fetches (the
``shards`` capability of :mod:`repro.service.protocol`) and the map is
rewritten only after the receiving shard acked.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.cloud.messages import FetchResponse, UploadDataset, UploadRecord
from repro.errors import (
    ParameterError,
    ProtocolError,
    ReproError,
    ShardUnavailableError,
    StorageError,
)
from repro.integrity import EMPTY_ROOT, xor_fold
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import FramedServer
from repro.storage.manifest import fsync_directory

__all__ = [
    "PARTITION_FILENAME",
    "ShardSpec",
    "PartitionMap",
    "CoordinatorConfig",
    "Coordinator",
]

#: On-disk name of the persisted partition map inside the coordinator's
#: data directory.
PARTITION_FILENAME = "PARTITION.json"


@dataclass(frozen=True)
class ShardSpec:
    """Network address of one backend shard."""

    host: str
    port: int

    @property
    def addr(self) -> str:
        """The canonical ``host:port`` string used in maps and reports."""
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse a ``host:port`` string (as given to ``--shard``).

        Raises:
            ParameterError: If *text* is not ``host:port`` with a valid
                port number.
        """
        host, sep, port_text = text.rpartition(":")
        if not sep or not host:
            raise ParameterError(f"shard address {text!r} is not host:port")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ParameterError(
                f"shard address {text!r} has a non-numeric port"
            ) from exc
        if not 0 < port < 65536:
            raise ParameterError(f"shard port {port} out of range")
        return cls(host=host, port=port)


class PartitionMap:
    """Which record identifier lives on which shard.

    This is the only state the coordinator owns.  It is deliberately tiny
    (ints and address strings — no ciphertext bytes) and is persisted with
    the same atomic tmp+rename+fsync discipline as the storage layer's
    manifest, so a crashed coordinator restarts with a map describing a
    set of assignments every involved shard actually acked.
    """

    VERSION = 1

    def __init__(self, shards=(), assignments=None):
        """Create a map over *shards* (addr strings) with *assignments*."""
        self.shards: list[str] = list(shards)
        self.assignments: dict[int, str] = dict(assignments or {})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def owner(self, identifier: int) -> str | None:
        """The addr storing *identifier*, or ``None`` if unknown."""
        return self.assignments.get(identifier)

    def ids_on(self, addr: str) -> tuple[int, ...]:
        """All identifiers assigned to *addr*, sorted."""
        return tuple(
            sorted(i for i, a in self.assignments.items() if a == addr)
        )

    def counts(self) -> dict[str, int]:
        """Record count per shard addr (zero entries included)."""
        counts = {addr: 0 for addr in self.shards}
        for addr in self.assignments.values():
            counts[addr] = counts.get(addr, 0) + 1
        return counts

    @property
    def record_count(self) -> int:
        """Total records assigned across all shards."""
        return len(self.assignments)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form (sorted for deterministic bytes)."""
        return {
            "version": self.VERSION,
            "shards": list(self.shards),
            "assignments": [
                [identifier, addr]
                for identifier, addr in sorted(self.assignments.items())
            ],
        }

    @classmethod
    def from_dict(cls, raw) -> "PartitionMap":
        """Rebuild a map from :meth:`to_dict` output.

        Raises:
            StorageError: On a malformed or wrong-version document.
        """
        if not isinstance(raw, dict) or raw.get("version") != cls.VERSION:
            raise StorageError("partition map: unsupported document")
        shards = raw.get("shards")
        if not isinstance(shards, list) or not all(
            isinstance(a, str) for a in shards
        ):
            raise StorageError("partition map: shards must be addr strings")
        entries = raw.get("assignments")
        if not isinstance(entries, list):
            raise StorageError("partition map: assignments must be a list")
        assignments = {}
        for entry in entries:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or isinstance(entry[0], bool)
                or not isinstance(entry[1], str)
            ):
                raise StorageError(
                    "partition map: each assignment must be [id, addr]"
                )
            if entry[0] in assignments:
                raise StorageError(
                    f"partition map: identifier {entry[0]} assigned twice"
                )
            assignments[entry[0]] = entry[1]
        return cls(shards=shards, assignments=assignments)

    @classmethod
    def load(cls, directory: Path) -> "PartitionMap | None":
        """Load the persisted map from *directory*, or ``None`` if absent.

        Raises:
            StorageError: If the file exists but is malformed.
        """
        path = Path(directory) / PARTITION_FILENAME
        if not path.exists():
            return None
        try:
            raw = json.loads(path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"partition map unreadable: {exc}") from exc
        return cls.from_dict(raw)

    def save(self, directory: Path) -> None:
        """Atomically persist the map into *directory*.

        Same crash discipline as the storage manifest: write a temp file,
        fsync it, rename over the target, fsync the directory — a crash
        at any point leaves either the old map or the new one, never a
        torn file.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / PARTITION_FILENAME
        tmp = directory / (PARTITION_FILENAME + ".tmp")
        data = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(target)
        fsync_directory(directory)


@dataclass(frozen=True)
class CoordinatorConfig:
    """Tunables for one coordinator instance."""

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 32
    default_deadline_ms: float | None = None
    max_deadline_ms: float = 60_000.0
    drain_timeout_s: float = 10.0
    #: Socket timeout for each backend call (connect + reply).
    shard_timeout_s: float = 30.0


def _default_client_factory(spec: ShardSpec, timeout_s: float) -> ServiceClient:
    return ServiceClient(spec.host, spec.port, timeout_s=timeout_s)


class Coordinator(FramedServer):
    """Front-end server that routes every verb across backend shards."""

    def __init__(
        self,
        shards,
        config: CoordinatorConfig | None = None,
        data_dir: Path | str | None = None,
        client_factory=None,
    ):
        """Assemble the coordinator (does not bind the port yet).

        Args:
            shards: The configured backend :class:`ShardSpec` list (or
                ``host:port`` strings); must be non-empty and unique.
            config: Coordinator tunables.
            data_dir: Directory for the persisted partition map.  When
                given, an existing map is loaded (so a restarted
                coordinator knows where every record lives) and every
                successful mutation rewrites it atomically.  ``None``
                keeps the map in memory only — fine for tests.
            client_factory: ``(ShardSpec, timeout_s) -> ServiceClient``
                hook for tests that need to interpose on shard traffic.

        A persisted map that assigns records to shards no longer in the
        configured set is loaded as-is, but the coordinator refuses to
        *serve* until :meth:`reconcile_membership` has migrated those
        records — silently orphaning data is not an option.

        Raises:
            ParameterError: On an empty or duplicated shard list.
        """
        super().__init__(config or CoordinatorConfig())
        specs = [
            s if isinstance(s, ShardSpec) else ShardSpec.parse(s)
            for s in shards
        ]
        if not specs:
            raise ParameterError("coordinator needs at least one shard")
        if len({s.addr for s in specs}) != len(specs):
            raise ParameterError("duplicate shard addresses")
        self.shards: tuple[ShardSpec, ...] = tuple(specs)
        self._by_addr = {s.addr: s for s in self.shards}
        self.data_dir = None if data_dir is None else Path(data_dir)
        self._client_factory = client_factory or _default_client_factory
        # Shard clients keep persistent connections and are not
        # thread-safe, so each fan-out pool thread caches its own client
        # per shard (thread-local).  The flat registry exists only so
        # shutdown can close every cached socket.
        self._local = threading.local()
        self._clients_lock = threading.Lock()
        self._all_clients: list[ServiceClient] = []
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.shards)),
            thread_name_prefix="coord",
        )
        loaded = (
            PartitionMap.load(self.data_dir)
            if self.data_dir is not None
            else None
        )
        if loaded is None:
            self.partition_map = PartitionMap(
                shards=[s.addr for s in self.shards]
            )
        else:
            loaded.shards = [s.addr for s in self.shards]
            self.partition_map = loaded
        self._persist_map()

    @property
    def needs_reconcile(self) -> bool:
        """Whether the map assigns records to unconfigured shards."""
        configured = {s.addr for s in self.shards}
        return any(
            addr not in configured
            for addr in self.partition_map.assignments.values()
        )

    async def start(self) -> int:
        """Bind and start accepting connections (see ``FramedServer``).

        Raises:
            StorageError: If the partition map still assigns records to
                shards outside the configured set — run
                :meth:`reconcile_membership` first.
        """
        if self.needs_reconcile:
            raise StorageError(
                "partition map assigns records to unconfigured shards; "
                "run membership reconciliation before serving"
            )
        return await super().start()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _persist_map(self) -> None:
        if self.data_dir is not None:
            self.partition_map.save(self.data_dir)

    def _client(self, spec: ShardSpec) -> ServiceClient:
        cache = getattr(self._local, "clients", None)
        if cache is None:
            cache = self._local.clients = {}
        client = cache.get(spec.addr)
        if client is None:
            client = self._client_factory(spec, self.config.shard_timeout_s)
            cache[spec.addr] = client
            with self._clients_lock:
                self._all_clients.append(client)
        return client

    def _close_resources(self, drain: bool) -> None:
        self._pool.shutdown(wait=drain)
        with self._clients_lock:
            clients, self._all_clients = self._all_clients, []
        for client in clients:
            close = getattr(client, "close", None)
            if close is not None:
                close()

    async def _fan_out(self, specs, call):
        """Run blocking *call(spec)* for every shard concurrently.

        Returns ``[(spec, outcome), ...]`` in *specs* order, where each
        outcome is either the call's return value or the exception it
        raised (shard failures must not cancel sibling calls — partial
        results are the whole point).
        """
        loop = asyncio.get_running_loop()
        futures = [
            loop.run_in_executor(self._pool, call, spec) for spec in specs
        ]
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        return list(zip(specs, outcomes))

    def _remaining_ms(
        self, request: protocol.Request, started: float
    ) -> float | None:
        """The deadline budget left for backend calls, if any."""
        deadline = self._effective_deadline(request)
        if deadline is None:
            return None
        elapsed = (time.perf_counter() - started) * 1000.0
        # Never send a non-positive deadline: the coordinator's own
        # wait_for is about to fire anyway; 1 ms keeps the wire valid.
        return max(deadline - elapsed, 1.0)

    @staticmethod
    def _group_by_owner(identifiers, partition_map) -> dict[str, list[int]]:
        grouped: dict[str, list[int]] = {}
        for identifier in identifiers:
            addr = partition_map.owner(identifier)
            if addr is None:
                continue
            grouped.setdefault(addr, []).append(identifier)
        return grouped

    # ------------------------------------------------------------------
    # Verb handlers
    # ------------------------------------------------------------------
    def _handlers(self) -> dict:
        return {
            "upload": self._do_upload,
            "search": self._do_search,
            "search_batch": self._do_search_batch,
            "fetch": self._do_fetch,
            "delete": self._do_delete,
            "health": self._do_health,
            "stats": self._do_stats,
        }

    async def _do_search(self, request: protocol.Request) -> dict:
        message = protocol.search_from_fields(request.fields)
        verify = protocol.search_wants_verify(request.fields)
        started = time.perf_counter()
        budget = self._remaining_ms(request, started)

        def ask(spec: ShardSpec):
            client = self._client(spec)
            if verify:
                return client.search_verified(
                    message.payload, deadline_ms=budget
                )
            return client.search(message.payload, deadline_ms=budget)

        outcomes = await self._fan_out(self.shards, ask)
        merged: set[int] = set()
        reports: list[dict] = []
        failures: list[str] = []
        records_scanned = 0
        sub_token_evaluations = 0
        elapsed_ms = 0.0
        partitions: list[float] = []
        integrity_matches: list[list] = []
        integrity_shards: list[dict] = []
        for spec, outcome in outcomes:
            if isinstance(outcome, BaseException):
                reports.append(
                    {"addr": spec.addr, "ok": False, "error": str(outcome)}
                )
                failures.append(spec.addr)
                continue
            if verify:
                response, stats, section = outcome
                # Matches gain a fourth element — an index into the
                # merged shard-proof list — so the verifier can pair
                # each match with the shard that attested it.
                index = len(integrity_shards)
                for entry in section["matches"]:
                    integrity_matches.append([*entry[:3], index])
                proof = dict(section["shards"][0])
                proof["addr"] = spec.addr
                integrity_shards.append(proof)
            else:
                response, stats = outcome
            merged.update(response.identifiers)
            reports.append(
                {
                    "addr": spec.addr,
                    "ok": True,
                    "records": len(response.identifiers),
                    "stats": stats,
                }
            )
            records_scanned += int(stats.get("records_scanned", 0))
            sub_token_evaluations += int(
                stats.get("sub_token_evaluations", 0)
            )
            elapsed_ms = max(elapsed_ms, float(stats.get("elapsed_ms", 0.0)))
            shard_partitions = stats.get("partitions")
            if isinstance(shard_partitions, list):
                partitions.extend(float(ms) for ms in shard_partitions)
        identifiers = sorted(merged)
        if failures:
            raise ShardUnavailableError(
                f"search lost shard(s) {', '.join(failures)}; partial "
                f"results cover {len(self.shards) - len(failures)} of "
                f"{len(self.shards)} shards",
                partial_identifiers=tuple(identifiers),
                shards=tuple(reports),
            )
        fields = {
            "identifiers": identifiers,
            "stats": {
                "records_scanned": records_scanned,
                "matches": len(identifiers),
                "sub_token_evaluations": sub_token_evaluations,
                "elapsed_ms": elapsed_ms,
                "partitions": partitions,
            },
            **protocol.shard_reports_fields(reports),
        }
        if verify:
            fields.update(
                protocol.integrity_section_fields(
                    integrity_matches, integrity_shards
                )
            )
        return fields

    async def _do_search_batch(self, request: protocol.Request) -> dict:
        payloads = protocol.search_batch_from_fields(request.fields)
        started = time.perf_counter()
        budget = self._remaining_ms(request, started)

        def ask(spec: ShardSpec):
            return self._client(spec).search_batch(
                payloads, deadline_ms=budget
            )

        outcomes = await self._fan_out(self.shards, ask)
        merged: list[set[int]] = [set() for _ in payloads]
        aggregates: list[dict] = [
            {
                "records_scanned": 0,
                "sub_token_evaluations": 0,
                "elapsed_ms": 0.0,
                "partitions": [],
            }
            for _ in payloads
        ]
        reports: list[dict] = []
        failures: list[str] = []
        for spec, outcome in outcomes:
            if isinstance(outcome, BaseException):
                reports.append(
                    {"addr": spec.addr, "ok": False, "error": str(outcome)}
                )
                failures.append(spec.addr)
                continue
            matched = 0
            for index, (response, stats) in enumerate(outcome):
                merged[index].update(response.identifiers)
                matched += len(response.identifiers)
                aggregate = aggregates[index]
                aggregate["records_scanned"] += int(
                    stats.get("records_scanned", 0)
                )
                aggregate["sub_token_evaluations"] += int(
                    stats.get("sub_token_evaluations", 0)
                )
                aggregate["elapsed_ms"] = max(
                    aggregate["elapsed_ms"],
                    float(stats.get("elapsed_ms", 0.0)),
                )
                shard_partitions = stats.get("partitions")
                if isinstance(shard_partitions, list):
                    aggregate["partitions"].extend(
                        float(ms) for ms in shard_partitions
                    )
            reports.append(
                {"addr": spec.addr, "ok": True, "records": matched}
            )
        if failures:
            partial: set[int] = set()
            for matches in merged:
                partial.update(matches)
            raise ShardUnavailableError(
                f"batch search lost shard(s) {', '.join(failures)}; "
                f"partial results cover "
                f"{len(self.shards) - len(failures)} of "
                f"{len(self.shards)} shards",
                partial_identifiers=tuple(sorted(partial)),
                shards=tuple(reports),
            )
        results = []
        for index, matches in enumerate(merged):
            identifiers = tuple(sorted(matches))
            stats = aggregates[index]
            stats["matches"] = len(identifiers)
            results.append((identifiers, stats))
        return {
            **protocol.batch_results_fields(results),
            **protocol.shard_reports_fields(reports),
        }

    async def _do_upload(self, request: protocol.Request) -> dict:
        message = protocol.upload_from_fields(request.fields)
        budget = self._remaining_ms(request, time.perf_counter())
        # Duplicate checks mirror the single server: within the batch and
        # against everything already assigned anywhere in the cluster.
        seen = set(self.partition_map.assignments)
        for record in message.records:
            if record.identifier in seen:
                raise ProtocolError(
                    f"duplicate record identifier {record.identifier}"
                )
            seen.add(record.identifier)
        # Assign each record to the currently least-loaded shard, counting
        # this batch's own assignments so one big upload spreads evenly.
        counts = self.partition_map.counts()
        per_shard: dict[str, list[UploadRecord]] = {}
        for record in message.records:
            addr = min(
                (s.addr for s in self.shards), key=lambda a: (counts[a], a)
            )
            counts[addr] += 1
            per_shard.setdefault(addr, []).append(record)

        def push(spec: ShardSpec):
            batch = per_shard.get(spec.addr)
            if not batch:
                return None
            return self._client(spec).upload(
                UploadDataset(records=tuple(batch)), deadline_ms=budget
            )

        targets = [s for s in self.shards if per_shard.get(s.addr)]
        outcomes = await self._fan_out(targets, push)
        reports: list[dict] = []
        failures: list[str] = []
        stored_ids: list[int] = []
        for spec, outcome in outcomes:
            if isinstance(outcome, BaseException):
                reports.append(
                    {"addr": spec.addr, "ok": False, "error": str(outcome)}
                )
                failures.append(spec.addr)
                continue
            acked = per_shard[spec.addr]
            for record in acked:
                self.partition_map.assignments[record.identifier] = spec.addr
                stored_ids.append(record.identifier)
            reports.append(
                {"addr": spec.addr, "ok": True, "stored": len(acked)}
            )
        # Persist exactly what was acked — a crash right here leaves a map
        # describing records the shards really hold, nothing more.  The
        # fsync must not stall concurrent searches, so it runs off-loop.
        await self._offload(self._persist_map)
        if failures:
            raise ShardUnavailableError(
                f"upload lost shard(s) {', '.join(failures)}; "
                f"{len(stored_ids)} of {len(message.records)} records "
                "were stored",
                partial_identifiers=tuple(sorted(stored_ids)),
                shards=tuple(reports),
            )
        return {
            "stored": self.partition_map.record_count,
            **protocol.shard_reports_fields(reports),
        }

    async def _do_delete(self, request: protocol.Request) -> dict:
        message = protocol.delete_from_fields(request.fields)
        budget = self._remaining_ms(request, time.perf_counter())
        grouped = self._group_by_owner(message.identifiers, self.partition_map)
        specs = [self._by_addr[addr] for addr in sorted(grouped)]

        def drop(spec: ShardSpec):
            return self._client(spec).delete(
                tuple(grouped[spec.addr]), deadline_ms=budget
            )

        outcomes = await self._fan_out(specs, drop)
        reports: list[dict] = []
        failures: list[str] = []
        removed = 0
        for spec, outcome in outcomes:
            if isinstance(outcome, BaseException):
                reports.append(
                    {"addr": spec.addr, "ok": False, "error": str(outcome)}
                )
                failures.append(spec.addr)
                continue
            for identifier in grouped[spec.addr]:
                self.partition_map.assignments.pop(identifier, None)
            removed += outcome
            reports.append(
                {"addr": spec.addr, "ok": True, "removed": outcome}
            )
        await self._offload(self._persist_map)
        if failures:
            raise ShardUnavailableError(
                f"delete lost shard(s) {', '.join(failures)}",
                shards=tuple(reports),
            )
        return {
            "removed": removed,
            **protocol.shard_reports_fields(reports),
        }

    async def _do_fetch(self, request: protocol.Request) -> dict:
        message = protocol.fetch_from_fields(request.fields)
        budget = self._remaining_ms(request, time.perf_counter())
        wants_payloads = protocol.fetch_wants_payloads(request.fields)
        for identifier in message.identifiers:
            if self.partition_map.owner(identifier) is None:
                raise ProtocolError(
                    f"no stored content for identifier {identifier}"
                )
        grouped = self._group_by_owner(message.identifiers, self.partition_map)
        specs = [self._by_addr[addr] for addr in sorted(grouped)]

        def pull(spec: ShardSpec):
            client = self._client(spec)
            wanted = tuple(grouped[spec.addr])
            if wants_payloads:
                return client.export(wanted, deadline_ms=budget)
            return client.fetch(wanted, deadline_ms=budget)

        outcomes = await self._fan_out(specs, pull)
        failures = [
            spec.addr
            for spec, outcome in outcomes
            if isinstance(outcome, BaseException)
        ]
        if failures:
            raise ShardUnavailableError(
                f"fetch lost shard(s) {', '.join(failures)}",
                shards=tuple(
                    {
                        "addr": spec.addr,
                        "ok": not isinstance(outcome, BaseException),
                    }
                    for spec, outcome in outcomes
                ),
            )
        if wants_payloads:
            by_id = {
                row[0]: row
                for _, outcome in outcomes
                for row in outcome
            }
            return protocol.export_rows_fields(
                [by_id[i] for i in message.identifiers]
            )
        contents: dict[int, bytes] = {}
        for _, outcome in outcomes:
            contents.update(outcome)
        return protocol.fetch_response_fields(
            FetchResponse(
                contents=tuple(
                    (i, contents[i]) for i in message.identifiers
                )
            )
        )

    async def _do_health(self, request: protocol.Request) -> dict:
        budget = self._remaining_ms(request, time.perf_counter())

        def probe(spec: ShardSpec):
            return self._client(spec).health(deadline_ms=budget)

        outcomes = await self._fan_out(self.shards, probe)
        reports: list[dict] = []
        healthy = 0
        for spec, outcome in outcomes:
            if isinstance(outcome, BaseException):
                reports.append(
                    {"addr": spec.addr, "ok": False, "error": str(outcome)}
                )
                continue
            healthy += 1
            reports.append(
                {
                    "addr": spec.addr,
                    "ok": True,
                    "status": str(outcome.get("status", "")),
                    "records": int(outcome.get("records", 0)),
                }
            )
        return {
            "status": "ok" if healthy == len(self.shards) else "degraded",
            "coordinator": True,
            "records": self.partition_map.record_count,
            "shards_healthy": healthy,
            "shards_total": len(self.shards),
            **protocol.shard_reports_fields(reports),
        }

    async def _do_stats(self, request: protocol.Request) -> dict:
        budget = self._remaining_ms(request, time.perf_counter())

        def probe(spec: ShardSpec):
            return self._client(spec).stats(deadline_ms=budget)

        outcomes = await self._fan_out(self.shards, probe)
        reports = []
        for spec, outcome in outcomes:
            if isinstance(outcome, BaseException):
                reports.append(
                    {"addr": spec.addr, "ok": False, "error": str(outcome)}
                )
            else:
                reports.append(
                    {"addr": spec.addr, "ok": True, "stats": outcome}
                )
        snapshot = self.metrics.snapshot()
        snapshot["records"] = self.partition_map.record_count
        snapshot.update(self._saturation_fields())
        snapshot["partition"] = {
            "counts": self.partition_map.counts(),
        }
        # Cluster-wide saturation: sum the reachable shards' own queue
        # gauges so one stats call shows where the fleet is loaded.
        cluster = {
            "in_flight": 0,
            "peak_in_flight": 0,
            "rejected_busy": 0,
            "shards_reporting": 0,
        }
        for report in reports:
            stats = report.get("stats")
            if not report.get("ok") or not isinstance(stats, dict):
                continue
            queue = stats.get("queue")
            if isinstance(queue, dict):
                cluster["in_flight"] += int(queue.get("in_flight", 0))
                cluster["peak_in_flight"] += int(
                    queue.get("peak_in_flight", 0)
                )
            cluster["rejected_busy"] += int(stats.get("rejected_busy", 0))
            cluster["shards_reporting"] += 1
        snapshot["cluster"] = cluster
        integrity = self._aggregate_integrity(reports)
        if integrity is not None:
            snapshot["integrity"] = integrity
        snapshot.update(protocol.shard_reports_fields(reports))
        return snapshot

    @staticmethod
    def _aggregate_integrity(reports) -> dict | None:
        """Fold per-shard integrity stats into one cluster-wide view.

        Tag and record counts sum, accumulator roots XOR together (the
        same aggregation the client's verifier applies to per-shard
        proofs), and the cluster is *complete* only if every shard is.
        Returns ``None`` when no reachable shard reported integrity
        state (pre-integrity shards, or every probe failed).
        """
        sections = [
            report["stats"]["integrity"]
            for report in reports
            if report.get("ok")
            and isinstance(report.get("stats"), dict)
            and isinstance(report["stats"].get("integrity"), dict)
        ]
        if not sections:
            return None
        root = EMPTY_ROOT
        for section in sections:
            try:
                shard_root = bytes.fromhex(str(section.get("root", "")))
            except ValueError:
                shard_root = b""
            if len(shard_root) == len(EMPTY_ROOT):
                root = xor_fold([root, shard_root])
        proofs = [str(section.get("last_proof", "never")) for section in sections]
        if "failed" in proofs:
            last_proof = "failed"
        elif "served" in proofs:
            last_proof = "served"
        else:
            last_proof = "never"
        return {
            "tags": sum(int(section.get("tags", 0)) for section in sections),
            "records": sum(
                int(section.get("records", 0)) for section in sections
            ),
            "complete": all(
                bool(section.get("complete")) for section in sections
            ),
            "root": root.hex(),
            "version": sum(
                int(section.get("version", 0)) for section in sections
            ),
            "last_proof": last_proof,
            "shards_reporting": len(sections),
        }

    # ------------------------------------------------------------------
    # Membership (offline — run before serving)
    # ------------------------------------------------------------------
    def reconcile_membership(self) -> dict[str, int]:
        """Migrate records off shards that left the configured set.

        Called offline (the CLI runs it before binding the listen port)
        when the persisted map names shards the operator no longer
        configured.  Every record on a departed-but-reachable shard is
        exported (payload-bearing fetch), re-uploaded to the least-loaded
        surviving shard, deleted from the donor, and the map is persisted
        after each batch — so a crash mid-migration loses nothing: the
        record is either still on the donor (map unchanged) or acked by
        the receiver (map updated).

        Returns:
            ``{donor_addr: records_moved}`` for each departed shard.

        Raises:
            ShardUnavailableError: If a departed shard is unreachable (its
                records cannot be recovered by the coordinator alone).
        """
        configured = {s.addr for s in self.shards}
        departed = sorted(
            {
                addr
                for addr in self.partition_map.assignments.values()
                if addr not in configured
            }
        )
        moved: dict[str, int] = {}
        for donor_addr in departed:
            donor = ShardSpec.parse(donor_addr)
            doomed = self.partition_map.ids_on(donor_addr)
            try:
                rows = self._client(donor).export(doomed)
            except ReproError as exc:
                raise ShardUnavailableError(
                    f"departed shard {donor_addr} is unreachable; "
                    f"{len(doomed)} records cannot be migrated: {exc}"
                ) from exc
            self._migrate_rows(rows, from_addr=donor_addr)
            try:
                self._client(donor).delete(doomed)
            except ReproError:
                # The receivers acked and the map is persisted; a stale
                # copy on a shard that is leaving the cluster is garbage,
                # not a correctness problem.
                pass
            moved[donor_addr] = len(doomed)
        return moved

    def rebalance(self, batch_size: int = 64) -> int:
        """Even out record counts after shards were added.

        Moves records from the most- to the least-loaded shard in batches
        (export → upload → delete → persist map) until no shard is more
        than one record above the mean.  Each batch is crash-safe in the
        same way as :meth:`reconcile_membership`.

        Returns:
            Total records moved.
        """
        moved = 0
        while True:
            counts = self.partition_map.counts()
            donor_addr = max(counts, key=lambda a: (counts[a], a))
            receiver_addr = min(counts, key=lambda a: (counts[a], a))
            if counts[donor_addr] - counts[receiver_addr] <= 1:
                return moved
            surplus = counts[donor_addr] - (
                self.partition_map.record_count // len(self.shards)
            )
            chunk = self.partition_map.ids_on(donor_addr)[
                : max(1, min(batch_size, surplus))
            ]
            rows = self._client(self._by_addr[donor_addr]).export(chunk)
            self._migrate_rows(
                rows, from_addr=donor_addr, to_addr=receiver_addr
            )
            self._client(self._by_addr[donor_addr]).delete(chunk)
            moved += len(chunk)

    def _migrate_rows(self, rows, from_addr: str, to_addr=None) -> None:
        """Upload exported *rows* to surviving shards and persist the map."""
        counts = self.partition_map.counts()
        per_shard: dict[str, list[UploadRecord]] = {}
        for row in rows:
            identifier, payload, content = row[0], row[1], row[2]
            tag = row[3] if len(row) > 3 else b""
            mtag = row[4] if len(row) > 4 else b""
            addr = to_addr or min(
                (s.addr for s in self.shards), key=lambda a: (counts[a], a)
            )
            counts[addr] += 1
            per_shard.setdefault(addr, []).append(
                UploadRecord(
                    identifier=identifier,
                    payload=payload,
                    content=content,
                    tag=tag,
                    mtag=mtag,
                )
            )
        for addr, batch in per_shard.items():
            self._client(self._by_addr[addr]).upload(
                UploadDataset(records=tuple(batch))
            )
            for record in batch:
                self.partition_map.assignments[record.identifier] = addr
        self._persist_map()
