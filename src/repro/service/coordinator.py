"""Distributed search: a coordinator fanning out to replicated shards.

The :class:`Coordinator` is a front-end speaking the same framed wire
protocol as :class:`~repro.service.server.ServiceServer` — clients cannot
tell the difference on the happy path — but it stores no records itself.
It owns only the :class:`PartitionMap` (which record identifier lives in
which partition, and which R backend replicas serve that partition) and
routes every verb:

* **upload** — new records are assigned to the least-loaded partition and
  the per-partition sub-batches fan out to *every* live replica of that
  partition concurrently, with per-replica ack tracking: a replica that
  misses the write (down, or still resyncing) is marked *dirty* in the
  map so :meth:`Coordinator.repair` can copy the rows from a clean
  sibling later.  The partition map is persisted (atomic tmp+rename,
  same discipline as the storage manifest) recording exactly the
  assignments at least one replica acked.
* **search** — the token is fanned out to every partition concurrently
  (the dataset is partitioned, so each partition scans only its slice);
  within a partition the least-loaded live replica serves, and if it
  dies or stalls mid-query the coordinator fails over to a sibling
  replica *within the original deadline* (the remaining budget is split
  across the untried replicas).  Matched identifiers are merged and the
  per-shard :class:`~repro.cloud.server.SearchStats` are aggregated:
  scan counts sum, wall-clock is the slowest partition — the paper's
  multi-instance parallel-search model, now over real processes with no
  load-bearing single server.
* **fetch / delete** — routed to the owning partition(s) via the map;
  reads fail over like searches, deletes fan out like uploads.

Failure semantics are explicit rather than optimistic.  A typed
``SHARD_UNAVAILABLE`` error is raised only when *every* replica of a
partition is gone; it still carries the partial results the reachable
partitions attested to, plus one report per attempted replica saying who
answered.  A ``BUSY`` replica is retried by that replica's own client
(independent backoff) without re-querying replicas that already
answered.  Deadlines propagate: each replica receives the budget that
remains after coordinator-side elapsed time, divided across the
failover candidates still untried.

The coordinator never holds key material and never decodes tokens or
ciphertexts — it routes opaque bytes.  Replication does not change the
paper's leakage function: each query is served by exactly one replica
per partition, so the union of what the replicas observe equals what
the unreplicated shard set already observed.

Membership changes are handled offline (before serving) by
:meth:`Coordinator.reconcile_membership` and :meth:`Coordinator.rebalance`;
divergent replicas are re-replicated by :meth:`Coordinator.repair` (and
detected by :meth:`Coordinator.audit_replicas`) using the existing
payload-bearing export verb — records move shard-to-shard and the map is
rewritten only after the receiving replica acked.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.cloud.messages import FetchResponse, UploadDataset, UploadRecord
from repro.errors import (
    DeadlineExceededError,
    ParameterError,
    ProtocolError,
    ReproError,
    ServiceConnectionError,
    ShardUnavailableError,
    StorageError,
)
from repro.integrity import EMPTY_ROOT, xor_fold
from repro.service import protocol
from repro.service.client import DEADLINE_GRACE_MS, ServiceClient
from repro.service.server import FramedServer
from repro.storage.manifest import fsync_directory

__all__ = [
    "PARTITION_FILENAME",
    "ShardSpec",
    "PartitionMap",
    "CoordinatorConfig",
    "Coordinator",
]

#: On-disk name of the persisted partition map inside the coordinator's
#: data directory.
PARTITION_FILENAME = "PARTITION.json"


@dataclass(frozen=True)
class ShardSpec:
    """Network address of one backend shard."""

    host: str
    port: int

    @property
    def addr(self) -> str:
        """The canonical ``host:port`` string used in maps and reports."""
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse a ``host:port`` string (as given to ``--shard``).

        Raises:
            ParameterError: If *text* is not ``host:port`` with a valid
                port number.
        """
        host, sep, port_text = text.rpartition(":")
        if not sep or not host:
            raise ParameterError(f"shard address {text!r} is not host:port")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ParameterError(
                f"shard address {text!r} has a non-numeric port"
            ) from exc
        if not 0 < port < 65536:
            raise ParameterError(f"shard port {port} out of range")
        return cls(host=host, port=port)


class PartitionMap:
    """Which record lives in which partition, served by which replicas.

    This is the only state the coordinator owns.  It is deliberately tiny
    (ints and address strings — no ciphertext bytes) and is persisted with
    the same atomic tmp+rename+fsync discipline as the storage layer's
    manifest, so a crashed coordinator restarts with a map describing a
    set of assignments at least one replica of each partition actually
    acked — including the per-replica *stale* marks that record which
    replicas still owe a resync.

    Invariants (checked by :meth:`validate`): every partition has at
    least one replica, all replicas are distinct, no replica serves two
    partitions, every assignment names an existing partition, and stale
    marks only name known replicas.
    """

    VERSION = 2

    def __init__(self, partitions=None, assignments=None, stale=None):
        """Create a map of ``{partition_id: [replica addrs]}`` with
        ``{record_id: partition_id}`` *assignments* and per-replica
        *stale* (addr → dirty record ids) resync obligations."""
        self.partitions: dict[str, list[str]] = {
            pid: list(replicas)
            for pid, replicas in dict(partitions or {}).items()
        }
        self.assignments: dict[int, str] = dict(assignments or {})
        self.stale: dict[str, set[int]] = {
            addr: set(ids) for addr, ids in dict(stale or {}).items() if ids
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def replicas(self, pid: str) -> tuple[str, ...]:
        """The replica addrs serving partition *pid* (empty if unknown)."""
        return tuple(self.partitions.get(pid, ()))

    def partition_of(self, addr: str) -> str | None:
        """The partition id replica *addr* serves, or ``None``."""
        for pid, replicas in self.partitions.items():
            if addr in replicas:
                return pid
        return None

    def owner(self, identifier: int) -> str | None:
        """The partition id storing *identifier*, or ``None`` if unknown."""
        return self.assignments.get(identifier)

    def ids_in(self, pid: str) -> tuple[int, ...]:
        """All identifiers assigned to partition *pid*, sorted."""
        return tuple(
            sorted(i for i, p in self.assignments.items() if p == pid)
        )

    def ids_on(self, addr: str) -> tuple[int, ...]:
        """All identifiers the replica at *addr* should hold, sorted."""
        pid = self.partition_of(addr)
        return () if pid is None else self.ids_in(pid)

    def dirty_on(self, addr: str) -> frozenset[int]:
        """The record ids replica *addr* owes a resync for."""
        return frozenset(self.stale.get(addr, ()))

    def counts(self) -> dict[str, int]:
        """Record count per replica addr (zero entries included).

        Every replica reports its partition's full count — replicas of
        one partition hold identical data by design.
        """
        per_partition = self.partition_counts()
        return {
            addr: per_partition[pid]
            for pid, replicas in self.partitions.items()
            for addr in replicas
        }

    def partition_counts(self) -> dict[str, int]:
        """Record count per partition id (zero entries included)."""
        counts = {pid: 0 for pid in self.partitions}
        for pid in self.assignments.values():
            counts[pid] = counts.get(pid, 0) + 1
        return counts

    def addrs(self) -> tuple[str, ...]:
        """Every replica addr across all partitions, sorted."""
        return tuple(
            sorted(a for replicas in self.partitions.values() for a in replicas)
        )

    @property
    def record_count(self) -> int:
        """Total records assigned across all partitions."""
        return len(self.assignments)

    # ------------------------------------------------------------------
    # Mutation (membership surgery and resync bookkeeping)
    # ------------------------------------------------------------------
    def validate(self, replication: int | None = None) -> None:
        """Check the structural invariants; raise :class:`StorageError`.

        With *replication* given, additionally requires every partition
        to have exactly that many replicas.
        """
        serving: dict[str, str] = {}
        for pid, replicas in self.partitions.items():
            if not replicas:
                raise StorageError(
                    f"partition map: partition {pid} has no replicas"
                )
            if len(set(replicas)) != len(replicas):
                raise StorageError(
                    f"partition map: partition {pid} repeats a replica"
                )
            if replication is not None and len(replicas) != replication:
                raise StorageError(
                    f"partition map: partition {pid} has {len(replicas)} "
                    f"replica(s), expected {replication}"
                )
            for addr in replicas:
                if addr in serving:
                    raise StorageError(
                        f"partition map: replica {addr} serves partitions "
                        f"{serving[addr]} and {pid}"
                    )
                serving[addr] = pid
        for identifier, pid in self.assignments.items():
            if pid not in self.partitions:
                raise StorageError(
                    f"partition map: record {identifier} assigned to "
                    f"unknown partition {pid}"
                )
        for addr in self.stale:
            if addr not in serving:
                raise StorageError(
                    f"partition map: stale mark for unknown replica {addr}"
                )

    def mark_dirty(self, addr: str, identifiers) -> None:
        """Record that replica *addr* missed writes for *identifiers*.

        Raises:
            ParameterError: If *addr* serves no partition.
        """
        if self.partition_of(addr) is None:
            raise ParameterError(f"unknown replica {addr}")
        ids = set(identifiers)
        if ids:
            self.stale.setdefault(addr, set()).update(ids)

    def clear_dirty(self, addr: str, identifiers=None) -> None:
        """Drop resync obligations for *addr* (all, or just *identifiers*)."""
        if identifiers is None:
            self.stale.pop(addr, None)
            return
        remaining = self.stale.get(addr)
        if remaining is None:
            return
        remaining -= set(identifiers)
        if not remaining:
            self.stale.pop(addr, None)

    def add_partition(self, pid: str, replicas) -> None:
        """Add an empty partition *pid* served by *replicas*.

        Raises:
            ParameterError: On a duplicate pid, an empty or repeated
                replica list, or a replica already serving elsewhere.
        """
        if pid in self.partitions:
            raise ParameterError(f"partition {pid} already exists")
        replicas = list(replicas)
        if not replicas or len(set(replicas)) != len(replicas):
            raise ParameterError(
                f"partition {pid} needs a non-empty, distinct replica list"
            )
        taken = {a for group in self.partitions.values() for a in group}
        clash = taken & set(replicas)
        if clash:
            raise ParameterError(
                f"replica(s) {', '.join(sorted(clash))} already serve "
                "another partition"
            )
        self.partitions[pid] = replicas

    def remove_partition(self, pid: str) -> None:
        """Remove partition *pid*; it must hold no records.

        Raises:
            ParameterError: If *pid* is unknown or still has assignments.
        """
        if pid not in self.partitions:
            raise ParameterError(f"unknown partition {pid}")
        if any(p == pid for p in self.assignments.values()):
            raise ParameterError(f"partition {pid} still holds records")
        for addr in self.partitions.pop(pid):
            self.stale.pop(addr, None)

    def replace_replica(self, pid: str, old: str, new: str) -> None:
        """Swap replica *old* of partition *pid* for *new*.

        The replacement starts empty, so it is marked dirty with the
        partition's full canonical id set — it must not serve reads
        until :meth:`Coordinator.repair` has copied the rows over.

        Raises:
            ParameterError: If *old* does not serve *pid* or *new*
                already serves another partition.
        """
        replicas = self.partitions.get(pid)
        if replicas is None or old not in replicas:
            raise ParameterError(f"replica {old} does not serve {pid}")
        elsewhere = {
            a for group in self.partitions.values() for a in group
        } - {old}
        if new in elsewhere:
            raise ParameterError(f"replica {new} already serves a partition")
        replicas[replicas.index(old)] = new
        self.stale.pop(old, None)
        self.stale.pop(new, None)
        ids = self.ids_in(pid)
        if ids:
            self.mark_dirty(new, ids)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form (sorted for deterministic bytes)."""
        return {
            "version": self.VERSION,
            "partitions": [
                [pid, list(replicas)]
                for pid, replicas in sorted(self.partitions.items())
            ],
            "assignments": [
                [identifier, pid]
                for identifier, pid in sorted(self.assignments.items())
            ],
            "stale": [
                [addr, sorted(ids)]
                for addr, ids in sorted(self.stale.items())
                if ids
            ],
        }

    @classmethod
    def from_dict(cls, raw) -> "PartitionMap":
        """Rebuild a map from :meth:`to_dict` output.

        Version-1 documents (one replica per partition, keyed by addr)
        are migrated transparently: each shard becomes a single-replica
        partition whose id is its addr.

        Raises:
            StorageError: On a malformed or wrong-version document.
        """
        if not isinstance(raw, dict):
            raise StorageError("partition map: unsupported document")
        version = raw.get("version")
        if version == 1:
            return cls._from_dict_v1(raw)
        if version != cls.VERSION:
            raise StorageError("partition map: unsupported document")
        entries = raw.get("partitions")
        if not isinstance(entries, list):
            raise StorageError("partition map: partitions must be a list")
        partitions: dict[str, list[str]] = {}
        for entry in entries:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], list)
                or not all(isinstance(a, str) for a in entry[1])
            ):
                raise StorageError(
                    "partition map: each partition must be [pid, [addrs]]"
                )
            if entry[0] in partitions:
                raise StorageError(
                    f"partition map: partition {entry[0]} listed twice"
                )
            partitions[entry[0]] = list(entry[1])
        assignments = cls._assignments_from(raw.get("assignments"))
        for identifier, pid in assignments.items():
            if pid not in partitions:
                raise StorageError(
                    f"partition map: record {identifier} assigned to "
                    f"unknown partition {pid}"
                )
        stale_entries = raw.get("stale", [])
        if not isinstance(stale_entries, list):
            raise StorageError("partition map: stale must be a list")
        stale: dict[str, set[int]] = {}
        for entry in stale_entries:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], list)
                or not all(
                    isinstance(i, int) and not isinstance(i, bool)
                    for i in entry[1]
                )
            ):
                raise StorageError(
                    "partition map: each stale entry must be [addr, [ids]]"
                )
            stale[entry[0]] = set(entry[1])
        return cls(partitions=partitions, assignments=assignments, stale=stale)

    @classmethod
    def _from_dict_v1(cls, raw) -> "PartitionMap":
        shards = raw.get("shards")
        if not isinstance(shards, list) or not all(
            isinstance(a, str) for a in shards
        ):
            raise StorageError("partition map: shards must be addr strings")
        assignments = cls._assignments_from(raw.get("assignments"))
        partitions = {addr: [addr] for addr in shards}
        for pid in assignments.values():
            partitions.setdefault(pid, [pid])
        return cls(partitions=partitions, assignments=assignments)

    @staticmethod
    def _assignments_from(entries) -> dict[int, str]:
        if not isinstance(entries, list):
            raise StorageError("partition map: assignments must be a list")
        assignments: dict[int, str] = {}
        for entry in entries:
            if (
                not isinstance(entry, list)
                or len(entry) != 2
                or not isinstance(entry[0], int)
                or isinstance(entry[0], bool)
                or not isinstance(entry[1], str)
            ):
                raise StorageError(
                    "partition map: each assignment must be [id, partition]"
                )
            if entry[0] in assignments:
                raise StorageError(
                    f"partition map: identifier {entry[0]} assigned twice"
                )
            assignments[entry[0]] = entry[1]
        return assignments

    @classmethod
    def load(cls, directory: Path) -> "PartitionMap | None":
        """Load the persisted map from *directory*, or ``None`` if absent.

        Raises:
            StorageError: If the file exists but is malformed.
        """
        path = Path(directory) / PARTITION_FILENAME
        if not path.exists():
            return None
        try:
            raw = json.loads(path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(f"partition map unreadable: {exc}") from exc
        return cls.from_dict(raw)

    def save(self, directory: Path) -> None:
        """Atomically persist the map into *directory*.

        Same crash discipline as the storage manifest: write a temp file,
        fsync it, rename over the target, fsync the directory — a crash
        at any point leaves either the old map or the new one, never a
        torn file.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / PARTITION_FILENAME
        tmp = directory / (PARTITION_FILENAME + ".tmp")
        data = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(target)
        fsync_directory(directory)


@dataclass(frozen=True)
class CoordinatorConfig:
    """Tunables for one coordinator instance."""

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 32
    default_deadline_ms: float | None = None
    max_deadline_ms: float = 60_000.0
    drain_timeout_s: float = 10.0
    #: Socket timeout for each backend call (connect + reply).
    shard_timeout_s: float = 30.0
    #: Budget for health/stats probes when the caller sent no deadline:
    #: a stalled replica must degrade into an ``unreachable`` marker,
    #: not stall the whole scrape for ``shard_timeout_s``.
    probe_timeout_s: float = 5.0
    #: Copies of every partition.  The configured shard list is split
    #: into consecutive groups of this size, so it must divide evenly.
    replication: int = 1
    #: When set, a background task re-replicates dirty replicas every
    #: this many seconds while serving.  ``None`` (the default) leaves
    #: repair to explicit :meth:`Coordinator.repair` calls.
    repair_interval_s: float | None = None


def _default_client_factory(spec: ShardSpec, timeout_s: float) -> ServiceClient:
    return ServiceClient(spec.host, spec.port, timeout_s=timeout_s)


class Coordinator(FramedServer):
    """Front-end server routing every verb across replicated shards."""

    def __init__(
        self,
        shards,
        config: CoordinatorConfig | None = None,
        data_dir: Path | str | None = None,
        client_factory=None,
    ):
        """Assemble the coordinator (does not bind the port yet).

        Args:
            shards: The configured backend :class:`ShardSpec` list (or
                ``host:port`` strings); must be non-empty, unique, and a
                multiple of ``config.replication`` long.  Consecutive
                groups of R shards form one partition's replica set.
            config: Coordinator tunables (including the replication
                factor).
            data_dir: Directory for the persisted partition map.  When
                given, an existing map is loaded (so a restarted
                coordinator knows where every record lives) and every
                successful mutation rewrites it atomically.  ``None``
                keeps the map in memory only — fine for tests.
            client_factory: ``(ShardSpec, timeout_s) -> ServiceClient``
                hook for tests that need to interpose on shard traffic.

        A persisted map whose partitions no longer match the configured
        replica groups is *adopted*: partitions sharing at least one
        replica with a configured group are renamed onto it, and every
        replica that joined or left such a group is marked dirty so
        :meth:`repair` re-replicates exactly the divergence.  Partitions
        with no surviving replica are kept aside, and the coordinator
        refuses to *serve* until :meth:`reconcile_membership` has
        migrated their records — silently orphaning data is not an
        option.

        Raises:
            ParameterError: On an empty or duplicated shard list, or one
                that does not divide into replication-factor groups.
        """
        super().__init__(config or CoordinatorConfig())
        specs = [
            s if isinstance(s, ShardSpec) else ShardSpec.parse(s)
            for s in shards
        ]
        if not specs:
            raise ParameterError("coordinator needs at least one shard")
        if len({s.addr for s in specs}) != len(specs):
            raise ParameterError("duplicate shard addresses")
        replication = int(self.config.replication)
        if replication < 1:
            raise ParameterError("replication factor must be >= 1")
        if len(specs) % replication:
            raise ParameterError(
                f"{len(specs)} shard(s) cannot host replication factor "
                f"{replication}: the shard count must be a multiple of it"
            )
        self.replication = replication
        self.shards: tuple[ShardSpec, ...] = tuple(specs)
        self._by_addr = {s.addr: s for s in self.shards}
        self._configured: dict[str, tuple[str, ...]] = {
            f"p{index}": tuple(
                s.addr
                for s in specs[index * replication : (index + 1) * replication]
            )
            for index in range(len(specs) // replication)
        }
        self.data_dir = None if data_dir is None else Path(data_dir)
        self._client_factory = client_factory or _default_client_factory
        # Shard clients keep persistent connections and are not
        # thread-safe, so each fan-out pool thread caches its own client
        # per shard (thread-local).  The flat registry exists only so
        # shutdown can close every cached socket.
        self._local = threading.local()
        self._clients_lock = threading.Lock()
        self._all_clients: list[ServiceClient] = []
        # Liveness and load tracking shared between the event loop and
        # the fan-out pool threads; _state_lock also guards the map's
        # stale marks against concurrent repair.
        self._state_lock = threading.Lock()
        self._down: set[str] = set()
        self._loads: dict[str, int] = {s.addr: 0 for s in self.shards}
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self.shards)),
            thread_name_prefix="coord",
        )
        loaded = (
            PartitionMap.load(self.data_dir)
            if self.data_dir is not None
            else None
        )
        if loaded is None:
            self.partition_map = PartitionMap(partitions=self._configured)
        else:
            self.partition_map = self._adopt(loaded)
        self._persist_map()

    def _adopt(self, loaded: PartitionMap) -> PartitionMap:
        """Fit a persisted map onto the configured replica groups.

        A loaded partition sharing at least one replica with a
        configured group is renamed onto that group; the symmetric
        difference of the two replica sets is marked dirty with the
        partition's ids (joining replicas owe a copy, replicas moved to
        a different partition owe a purge — :meth:`repair` handles
        both).  A loaded partition with records but no surviving replica
        is kept under its own id for :meth:`reconcile_membership`.
        """
        adopted = PartitionMap(partitions=self._configured)
        configured_addrs = {
            addr for group in self._configured.values() for addr in group
        }
        for addr, ids in loaded.stale.items():
            if addr in configured_addrs:
                adopted.stale.setdefault(addr, set()).update(ids)
        rename: dict[str, str] = {}
        for pid in sorted(loaded.partitions):
            old_replicas = set(loaded.partitions[pid])
            ids = loaded.ids_in(pid)
            best, best_overlap = None, 0
            for cid in sorted(self._configured):
                overlap = len(old_replicas & set(self._configured[cid]))
                if overlap > best_overlap:
                    best, best_overlap = cid, overlap
            if best is None:
                if not ids:
                    continue
                departed = pid
                while departed in adopted.partitions:
                    departed += "@departed"
                adopted.partitions[departed] = list(loaded.partitions[pid])
                rename[pid] = departed
                continue
            rename[pid] = best
            if ids:
                new_replicas = set(self._configured[best])
                changed = (old_replicas | new_replicas) - (
                    old_replicas & new_replicas
                )
                for addr in changed & configured_addrs:
                    adopted.stale.setdefault(addr, set()).update(ids)
        for identifier, pid in loaded.assignments.items():
            target = rename.get(pid)
            if target is not None:
                adopted.assignments[identifier] = target
        return adopted

    @property
    def needs_reconcile(self) -> bool:
        """Whether the map holds partitions outside the configured set."""
        return any(
            pid not in self._configured
            for pid in self.partition_map.partitions
        )

    async def start(self) -> int:
        """Bind and start accepting connections (see ``FramedServer``).

        Raises:
            StorageError: If the partition map still holds records on
                partitions outside the configured replica groups — run
                :meth:`reconcile_membership` first.
        """
        if self.needs_reconcile:
            raise StorageError(
                "partition map assigns records to unconfigured shards; "
                "run membership reconciliation before serving"
            )
        port = await super().start()
        if self.config.repair_interval_s:
            task = asyncio.get_running_loop().create_task(self._repair_loop())
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        return port

    async def _repair_loop(self) -> None:
        """Periodically re-replicate dirty replicas while serving."""
        while not self._draining:
            await asyncio.sleep(self.config.repair_interval_s)
            if self._draining:
                return
            try:
                await self._offload(self.repair)
            except ReproError:
                # Repair is best-effort while serving: an unreachable
                # sibling leaves the marks in place for the next tick.
                pass

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _persist_map(self) -> None:
        if self.data_dir is not None:
            self.partition_map.save(self.data_dir)

    def _client(self, spec: ShardSpec) -> ServiceClient:
        cache = getattr(self._local, "clients", None)
        if cache is None:
            cache = self._local.clients = {}
        client = cache.get(spec.addr)
        if client is None:
            client = self._client_factory(spec, self.config.shard_timeout_s)
            cache[spec.addr] = client
            with self._clients_lock:
                self._all_clients.append(client)
        return client

    def _close_resources(self, drain: bool) -> None:
        self._pool.shutdown(wait=drain)
        with self._clients_lock:
            clients, self._all_clients = self._all_clients, []
        for client in clients:
            close = getattr(client, "close", None)
            if close is not None:
                close()

    async def _fan_out(self, items, call):
        """Run blocking *call(item)* for every item concurrently.

        Returns ``[(item, outcome), ...]`` in *items* order, where each
        outcome is either the call's return value or the exception it
        raised (shard failures must not cancel sibling calls — partial
        results are the whole point).
        """
        loop = asyncio.get_running_loop()
        futures = [
            loop.run_in_executor(self._pool, call, item) for item in items
        ]
        outcomes = await asyncio.gather(*futures, return_exceptions=True)
        return list(zip(items, outcomes))

    def _remaining_ms(
        self, request: protocol.Request, started: float
    ) -> float | None:
        """The deadline budget left for backend calls, if any."""
        deadline = self._effective_deadline(request)
        if deadline is None:
            return None
        elapsed = (time.perf_counter() - started) * 1000.0
        # Never send a non-positive deadline: the coordinator's own
        # wait_for is about to fire anyway; 1 ms keeps the wire valid.
        return max(deadline - elapsed, 1.0)

    def _write_budget_ms(self, request: protocol.Request) -> float | None:
        """Deadline for each write fan-out call, if the caller set one.

        Reserves headroom under the coordinator's own deadline: the
        slowest replica's client-side timeout (budget plus grace) must
        fire *before* the handler's ``wait_for`` cancels it, or a
        replica that swallowed the write would never be marked dirty
        and the acked sub-batches would never reach the map.
        """
        remaining = self._remaining_ms(request, time.perf_counter())
        if remaining is None:
            return None
        return max(remaining - 2 * DEADLINE_GRACE_MS, 1.0)

    def _probe_budget_ms(self, request: protocol.Request) -> float:
        """Deadline for one health/stats probe.

        The caller's remaining budget when it sent one; otherwise the
        configured probe timeout, so a stalled replica degrades into a
        per-shard failure marker instead of holding the whole scrape
        hostage for the full shard socket timeout.
        """
        remaining = self._remaining_ms(request, time.perf_counter())
        if remaining is not None:
            return remaining
        return self.config.probe_timeout_s * 1000.0

    def _deadline_at(
        self, request: protocol.Request, started: float
    ) -> float | None:
        """Absolute ``perf_counter`` instant the reply is due, if any."""
        deadline = self._effective_deadline(request)
        if deadline is None:
            return None
        return started + deadline / 1000.0

    @staticmethod
    def _group_by_owner(identifiers, partition_map) -> dict[str, list[int]]:
        grouped: dict[str, list[int]] = {}
        for identifier in identifiers:
            pid = partition_map.owner(identifier)
            if pid is None:
                continue
            grouped.setdefault(pid, []).append(identifier)
        return grouped

    @staticmethod
    def _rows_to_records(rows) -> tuple[UploadRecord, ...]:
        records = []
        for row in rows:
            records.append(
                UploadRecord(
                    identifier=row[0],
                    payload=row[1],
                    content=row[2],
                    tag=row[3] if len(row) > 3 else b"",
                    mtag=row[4] if len(row) > 4 else b"",
                )
            )
        return tuple(records)

    # ------------------------------------------------------------------
    # Replica liveness, load, and failover
    # ------------------------------------------------------------------
    def _mark_down(self, addr: str) -> None:
        with self._state_lock:
            self._down.add(addr)

    def _mark_up(self, addr: str) -> None:
        with self._state_lock:
            self._down.discard(addr)

    def _note_failure(self, addr: str, exc: BaseException) -> None:
        """Downgrade a replica after a transport-level failure.

        Protocol-level errors (a malformed token fails the same way
        everywhere) leave liveness alone.
        """
        if isinstance(exc, (ServiceConnectionError, DeadlineExceededError)):
            self._mark_down(addr)

    def _replica_order(self, pid: str) -> list[str]:
        """Replicas of *pid* able to serve a read, best first.

        Dirty replicas (mid-resync) never serve; live replicas come
        before down-marked ones (kept as a last resort — the mark may be
        stale), least in-flight load first.
        """
        with self._state_lock:
            down = set(self._down)
            loads = dict(self._loads)
            clean = [
                addr
                for addr in self.partition_map.replicas(pid)
                if not self.partition_map.stale.get(addr)
            ]
        live = sorted(
            (a for a in clean if a not in down),
            key=lambda a: (loads.get(a, 0), a),
        )
        suspect = sorted(
            (a for a in clean if a in down),
            key=lambda a: (loads.get(a, 0), a),
        )
        return live + suspect

    def _with_failover(self, pid: str, attempt, deadline_at):
        """Try *attempt* on each serviceable replica of *pid* in turn.

        Runs in a fan-out pool thread.  ``attempt(client, addr,
        budget_ms)`` is called with the remaining deadline split across
        the untried replicas, so a stalled first replica cannot eat a
        sibling's chance to answer inside the caller's original budget.
        Never raises shard errors: returns ``(addr, result, reports)``
        where ``addr`` and ``result`` are ``None`` if every replica
        failed, and *reports* lists one entry per failed or skipped
        attempt.
        """
        order = self._replica_order(pid)
        reports: list[dict] = []
        if not order:
            for addr in self.partition_map.replicas(pid):
                reports.append(
                    {
                        "addr": addr,
                        "partition": pid,
                        "ok": False,
                        "error": "replica awaiting re-replication",
                    }
                )
            return None, None, reports
        for index, addr in enumerate(order):
            budget = None
            if deadline_at is not None:
                remaining = (deadline_at - time.perf_counter()) * 1000.0
                budget = max(remaining / (len(order) - index), 1.0)
            with self._state_lock:
                self._loads[addr] = self._loads.get(addr, 0) + 1
            try:
                result = attempt(self._client(self._by_addr[addr]), addr, budget)
            except ReproError as exc:
                reports.append(
                    {
                        "addr": addr,
                        "partition": pid,
                        "ok": False,
                        "error": str(exc),
                    }
                )
                self._note_failure(addr, exc)
                continue
            finally:
                with self._state_lock:
                    self._loads[addr] -= 1
            self._mark_up(addr)
            return addr, result, reports
        return None, None, reports

    def _write_targets(self, pids):
        """Split each partition's replicas into write targets and skips.

        Down or dirty replicas are skipped (and later marked dirty by
        the caller so repair copies the write); everyone else gets the
        fan-out.  Returns ``(targets, skipped)`` where targets is a list
        of ``(pid, addr)`` and skipped maps pid → [addr].
        """
        targets: list[tuple[str, str]] = []
        skipped: dict[str, list[str]] = {}
        with self._state_lock:
            down = set(self._down)
        for pid in pids:
            for addr in self.partition_map.replicas(pid):
                if addr in down or self.partition_map.stale.get(addr):
                    skipped.setdefault(pid, []).append(addr)
                else:
                    targets.append((pid, addr))
        return targets, skipped

    # ------------------------------------------------------------------
    # Verb handlers
    # ------------------------------------------------------------------
    def _handlers(self) -> dict:
        return {
            "upload": self._do_upload,
            "search": self._do_search,
            "search_batch": self._do_search_batch,
            "fetch": self._do_fetch,
            "delete": self._do_delete,
            "health": self._do_health,
            "stats": self._do_stats,
            "cluster": self._do_cluster,
        }

    def _partition_ids(self) -> list[str]:
        return sorted(self.partition_map.partitions)

    def _lost_shards_error(
        self, verb: str, lost, reports, partial_identifiers=(), suffix=""
    ) -> ShardUnavailableError:
        """The typed partial-failure error for partitions with no usable
        replica left — the only case that still surfaces
        ``SHARD_UNAVAILABLE`` under replication."""
        addrs = sorted(
            {
                addr
                for pid in lost
                for addr in self.partition_map.replicas(pid)
            }
        )
        return ShardUnavailableError(
            f"{verb} lost shard(s) {', '.join(addrs)}{suffix}",
            partial_identifiers=tuple(partial_identifiers),
            shards=tuple(reports),
        )

    async def _do_search(self, request: protocol.Request) -> dict:
        message = protocol.search_from_fields(request.fields)
        verify = protocol.search_wants_verify(request.fields)
        started = time.perf_counter()
        deadline_at = self._deadline_at(request, started)
        pids = self._partition_ids()

        def ask(pid: str):
            def attempt(client, addr, budget_ms):
                if verify:
                    return client.search_verified(
                        message.payload, deadline_ms=budget_ms
                    )
                return client.search(message.payload, deadline_ms=budget_ms)

            return self._with_failover(pid, attempt, deadline_at)

        outcomes = await self._fan_out(pids, ask)
        merged: set[int] = set()
        reports: list[dict] = []
        lost: list[str] = []
        records_scanned = 0
        sub_token_evaluations = 0
        elapsed_ms = 0.0
        partitions: list[float] = []
        integrity_matches: list[list] = []
        integrity_shards: list[dict] = []
        for pid, outcome in outcomes:
            if isinstance(outcome, BaseException):
                for addr in self.partition_map.replicas(pid):
                    reports.append(
                        {
                            "addr": addr,
                            "partition": pid,
                            "ok": False,
                            "error": str(outcome),
                        }
                    )
                lost.append(pid)
                continue
            addr, result, attempt_reports = outcome
            reports.extend(attempt_reports)
            if addr is None:
                lost.append(pid)
                continue
            if verify:
                response, stats, section = result
                # Matches gain a fourth element — an index into the
                # merged shard-proof list — so the verifier can pair
                # each match with the replica that attested it.
                index = len(integrity_shards)
                for entry in section["matches"]:
                    integrity_matches.append([*entry[:3], index])
                proof = dict(section["shards"][0])
                proof["addr"] = addr
                integrity_shards.append(proof)
            else:
                response, stats = result
            merged.update(response.identifiers)
            reports.append(
                {
                    "addr": addr,
                    "partition": pid,
                    "ok": True,
                    "records": len(response.identifiers),
                    "stats": stats,
                }
            )
            records_scanned += int(stats.get("records_scanned", 0))
            sub_token_evaluations += int(
                stats.get("sub_token_evaluations", 0)
            )
            elapsed_ms = max(elapsed_ms, float(stats.get("elapsed_ms", 0.0)))
            shard_partitions = stats.get("partitions")
            if isinstance(shard_partitions, list):
                partitions.extend(float(ms) for ms in shard_partitions)
        identifiers = sorted(merged)
        if lost:
            raise self._lost_shards_error(
                "search",
                lost,
                reports,
                partial_identifiers=identifiers,
                suffix=(
                    f"; partial results cover {len(pids) - len(lost)} of "
                    f"{len(pids)} shards"
                ),
            )
        fields = {
            "identifiers": identifiers,
            "stats": {
                "records_scanned": records_scanned,
                "matches": len(identifiers),
                "sub_token_evaluations": sub_token_evaluations,
                "elapsed_ms": elapsed_ms,
                "partitions": partitions,
            },
            **protocol.shard_reports_fields(reports),
        }
        if verify:
            fields.update(
                protocol.integrity_section_fields(
                    integrity_matches, integrity_shards
                )
            )
        return fields

    async def _do_search_batch(self, request: protocol.Request) -> dict:
        payloads = protocol.search_batch_from_fields(request.fields)
        started = time.perf_counter()
        deadline_at = self._deadline_at(request, started)
        pids = self._partition_ids()

        def ask(pid: str):
            def attempt(client, addr, budget_ms):
                return client.search_batch(payloads, deadline_ms=budget_ms)

            return self._with_failover(pid, attempt, deadline_at)

        outcomes = await self._fan_out(pids, ask)
        merged: list[set[int]] = [set() for _ in payloads]
        aggregates: list[dict] = [
            {
                "records_scanned": 0,
                "sub_token_evaluations": 0,
                "elapsed_ms": 0.0,
                "partitions": [],
            }
            for _ in payloads
        ]
        reports: list[dict] = []
        lost: list[str] = []
        for pid, outcome in outcomes:
            if isinstance(outcome, BaseException):
                for addr in self.partition_map.replicas(pid):
                    reports.append(
                        {
                            "addr": addr,
                            "partition": pid,
                            "ok": False,
                            "error": str(outcome),
                        }
                    )
                lost.append(pid)
                continue
            addr, result, attempt_reports = outcome
            reports.extend(attempt_reports)
            if addr is None:
                lost.append(pid)
                continue
            matched = 0
            for index, (response, stats) in enumerate(result):
                merged[index].update(response.identifiers)
                matched += len(response.identifiers)
                aggregate = aggregates[index]
                aggregate["records_scanned"] += int(
                    stats.get("records_scanned", 0)
                )
                aggregate["sub_token_evaluations"] += int(
                    stats.get("sub_token_evaluations", 0)
                )
                aggregate["elapsed_ms"] = max(
                    aggregate["elapsed_ms"],
                    float(stats.get("elapsed_ms", 0.0)),
                )
                shard_partitions = stats.get("partitions")
                if isinstance(shard_partitions, list):
                    aggregate["partitions"].extend(
                        float(ms) for ms in shard_partitions
                    )
            reports.append(
                {"addr": addr, "partition": pid, "ok": True, "records": matched}
            )
        if lost:
            partial: set[int] = set()
            for matches in merged:
                partial.update(matches)
            raise self._lost_shards_error(
                "batch search",
                lost,
                reports,
                partial_identifiers=sorted(partial),
                suffix=(
                    f"; partial results cover {len(pids) - len(lost)} of "
                    f"{len(pids)} shards"
                ),
            )
        results = []
        for index, matches in enumerate(merged):
            identifiers = tuple(sorted(matches))
            stats = aggregates[index]
            stats["matches"] = len(identifiers)
            results.append((identifiers, stats))
        return {
            **protocol.batch_results_fields(results),
            **protocol.shard_reports_fields(reports),
        }

    async def _do_upload(self, request: protocol.Request) -> dict:
        message = protocol.upload_from_fields(request.fields)
        budget = self._write_budget_ms(request)
        # Duplicate checks mirror the single server: within the batch and
        # against everything already assigned anywhere in the cluster.
        seen = set(self.partition_map.assignments)
        for record in message.records:
            if record.identifier in seen:
                raise ProtocolError(
                    f"duplicate record identifier {record.identifier}"
                )
            seen.add(record.identifier)
        # Assign each record to the currently least-loaded partition,
        # counting this batch's own assignments so one big upload spreads
        # evenly; the sub-batch then fans out to every live replica.
        counts = self.partition_map.partition_counts()
        per_partition: dict[str, list[UploadRecord]] = {}
        for record in message.records:
            pid = min(counts, key=lambda p: (counts[p], p))
            counts[pid] += 1
            per_partition.setdefault(pid, []).append(record)
        targets, skipped = self._write_targets(sorted(per_partition))

        def push(target):
            pid, addr = target
            return self._client(self._by_addr[addr]).upload(
                UploadDataset(records=tuple(per_partition[pid])),
                deadline_ms=budget,
            )

        outcomes = await self._fan_out(targets, push)
        acked: dict[str, list[str]] = {}
        failed: dict[str, list[str]] = {}
        reports: list[dict] = []
        for (pid, addr), outcome in outcomes:
            if isinstance(outcome, BaseException):
                reports.append(
                    {
                        "addr": addr,
                        "partition": pid,
                        "ok": False,
                        "error": str(outcome),
                    }
                )
                failed.setdefault(pid, []).append(addr)
                self._note_failure(addr, outcome)
                continue
            reports.append(
                {
                    "addr": addr,
                    "partition": pid,
                    "ok": True,
                    "stored": len(per_partition[pid]),
                }
            )
            acked.setdefault(pid, []).append(addr)
        stored_ids: list[int] = []
        lost: list[str] = []
        with self._state_lock:
            for pid, batch in sorted(per_partition.items()):
                ids = [record.identifier for record in batch]
                if not acked.get(pid):
                    lost.append(pid)
                    for addr in skipped.get(pid, []):
                        reports.append(
                            {
                                "addr": addr,
                                "partition": pid,
                                "ok": False,
                                "error": "replica down or awaiting "
                                "re-replication",
                            }
                        )
                    continue
                for identifier in ids:
                    self.partition_map.assignments[identifier] = pid
                stored_ids.extend(ids)
                # Replicas that missed the write owe a resync before
                # they may serve reads again.
                for addr in failed.get(pid, []) + skipped.get(pid, []):
                    self.partition_map.mark_dirty(addr, ids)
        # Persist exactly what was acked — a crash right here leaves a map
        # describing records at least one replica really holds (including
        # which siblings still owe the copy).  The fsync must not stall
        # concurrent searches, so it runs off-loop.
        await self._offload(self._persist_map)
        if lost:
            raise self._lost_shards_error(
                "upload",
                lost,
                reports,
                partial_identifiers=sorted(stored_ids),
                suffix=(
                    f"; {len(stored_ids)} of {len(message.records)} "
                    "records were stored"
                ),
            )
        return {
            "stored": self.partition_map.record_count,
            **protocol.shard_reports_fields(reports),
        }

    async def _do_delete(self, request: protocol.Request) -> dict:
        message = protocol.delete_from_fields(request.fields)
        budget = self._write_budget_ms(request)
        grouped = self._group_by_owner(message.identifiers, self.partition_map)
        targets, skipped = self._write_targets(sorted(grouped))

        def drop(target):
            pid, addr = target
            return self._client(self._by_addr[addr]).delete(
                tuple(grouped[pid]), deadline_ms=budget
            )

        outcomes = await self._fan_out(targets, drop)
        acked: dict[str, list[int]] = {}
        failed: dict[str, list[str]] = {}
        reports: list[dict] = []
        for (pid, addr), outcome in outcomes:
            if isinstance(outcome, BaseException):
                reports.append(
                    {
                        "addr": addr,
                        "partition": pid,
                        "ok": False,
                        "error": str(outcome),
                    }
                )
                failed.setdefault(pid, []).append(addr)
                self._note_failure(addr, outcome)
                continue
            reports.append(
                {
                    "addr": addr,
                    "partition": pid,
                    "ok": True,
                    "removed": outcome,
                }
            )
            acked.setdefault(pid, []).append(outcome)
        removed = 0
        lost: list[str] = []
        with self._state_lock:
            for pid in sorted(grouped):
                ids = grouped[pid]
                if not acked.get(pid):
                    lost.append(pid)
                    continue
                removed += max(acked[pid])
                for identifier in ids:
                    self.partition_map.assignments.pop(identifier, None)
                for addr in failed.get(pid, []) + skipped.get(pid, []):
                    self.partition_map.mark_dirty(addr, ids)
        await self._offload(self._persist_map)
        if lost:
            raise self._lost_shards_error("delete", lost, reports)
        return {
            "removed": removed,
            **protocol.shard_reports_fields(reports),
        }

    async def _do_fetch(self, request: protocol.Request) -> dict:
        message = protocol.fetch_from_fields(request.fields)
        started = time.perf_counter()
        deadline_at = self._deadline_at(request, started)
        wants_payloads = protocol.fetch_wants_payloads(request.fields)
        for identifier in message.identifiers:
            if self.partition_map.owner(identifier) is None:
                raise ProtocolError(
                    f"no stored content for identifier {identifier}"
                )
        grouped = self._group_by_owner(message.identifiers, self.partition_map)

        def pull(pid: str):
            wanted = tuple(grouped[pid])

            def attempt(client, addr, budget_ms):
                if wants_payloads:
                    return client.export(wanted, deadline_ms=budget_ms)
                return client.fetch(wanted, deadline_ms=budget_ms)

            return self._with_failover(pid, attempt, deadline_at)

        outcomes = await self._fan_out(sorted(grouped), pull)
        lost: list[str] = []
        reports: list[dict] = []
        results = []
        for pid, outcome in outcomes:
            if isinstance(outcome, BaseException):
                lost.append(pid)
                continue
            addr, result, attempt_reports = outcome
            reports.extend(attempt_reports)
            if addr is None:
                lost.append(pid)
                continue
            reports.append({"addr": addr, "partition": pid, "ok": True})
            results.append(result)
        if lost:
            raise self._lost_shards_error("fetch", lost, reports)
        if wants_payloads:
            by_id = {row[0]: row for rows in results for row in rows}
            return protocol.export_rows_fields(
                [by_id[i] for i in message.identifiers]
            )
        contents: dict[int, bytes] = {}
        for result in results:
            contents.update(result)
        return protocol.fetch_response_fields(
            FetchResponse(
                contents=tuple(
                    (i, contents[i]) for i in message.identifiers
                )
            )
        )

    async def _do_health(self, request: protocol.Request) -> dict:
        budget = self._probe_budget_ms(request)

        def probe(spec: ShardSpec):
            return self._client(spec).health(deadline_ms=budget)

        outcomes = await self._fan_out(self.shards, probe)
        reports: list[dict] = []
        healthy = 0
        healthy_pids: set[str] = set()
        for spec, outcome in outcomes:
            pid = self.partition_map.partition_of(spec.addr) or ""
            if isinstance(outcome, BaseException):
                self._note_failure(spec.addr, outcome)
                reports.append(
                    {
                        "addr": spec.addr,
                        "partition": pid,
                        "ok": False,
                        "error": str(outcome),
                    }
                )
                continue
            self._mark_up(spec.addr)
            healthy += 1
            if not self.partition_map.stale.get(spec.addr):
                healthy_pids.add(pid)
            reports.append(
                {
                    "addr": spec.addr,
                    "partition": pid,
                    "ok": True,
                    "status": str(outcome.get("status", "")),
                    "records": int(outcome.get("records", 0)),
                }
            )
        return {
            "status": "ok" if healthy == len(self.shards) else "degraded",
            "coordinator": True,
            "records": self.partition_map.record_count,
            "shards_healthy": healthy,
            "shards_total": len(self.shards),
            "replication": self.replication,
            "partitions_available": len(healthy_pids),
            "partitions_total": len(self.partition_map.partitions),
            **protocol.shard_reports_fields(reports),
        }

    async def _do_stats(self, request: protocol.Request) -> dict:
        budget = self._probe_budget_ms(request)

        def probe(spec: ShardSpec):
            return self._client(spec).stats(deadline_ms=budget)

        outcomes = await self._fan_out(self.shards, probe)
        reports = []
        for spec, outcome in outcomes:
            pid = self.partition_map.partition_of(spec.addr) or ""
            if isinstance(outcome, BaseException):
                # Degrade, never raise: a shard dying mid-scrape turns
                # into an explicit per-shard marker, and the aggregate
                # below covers whoever still answered.
                self._note_failure(spec.addr, outcome)
                reports.append(
                    {
                        "addr": spec.addr,
                        "partition": pid,
                        "ok": False,
                        "unreachable": True,
                        "error": str(outcome),
                    }
                )
            else:
                reports.append(
                    {
                        "addr": spec.addr,
                        "partition": pid,
                        "ok": True,
                        "stats": outcome,
                    }
                )
        snapshot = self.metrics.snapshot()
        snapshot["records"] = self.partition_map.record_count
        snapshot.update(self._saturation_fields())
        with self._state_lock:
            down = sorted(self._down)
            stale = {
                addr: len(ids)
                for addr, ids in sorted(self.partition_map.stale.items())
                if ids
            }
        snapshot["partition"] = {
            "counts": self.partition_map.counts(),
            "partitions": self.partition_map.partition_counts(),
        }
        snapshot["replication"] = {
            "factor": self.replication,
            "down": down,
            "stale": stale,
        }
        # Cluster-wide saturation: sum the reachable shards' own queue
        # gauges so one stats call shows where the fleet is loaded.
        cluster = {
            "in_flight": 0,
            "peak_in_flight": 0,
            "rejected_busy": 0,
            "shards_reporting": 0,
        }
        for report in reports:
            stats = report.get("stats")
            if not report.get("ok") or not isinstance(stats, dict):
                continue
            queue = stats.get("queue")
            if isinstance(queue, dict):
                cluster["in_flight"] += int(queue.get("in_flight", 0))
                cluster["peak_in_flight"] += int(
                    queue.get("peak_in_flight", 0)
                )
            cluster["rejected_busy"] += int(stats.get("rejected_busy", 0))
            cluster["shards_reporting"] += 1
        snapshot["cluster"] = cluster
        integrity = self._aggregate_integrity(reports)
        if integrity is not None:
            snapshot["integrity"] = integrity
        snapshot.update(protocol.shard_reports_fields(reports))
        return snapshot

    async def _do_cluster(self, request: protocol.Request) -> dict:
        """Topology report: partitions, replicas, liveness, resync debt."""
        with self._state_lock:
            down = set(self._down)
            stale = {
                addr: len(ids)
                for addr, ids in self.partition_map.stale.items()
            }
        counts = self.partition_map.partition_counts()
        partitions = []
        for pid in self._partition_ids():
            partitions.append(
                {
                    "id": pid,
                    "records": counts.get(pid, 0),
                    "replicas": [
                        {
                            "addr": addr,
                            "down": addr in down,
                            "stale": stale.get(addr, 0),
                        }
                        for addr in self.partition_map.replicas(pid)
                    ],
                }
            )
        return {
            "replication": self.replication,
            "records": self.partition_map.record_count,
            "shards_total": len(self.shards),
            "partitions": partitions,
        }

    def _aggregate_integrity(self, reports) -> dict | None:
        """Fold per-shard integrity stats into one cluster-wide view.

        Exactly one replica represents each partition (replicas hold
        identical accumulators, and XOR-folding a root twice would
        cancel it); clean replicas are preferred over dirty ones.  Tag
        and record counts sum across partitions, accumulator roots XOR
        together (the same aggregation the client's verifier applies to
        per-shard proofs), and the cluster is *complete* only if every
        partition reported and every section is complete.  Returns
        ``None`` when no reachable shard reported integrity state
        (pre-integrity shards, or every probe failed).
        """
        candidates = []
        for report in reports:
            if (
                not report.get("ok")
                or not isinstance(report.get("stats"), dict)
                or not isinstance(report["stats"].get("integrity"), dict)
            ):
                continue
            addr = report.get("addr", "")
            dirty = bool(self.partition_map.stale.get(addr))
            pid = report.get("partition") or addr
            candidates.append((dirty, pid, report["stats"]["integrity"]))
        if not candidates:
            return None
        chosen: dict[str, dict] = {}
        for dirty, pid, section in sorted(
            candidates, key=lambda entry: entry[0]
        ):
            if pid not in chosen:
                chosen[pid] = section
        sections = list(chosen.values())
        root = EMPTY_ROOT
        for section in sections:
            try:
                shard_root = bytes.fromhex(str(section.get("root", "")))
            except ValueError:
                shard_root = b""
            if len(shard_root) == len(EMPTY_ROOT):
                root = xor_fold([root, shard_root])
        proofs = [str(section.get("last_proof", "never")) for section in sections]
        if "failed" in proofs:
            last_proof = "failed"
        elif "served" in proofs:
            last_proof = "served"
        else:
            last_proof = "never"
        return {
            "tags": sum(int(section.get("tags", 0)) for section in sections),
            "records": sum(
                int(section.get("records", 0)) for section in sections
            ),
            "complete": all(
                bool(section.get("complete")) for section in sections
            )
            and len(sections) == len(self.partition_map.partitions),
            "root": root.hex(),
            "version": sum(
                int(section.get("version", 0)) for section in sections
            ),
            "last_proof": last_proof,
            "shards_reporting": len(sections),
        }

    # ------------------------------------------------------------------
    # Re-replication (repair) and divergence detection
    # ------------------------------------------------------------------
    def repair(self) -> dict[str, int]:
        """Re-replicate: bring every dirty replica back in sync.

        For each replica owing a resync, the dirty rows still assigned
        to its partition are exported from a clean sibling (the
        payload-bearing fetch), the replica's stale copies are deleted
        (covering both missed deletes and superseded writes), the fresh
        rows are uploaded, and only then is the mark cleared and the map
        persisted.  An unreachable replica or sibling leaves the marks
        in place — repair is idempotent and retried by the background
        loop or the next explicit call.

        Returns:
            ``{addr: records_resynced}`` for each replica healed.
        """
        with self._state_lock:
            todo = {
                addr: set(ids)
                for addr, ids in self.partition_map.stale.items()
                if ids
            }
        healed: dict[str, int] = {}
        for addr in sorted(todo):
            pid = self.partition_map.partition_of(addr)
            if pid is None:
                with self._state_lock:
                    self.partition_map.clear_dirty(addr, todo[addr])
                continue
            dirty = todo[addr]
            canonical = sorted(
                i
                for i in dirty
                if self.partition_map.assignments.get(i) == pid
            )
            rows = ()
            if canonical:
                rows = None
                for source in self._replica_order(pid):
                    if source == addr:
                        continue
                    try:
                        rows = self._client(self._by_addr[source]).export(
                            tuple(canonical)
                        )
                        break
                    except ReproError as exc:
                        self._note_failure(source, exc)
                if rows is None:
                    continue
            target = self._client(self._by_addr[addr])
            try:
                target.delete(tuple(sorted(dirty)))
                if rows:
                    target.upload(
                        UploadDataset(records=self._rows_to_records(rows))
                    )
            except ReproError as exc:
                self._note_failure(addr, exc)
                continue
            with self._state_lock:
                self.partition_map.clear_dirty(addr, dirty)
            self._mark_up(addr)
            self._persist_map()
            healed[addr] = len(dirty)
        return healed

    def audit_replicas(self) -> dict[str, int]:
        """Cross-check replica record counts against the map.

        A replica that acked a write and then lost it (killed before its
        commit reached disk, restarted from an older store) diverges
        silently — the map says it holds rows it does not.  Probing each
        replica's health ``records`` count against the partition's
        canonical count catches that restart-level divergence; a
        mismatched replica is marked dirty with the full canonical id
        set so :meth:`repair` rebuilds it from a clean sibling.  (Rows a
        replica holds that the map never knew about are outside the
        audit's reach — it compares counts, not contents.)

        Returns:
            ``{addr: count_delta}`` for each replica flagged.
        """
        flagged: dict[str, int] = {}
        for pid in self._partition_ids():
            canonical = self.partition_map.ids_in(pid)
            for addr in self.partition_map.replicas(pid):
                with self._state_lock:
                    already_dirty = bool(self.partition_map.stale.get(addr))
                if already_dirty:
                    continue
                try:
                    reply = self._client(self._by_addr[addr]).health()
                except ReproError as exc:
                    self._note_failure(addr, exc)
                    continue
                held = int(reply.get("records", 0))
                if held != len(canonical):
                    with self._state_lock:
                        self.partition_map.mark_dirty(addr, canonical)
                        if not canonical:
                            # Nothing canonical to copy, but the replica
                            # holds rows the map does not know: it still
                            # must not serve until an operator resolves
                            # the divergence.
                            self._down.add(addr)
                    flagged[addr] = held - len(canonical)
        if flagged:
            self._persist_map()
        return flagged

    # ------------------------------------------------------------------
    # Membership (offline — run before serving)
    # ------------------------------------------------------------------
    def reconcile_membership(self) -> dict[str, int]:
        """Migrate records off partitions that left the configured set.

        Called offline (the CLI runs it before binding the listen port)
        when the persisted map holds partitions with no surviving
        replica in the configured groups.  Every record on a departed
        partition is exported from the first reachable replica
        (payload-bearing fetch), re-uploaded to the least-loaded
        configured partition (all replicas), deleted from the donors,
        and the map is persisted after each partition — so a crash
        mid-migration loses nothing: the record is either still on the
        donor (map unchanged) or acked by a receiving replica (map
        updated).

        Returns:
            ``{donor_partition: records_moved}`` for each departed
            partition.

        Raises:
            ShardUnavailableError: If every replica of a departed
                partition is unreachable (its records cannot be
                recovered by the coordinator alone).
        """
        departed = sorted(
            pid
            for pid in self.partition_map.partitions
            if pid not in self._configured
        )
        moved: dict[str, int] = {}
        for pid in departed:
            doomed = self.partition_map.ids_in(pid)
            replicas = self.partition_map.replicas(pid)
            rows = None
            last_error: ReproError | None = None
            for addr in replicas:
                try:
                    rows = self._client(ShardSpec.parse(addr)).export(doomed)
                    break
                except ReproError as exc:
                    last_error = exc
            if rows is None:
                raise ShardUnavailableError(
                    f"departed partition {pid} ({', '.join(replicas)}) is "
                    f"unreachable; {len(doomed)} records cannot be "
                    f"migrated: {last_error}"
                )
            self._migrate_rows(rows)
            for addr in replicas:
                try:
                    self._client(ShardSpec.parse(addr)).delete(doomed)
                except ReproError:
                    # The receivers acked and the map is persisted; a
                    # stale copy on a shard that is leaving the cluster
                    # is garbage, not a correctness problem.
                    pass
            self.partition_map.remove_partition(pid)
            self._persist_map()
            moved[pid] = len(doomed)
        return moved

    def rebalance(self, batch_size: int = 64) -> int:
        """Even out record counts after partitions were added.

        Moves records from the most- to the least-loaded partition in
        batches (export → replicated upload → delete → persist map)
        until no partition is more than one record above the mean.  Each
        batch is crash-safe in the same way as
        :meth:`reconcile_membership`.

        Returns:
            Total records moved.
        """
        moved = 0
        while True:
            counts = self.partition_map.partition_counts()
            donor = max(counts, key=lambda p: (counts[p], p))
            receiver = min(counts, key=lambda p: (counts[p], p))
            if counts[donor] - counts[receiver] <= 1:
                return moved
            surplus = counts[donor] - (
                self.partition_map.record_count
                // len(self.partition_map.partitions)
            )
            chunk = self.partition_map.ids_in(donor)[
                : max(1, min(batch_size, surplus))
            ]
            rows = None
            for source in self._replica_order(donor):
                try:
                    rows = self._client(self._by_addr[source]).export(chunk)
                    break
                except ReproError as exc:
                    self._note_failure(source, exc)
            if rows is None:
                raise ShardUnavailableError(
                    f"partition {donor} has no reachable replica to "
                    "rebalance from"
                )
            self._migrate_rows(rows, to_pid=receiver)
            for addr in self.partition_map.replicas(donor):
                try:
                    self._client(self._by_addr[addr]).delete(chunk)
                except ReproError as exc:
                    self._note_failure(addr, exc)
                    with self._state_lock:
                        self.partition_map.mark_dirty(addr, chunk)
            self._persist_map()
            moved += len(chunk)

    def _migrate_rows(self, rows, to_pid: str | None = None) -> None:
        """Upload exported *rows* to configured partitions, all replicas.

        Each receiving replica gets a delete-before-upload so a crashed
        and re-run migration never trips the duplicate-identifier check;
        a replica that misses the copy is marked dirty.  The map is
        persisted once every batch found at least one ack.
        """
        counts = {
            pid: count
            for pid, count in self.partition_map.partition_counts().items()
            if pid in self._configured
        }
        per_partition: dict[str, list[UploadRecord]] = {}
        for record in self._rows_to_records(rows):
            pid = to_pid or min(counts, key=lambda p: (counts[p], p))
            counts[pid] += 1
            per_partition.setdefault(pid, []).append(record)
        for pid, batch in sorted(per_partition.items()):
            ids = [record.identifier for record in batch]
            acked = []
            last_error: ReproError | None = None
            for addr in self.partition_map.replicas(pid):
                client = self._client(self._by_addr[addr])
                try:
                    client.delete(tuple(ids))
                    client.upload(UploadDataset(records=tuple(batch)))
                    acked.append(addr)
                except ReproError as exc:
                    last_error = exc
                    self._note_failure(addr, exc)
            if not acked:
                raise ShardUnavailableError(
                    f"partition {pid} unreachable during migration: "
                    f"{last_error}"
                )
            with self._state_lock:
                for record in batch:
                    self.partition_map.assignments[record.identifier] = pid
                for addr in self.partition_map.replicas(pid):
                    if addr not in acked:
                        self.partition_map.mark_dirty(addr, ids)
        self._persist_map()
