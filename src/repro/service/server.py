"""The asyncio TCP servers fronting the CRSE cloud.

Two servers speak the framed protocol of :mod:`repro.service.protocol`:
the single-host :class:`ServiceServer` defined here, and the distributed
:class:`~repro.service.coordinator.Coordinator` that fans out to several
of them.  Everything they share — accepting connections, framing, the
bounded request queue, deadline enforcement, graceful drain, per-verb
metrics — lives in :class:`FramedServer`; subclasses contribute only
their verb handlers and the resources to close on shutdown.

One :class:`ServiceServer` owns three things: a
:class:`~repro.cloud.server.CloudServer` (record/content store and the
paper's leakage log), a :class:`~repro.service.engine.SearchEngine` (the
multi-core scan), and a :class:`~repro.service.metrics.ServiceMetrics`
registry.  Requests on one connection are *pipelined*: every decoded
request is dispatched as its own task and replies go out (under a
per-connection write lock) as each completes, possibly out of request
order.  A client that sends one request and waits observes exactly the
old in-order behaviour; a multiplexing client
(:class:`~repro.service.aio.AsyncServiceClient`) keeps many requests in
flight on one connection and pairs replies by request id.

Robustness semantics:

* **Backpressure** — at most ``max_pending`` requests may be in flight
  across all connections; excess requests are rejected immediately with a
  typed, retryable ``BUSY`` error instead of queueing unboundedly.
* **Deadlines** — a request may carry ``deadline_ms`` (bounded by the
  server's ``max_deadline_ms``); when it trips, the client gets a typed
  ``DEADLINE`` error and the server moves on.  The abandoned computation
  finishes (and is discarded) in its worker — a deliberate trade: portable
  preemption of a running scan is not worth the complexity here.
* **Graceful drain** — ``shutdown(drain=True)`` (wired to SIGTERM/SIGINT
  by :meth:`FramedServer.run`) stops accepting connections, lets in-flight
  requests finish up to ``drain_timeout_s``, then closes the engine.
* **Framing faults** — a malformed envelope gets a ``PROTOCOL`` error
  reply and the connection lives on; a broken *frame* (truncated or
  oversized) poisons the stream's alignment, so the connection is closed.
  Either way the server keeps serving other connections.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass

from repro.cloud.codec import decode_token
from repro.cloud.messages import SearchRequest, UploadDataset, UploadRecord
from repro.cloud.server import CloudServer, SearchStats
from repro.core.base import CRSEScheme
from repro.errors import (
    IntegrityError,
    ProtocolError,
    ReproError,
    ShardUnavailableError,
    StorageError,
    WireFormatError,
)
from repro.integrity import ShardIntegrity
from repro.service import protocol
from repro.service.engine import SearchEngine
from repro.service.metrics import ServiceMetrics
from repro.service.schemeio import scheme_header
from repro.storage import RecordStore

__all__ = ["FramedServer", "ServiceConfig", "ServiceServer"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 1
    max_pending: int = 32
    default_deadline_ms: float | None = None
    max_deadline_ms: float = 60_000.0
    drain_timeout_s: float = 10.0


# Server-socket hygiene across fork().  The search engine forks worker
# processes, and tests/benchmarks run several servers in one process —
# so a fork taken by server B copies server A's listener and accepted
# connections into a long-lived child.  Killing A then leaves its port
# bound (connects hang in a zombie backlog) and its connections open (no
# FIN, peers block in recv) until that unrelated child exits.  Every
# FramedServer registers its socket fds here; forked children close
# their inherited copies immediately, restoring normal dead-peer
# semantics (ECONNREFUSED / EOF) no matter who forked when.
_server_fds: set[int] = set()
_server_fds_lock = threading.Lock()


def _track_fd(fd: int) -> None:
    with _server_fds_lock:
        _server_fds.add(fd)


def _untrack_fd(fd: int) -> None:
    with _server_fds_lock:
        _server_fds.discard(fd)


def _close_server_fds_in_child() -> None:
    # Runs in the forked child, which inherits the lock in the acquired
    # state (taken by the before-fork hook so the set is not copied
    # mid-mutation).
    _server_fds_lock.release()
    for fd in list(_server_fds):
        try:
            os.close(fd)
        except OSError:
            pass
    _server_fds.clear()


os.register_at_fork(
    before=_server_fds_lock.acquire,
    after_in_parent=_server_fds_lock.release,
    after_in_child=_close_server_fds_in_child,
)


def _stats_fields(stats: SearchStats) -> dict:
    return {
        "records_scanned": stats.records_scanned,
        "matches": stats.matches,
        "sub_token_evaluations": stats.sub_token_evaluations,
        "elapsed_ms": round(stats.elapsed_ms, 3),
        "partitions": [round(ms, 3) for ms in stats.partitions],
    }


class FramedServer:
    """Shared machinery for servers speaking the framed wire protocol.

    Owns the listener lifecycle (bind, serve, signal-driven drain), the
    per-connection read/decode/dispatch/reply loop, the bounded in-flight
    queue with typed ``BUSY`` rejections, deadline enforcement, and the
    translation of library exceptions into typed error replies.

    Subclasses implement :meth:`_handlers` (verb → async handler) and may
    override :meth:`_close_resources` to release what they own on
    shutdown.  The ``config`` object must carry ``host``, ``port``,
    ``max_pending``, ``default_deadline_ms``, ``max_deadline_ms``, and
    ``drain_timeout_s``.
    """

    def __init__(self, config):
        """Wire up lifecycle state (the port is bound later, in start())."""
        self.config = config
        self.metrics = ServiceMetrics()
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._in_flight = 0
        self._peak_in_flight = 0
        self._connections_open = 0
        self._connections_total = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    def _handlers(self) -> dict:
        """Verb → async handler map; subclasses must provide it."""
        raise NotImplementedError

    def _close_resources(self, drain: bool) -> None:
        """Release subclass-owned resources during shutdown (hook)."""

    async def _prepare(self) -> None:
        """Allocate subclass resources before the listener binds (hook).

        Anything that forks worker processes must happen here: a child
        forked after the listening socket exists inherits it, and an
        orphaned child then holds the port open after a SIGKILL of the
        server — connects hang instead of being refused.
        """

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind and start accepting connections.

        Returns:
            The bound port (useful with ``port=0``).
        """
        await self._prepare()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        for sock in self._server.sockets:
            _track_fd(sock.fileno())
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    async def run(self) -> None:
        """Start, install SIGTERM/SIGINT graceful-drain handlers, serve.

        This is the CLI entry point's body: returns only after a signal
        (or external :meth:`shutdown`) has drained the server.  Calling
        :meth:`start` first (e.g. to learn the bound port) is fine — the
        port is only bound once.
        """
        import signal

        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()

        def _request_shutdown() -> None:
            asyncio.ensure_future(self.shutdown(drain=True))

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, _request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-Unix
                pass
        await self.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight requests, close up."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            for sock in self._server.sockets:
                _untrack_fd(sock.fileno())
            self._server.close()
            await self._server.wait_closed()
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout_s
            while self._in_flight and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._close_resources(drain)
        self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        sock = writer.get_extra_info("socket")
        conn_fd = sock.fileno() if sock is not None else -1
        if conn_fd >= 0:
            _track_fd(conn_fd)
        try:
            await self._connection_loop(reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            if conn_fd >= 0:
                _untrack_fd(conn_fd)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Requests are pipelined: each decoded request runs as its own
        # task, and replies are written (lock-serialized) as they finish,
        # possibly out of request order.  The request id in the envelope
        # is what lets a multiplexing client pair them up again.
        self._connections_open += 1
        self._connections_total += 1
        write_lock = asyncio.Lock()
        request_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    body = await protocol.read_frame(reader)
                except WireFormatError as exc:
                    # Frame alignment is gone; answer once and hang up.
                    self.metrics.count_protocol_error()
                    await self._locked_reply(
                        writer,
                        write_lock,
                        protocol.encode_error(
                            0, protocol.ERR_PROTOCOL, str(exc)
                        ),
                    )
                    return
                if body is None:
                    return
                try:
                    request = protocol.decode_request(body)
                except WireFormatError as exc:
                    # Bad envelope in a well-formed frame: recoverable.
                    self.metrics.count_protocol_error()
                    await self._locked_reply(
                        writer,
                        write_lock,
                        protocol.encode_error(
                            0, protocol.ERR_PROTOCOL, str(exc)
                        ),
                    )
                    continue
                task = asyncio.ensure_future(
                    self._serve_request(request, writer, write_lock)
                )
                request_tasks.add(task)
                task.add_done_callback(request_tasks.discard)
                # Shutdown must be able to cancel requests that outlive
                # their connection loop, so they register globally too.
                self._conn_tasks.add(task)
                task.add_done_callback(self._conn_tasks.discard)
        finally:
            self._connections_open -= 1
            if request_tasks:
                # Let in-flight requests finish (their replies may still
                # be writable); shutdown cancels them via _conn_tasks.
                await asyncio.gather(*request_tasks, return_exceptions=True)

    async def _serve_request(
        self,
        request: protocol.Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        reply = await self._handle_request(request)
        await self._locked_reply(writer, write_lock, reply)

    async def _locked_reply(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, body: bytes
    ) -> None:
        async with lock:
            await self._safe_reply(writer, body)

    async def _safe_reply(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            await protocol.write_frame(writer, body)
        except (ConnectionError, OSError):
            pass

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _handle_request(self, request: protocol.Request) -> bytes:
        if self._draining:
            self.metrics.count_busy()
            return protocol.encode_error(
                request.request_id,
                protocol.ERR_BUSY,
                "server is draining",
                retryable=True,
            )
        if self._in_flight >= self.config.max_pending:
            self.metrics.count_busy()
            return protocol.encode_error(
                request.request_id,
                protocol.ERR_BUSY,
                f"request queue full ({self.config.max_pending} in flight)",
                retryable=True,
            )
        self._in_flight += 1
        self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
        started = time.perf_counter()
        ok = False
        try:
            fields = await self._dispatch(request)
            ok = True
            return protocol.encode_ok(request.request_id, fields)
        except asyncio.TimeoutError:
            self.metrics.count_deadline()
            return protocol.encode_error(
                request.request_id,
                protocol.ERR_DEADLINE,
                f"deadline of {self._effective_deadline(request)} ms exceeded",
            )
        except ShardUnavailableError as exc:
            # A coordinator fan-out lost a shard: the typed error carries
            # the partial results the reachable shards attested to.
            return protocol.encode_error(
                request.request_id,
                protocol.ERR_SHARD_UNAVAILABLE,
                str(exc),
                fields={
                    "identifiers": list(exc.partial_identifiers),
                    **protocol.shard_reports_fields(exc.shards),
                },
            )
        except (WireFormatError, ProtocolError) as exc:
            return protocol.encode_error(
                request.request_id, protocol.ERR_PROTOCOL, str(exc)
            )
        except ReproError as exc:
            return protocol.encode_error(
                request.request_id, protocol.ERR_INTERNAL, str(exc)
            )
        finally:
            self._in_flight -= 1
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self.metrics.observe(request.verb, elapsed_ms, ok)

    def _effective_deadline(self, request: protocol.Request) -> float | None:
        deadline = request.deadline_ms
        if deadline is None:
            deadline = self.config.default_deadline_ms
        if deadline is None:
            return None
        return min(deadline, self.config.max_deadline_ms)

    async def _dispatch(self, request: protocol.Request) -> dict:
        handler = self._handlers().get(request.verb)
        if handler is None:
            # The verb is valid on the wire but not on this endpoint
            # (e.g. ``cluster`` against a plain shard): a typed error,
            # not a hung connection.
            raise ProtocolError(
                f"verb {request.verb!r} is not served by this endpoint"
            )
        deadline_ms = self._effective_deadline(request)
        work = handler(request)
        if deadline_ms is None:
            return await work
        return await asyncio.wait_for(work, timeout=deadline_ms / 1000.0)

    @staticmethod
    async def _offload(func, *args):
        """Run CPU-bound *func* on the default executor, keeping the loop live."""
        return await asyncio.get_running_loop().run_in_executor(
            None, func, *args
        )

    def _saturation_fields(self) -> dict:
        """The ``queue``/``connections`` sections of a ``stats`` reply.

        Saturation gauges for load tests: current and peak in-flight
        depth against the BUSY limit, plus how many connections are open
        now and were ever accepted (a persistent-connection client shows
        up here as one connection however many requests it sends).
        """
        return {
            "queue": {
                "in_flight": self._in_flight,
                "peak_in_flight": self._peak_in_flight,
                "limit": self.config.max_pending,
            },
            "connections": {
                "open": self._connections_open,
                "total": self._connections_total,
            },
        }


class ServiceServer(FramedServer):
    """A networked CRSE query service around one scheme instance."""

    def __init__(
        self,
        scheme: CRSEScheme,
        config: ServiceConfig | None = None,
        engine: SearchEngine | None = None,
        store: RecordStore | None = None,
    ):
        """Assemble the service (does not bind the port yet — see start()).

        Args:
            scheme: Public scheme parameters (the server never sees keys).
            config: Service tunables; defaults are test-friendly.
            engine: An externally built engine (tests inject fakes here);
                by default one is created with ``config.workers`` shards.
            store: An open :class:`~repro.storage.RecordStore`.  When
                given, every upload/delete is durably logged *before* the
                client is acked, and the store's live records are replayed
                into the cloud state and engine shards right here — so a
                server restarted on the same data directory comes back
                with the dataset (and upload/delete leakage counters) it
                had when it died.

        Raises:
            StorageError: If *store* was created for a different scheme
                than the one this server is being built around.
        """
        super().__init__(config or ServiceConfig())
        self.cloud = CloudServer(scheme)
        self.engine = (
            engine
            if engine is not None
            else SearchEngine(scheme, workers=self.config.workers)
        )
        self.store = store
        # Keyless per-shard integrity registry: opaque owner-minted tags
        # plus the membership accumulator (see repro.integrity.shard).
        self.integrity = ShardIntegrity()
        self._last_proof = "never"
        if store is not None:
            self._replay_store(store)

    def _replay_store(self, store: RecordStore) -> None:
        """Load the store's live records into the cloud state and engine.

        After replay the leakage log's ``uploads`` counter is reset to the
        store's *logical* upload count: the replay itself arrives as one
        big batch, but the history a curious server observed was N client
        uploads, and that history — not the restart artifact — is what the
        log must preserve.
        """
        ours = scheme_header(self.cloud.scheme)
        if store.scheme_header != ours:
            raise StorageError(
                "store was created for a different scheme than this server "
                "(public header mismatch)"
            )
        records = tuple(
            UploadRecord(
                identifier=identifier,
                payload=payload,
                content=content,
                tag=tag,
                mtag=mtag,
            )
            for identifier, payload, content, tag, mtag in store.scan_tagged()
        )
        if records:
            self.cloud.handle_upload(UploadDataset(records=records))
            self.engine.load(
                (record.identifier, record.payload) for record in records
            )
            for record in records:
                self.integrity.add(
                    record.identifier, record.payload, record.tag, record.mtag
                )
        self.cloud.log.uploads = store.uploads

    async def _prepare(self) -> None:
        """Fork every engine worker before the listening socket exists.

        Workers forked lazily (on the first upload) would inherit the
        bound listener; after a SIGKILL of this process the orphaned
        workers would then keep the port accepting-but-unserved, turning
        a fast connection-refused into a full client timeout.
        """
        await self._offload(self.engine.warm_up)

    def ingest(self, message: UploadDataset) -> int:
        """Validate, durably log (if durable), and apply one upload batch.

        The ordering is the durability contract: the batch reaches the
        disk log *before* any in-memory state changes, so an ack implies
        the records survive a crash, and a crash before the ack leaves no
        partial state (recovery truncates the uncommitted batch).

        Returns:
            Total records stored after the batch.
        """
        prepared = self.cloud.prepare_upload(message)
        if self.store is not None:
            self.store.append(
                (
                    record.identifier,
                    record.payload,
                    record.content,
                    record.tag,
                    record.mtag,
                )
                for record in message.records
            )
        self.cloud.commit_upload(prepared)
        self.engine.load(
            (record.identifier, record.payload) for record in message.records
        )
        for record in message.records:
            self.integrity.add(
                record.identifier, record.payload, record.tag, record.mtag
            )
        self._checkpoint_integrity()
        return self.cloud.record_count

    def _checkpoint_integrity(self) -> None:
        """Checkpoint the accumulator into the manifest (durable stores).

        Runs on the caller's (executor) thread — both mutation paths are
        already off the event loop when they land here.
        """
        if self.store is not None:
            self.store.checkpoint_integrity(self.integrity.checkpoint())

    def _close_resources(self, drain: bool) -> None:
        self.engine.close(wait=drain)
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    # Verb handlers
    # ------------------------------------------------------------------
    def _handlers(self) -> dict:
        return {
            "upload": self._do_upload,
            "search": self._do_search,
            "search_batch": self._do_search_batch,
            "fetch": self._do_fetch,
            "delete": self._do_delete,
            "health": self._do_health,
            "stats": self._do_stats,
        }

    async def _do_upload(self, request: protocol.Request) -> dict:
        message = protocol.upload_from_fields(request.fields)
        # ingest() orders validate → disk log → commit, so the ack below
        # is a durability promise when a store is attached.
        return {"stored": await self._offload(self.ingest, message)}

    async def _do_search(self, request: protocol.Request) -> dict:
        message = protocol.search_from_fields(request.fields)
        verify = protocol.search_wants_verify(request.fields)
        return await self._offload(self._search_once, message.payload, verify)

    async def _do_search_batch(self, request: protocol.Request) -> dict:
        payloads = protocol.search_batch_from_fields(request.fields)

        def run_batch() -> dict:
            # Decode and log every token first (a malformed one rejects
            # the whole batch before any worker sees it), then hand the
            # vector to the engine in one dispatch per shard — the
            # per-task pool overhead that dominates small-dataset
            # searches is paid once for the batch.  Leakage-wise each
            # token is still recorded as its own query, so a batch
            # observes exactly N independent searches.
            for payload in payloads:
                message = SearchRequest(payload=payload)
                token = decode_token(self.cloud.scheme, payload)
                self.cloud._record_query_leakage(message, token)
            engine_results = self.engine.search_batch(payloads)
            results = []
            for result in engine_results:
                self.cloud.log.access_pattern.append(result.identifiers)
                self.cloud.last_search_stats = result.stats
                results.append(
                    (list(result.identifiers), _stats_fields(result.stats))
                )
            return protocol.batch_results_fields(results)

        return await self._offload(run_batch)

    def _search_once(self, payload: bytes, verify: bool) -> dict:
        """Run one token against the engine (executor thread).

        Decode in the parent first: a malformed token is rejected with
        PROTOCOL before any worker sees it, and the leakage log records
        exactly what handle_search would record.
        """
        message = SearchRequest(payload=payload)
        token = decode_token(self.cloud.scheme, payload)
        self.cloud._record_query_leakage(message, token)
        result = self.engine.search(payload)
        self.cloud.log.access_pattern.append(result.identifiers)
        self.cloud.last_search_stats = result.stats
        fields = {
            "identifiers": list(result.identifiers),
            "stats": _stats_fields(result.stats),
        }
        if verify:
            # Attach per-match tags and the completeness proof.  A
            # shard holding untagged records cannot attest, which is
            # the requester's problem statement — a PROTOCOL error,
            # not an internal one.
            try:
                fields.update(
                    protocol.integrity_section_fields(
                        self.integrity.matches_section(result.identifiers),
                        [
                            self.integrity.proof_for(
                                result.identifiers, payload
                            )
                        ],
                    )
                )
            except IntegrityError as exc:
                self._last_proof = "failed"
                raise ProtocolError(
                    f"verification unavailable: {exc}"
                ) from exc
            self._last_proof = "served"
        return fields

    async def _do_fetch(self, request: protocol.Request) -> dict:
        message = protocol.fetch_from_fields(request.fields)
        if protocol.fetch_wants_payloads(request.fields):
            rows = await self._offload(self._export_rows, message.identifiers)
            return protocol.export_rows_fields(rows)
        response = await self._offload(self.cloud.handle_fetch, message)
        return protocol.fetch_response_fields(response)

    def _export_rows(self, identifiers) -> list[tuple]:
        """Export rows with their integrity tags merged back in.

        Tags ride along on migration so a record moved to another shard
        stays verifiable there.
        """
        rows = []
        for identifier, payload, content in self.cloud.export_records(
            identifiers
        ):
            tag, mtag = self.integrity.tags_for(identifier)
            rows.append((identifier, payload, content, tag, mtag))
        return rows

    async def _do_delete(self, request: protocol.Request) -> dict:
        message = protocol.delete_from_fields(request.fields)

        def work() -> int:
            # Tombstone first: if we crash after the disk write the
            # replayed state matches what the client was (about to be)
            # told; crashing before it just loses an unacked request.
            if self.store is not None:
                self.store.delete(message.identifiers)
            removed = self.cloud.handle_delete(message)
            self.engine.delete(message.identifiers)
            for identifier in message.identifiers:
                self.integrity.remove(identifier)
            self._checkpoint_integrity()
            return removed

        return {"removed": await self._offload(work)}

    async def _do_health(self, request: protocol.Request) -> dict:
        return {
            "status": "ok",
            "records": self.cloud.record_count,
            "workers": self.engine.workers,
            "durable": self.store is not None,
        }

    async def _do_stats(self, request: protocol.Request) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["records"] = self.cloud.record_count
        snapshot.update(self._saturation_fields())
        snapshot["engine"] = {
            "record_count": self.engine.record_count,
            "workers": self.engine.workers,
        }
        snapshot["integrity"] = self.integrity_stats()
        if self.store is not None:
            snapshot["store"] = self.store.snapshot().to_dict()
        return snapshot

    def integrity_stats(self) -> dict:
        """The ``integrity`` section of the ``stats`` reply.

        ``tags`` counts records carrying integrity tags (``complete``
        is true when that covers every record), ``root``/``version``
        checkpoint the accumulator, and ``last_proof`` reports the
        outcome of the most recent verified search (``never``/``served``/
        ``failed``).
        """
        tagged = sum(1 for _, _, tag, mtag in self.integrity.entries() if tag and mtag)
        return {
            "tags": tagged,
            "records": self.integrity.count,
            "complete": self.integrity.complete,
            "root": self.integrity.root.hex(),
            "version": self.integrity.version,
            "last_proof": self._last_proof,
        }
