"""Per-verb counters and latency histograms for the query service.

The ``stats`` verb exposes these so a load test (or the throughput
benchmark) can read queries/sec and tail latency straight off the server
instead of inferring them client-side.  Buckets are fixed upper bounds in
milliseconds, Prometheus-style cumulative-free (each bucket counts only its
own interval), chosen to straddle both the fast backend's sub-millisecond
scans and paper-scale multi-second searches.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["LATENCY_BUCKETS_MS", "VerbMetrics", "ServiceMetrics"]

#: Histogram bucket upper bounds, in milliseconds (last bucket is +inf).
LATENCY_BUCKETS_MS = (
    1.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
)


@dataclass
class VerbMetrics:
    """Counters and a latency histogram for one verb."""

    requests: int = 0
    errors: int = 0
    total_ms: float = 0.0
    max_ms: float = 0.0
    buckets: list[int] = field(
        default_factory=lambda: [0] * (len(LATENCY_BUCKETS_MS) + 1)
    )

    def observe(self, elapsed_ms: float, ok: bool) -> None:
        """Record one handled request."""
        self.requests += 1
        if not ok:
            self.errors += 1
        self.total_ms += elapsed_ms
        self.max_ms = max(self.max_ms, elapsed_ms)
        for index, bound in enumerate(LATENCY_BUCKETS_MS):
            if elapsed_ms <= bound:
                self.buckets[index] += 1
                break
        else:
            self.buckets[-1] += 1

    def percentile_ms(self, quantile: float) -> float:
        """Estimate the *quantile* (in ``(0, 1]``) from the histogram.

        Linear interpolation inside the covering bucket; the overflow
        bucket reports ``max_ms`` (the histogram has no upper bound
        there).  An estimate, not an exact order statistic — bucket
        resolution bounds the error, which is the histogram trade-off.
        """
        if not self.requests:
            return 0.0
        rank = quantile * self.requests
        cumulative = 0
        prev_bound = 0.0
        for bound, count in zip(LATENCY_BUCKETS_MS, self.buckets):
            if count and cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return prev_bound + fraction * (bound - prev_bound)
            cumulative += count
            prev_bound = bound
        return self.max_ms

    def snapshot(self) -> dict:
        """JSON-serializable view (what the ``stats`` verb ships)."""
        mean = self.total_ms / self.requests if self.requests else 0.0
        return {
            "requests": self.requests,
            "errors": self.errors,
            "mean_ms": round(mean, 3),
            "max_ms": round(self.max_ms, 3),
            "p50_ms": round(self.percentile_ms(0.50), 3),
            "p95_ms": round(self.percentile_ms(0.95), 3),
            "p99_ms": round(self.percentile_ms(0.99), 3),
            "buckets_le_ms": [
                [bound, count]
                for bound, count in zip(LATENCY_BUCKETS_MS, self.buckets)
            ]
            + [["inf", self.buckets[-1]]],
        }


class ServiceMetrics:
    """Thread-safe registry of per-verb metrics plus queue gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._verbs: dict[str, VerbMetrics] = {}
        self.rejected_busy = 0
        self.deadline_exceeded = 0
        self.protocol_errors = 0

    def observe(self, verb: str, elapsed_ms: float, ok: bool) -> None:
        """Record one handled request for *verb*."""
        with self._lock:
            self._verbs.setdefault(verb, VerbMetrics()).observe(
                elapsed_ms, ok
            )

    def count_busy(self) -> None:
        """Record one request rejected by backpressure."""
        with self._lock:
            self.rejected_busy += 1

    def count_deadline(self) -> None:
        """Record one request that exceeded its deadline."""
        with self._lock:
            self.deadline_exceeded += 1

    def count_protocol_error(self) -> None:
        """Record one malformed frame or envelope."""
        with self._lock:
            self.protocol_errors += 1

    def snapshot(self) -> dict:
        """JSON-serializable view of everything the service counted."""
        with self._lock:
            return {
                "verbs": {
                    verb: metrics.snapshot()
                    for verb, metrics in sorted(self._verbs.items())
                },
                "rejected_busy": self.rejected_busy,
                "deadline_exceeded": self.deadline_exceeded,
                "protocol_errors": self.protocol_errors,
            }
