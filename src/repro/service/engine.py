"""Multi-core search engine: the encrypted dataset sharded across processes.

The paper closes by noting that each encrypted record "can be evaluated
independently with a given search token, [so] performance can be further
improved by using parallel computing with multiple instances of Amazon
EC2".  :class:`repro.cloud.server.CloudServer.parallel_search` *models*
that claim; this engine *implements* it on one host: the dataset is
round-robin sharded across ``workers`` single-process pools, each worker
holds its shard's decoded ciphertexts resident, and a search broadcasts the
token to every shard and merges the matches.  Speedup is measured, not
simulated — on a multi-core host the wall-clock is the slowest shard.

Each shard is its own single-worker :class:`~concurrent.futures.\
ProcessPoolExecutor` rather than one big pool, because shard residency
matters: a pool routes tasks to any idle worker, but a record decoded into
worker 3 is only searchable by worker 3.  Workers rebuild the scheme from
its public header (:mod:`repro.service.schemeio`) — the secret key never
crosses the process boundary, and everything a worker sees (ciphertext
bytes, token bytes, match results) is already in the paper's leakage
function.
"""

from __future__ import annotations

import json
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cloud.codec import decode_ciphertext, decode_token
from repro.cloud.server import SearchStats
from repro.core.base import CRSEScheme
from repro.core.crse2 import CRSE2Scheme
from repro.errors import ParameterError, ServiceError
from repro.service.schemeio import restore_scheme, scheme_header

__all__ = ["EngineSearchResult", "SearchEngine"]


# Worker-process state: the rebuilt scheme and this shard's resident
# records, populated by the pool initializer and the load task.
_worker_scheme: CRSEScheme | None = None
_worker_records: list = []


def _worker_init(header_json: str) -> None:
    global _worker_scheme, _worker_records
    # A terminal ^C delivers SIGINT to the whole foreground process group;
    # shard shutdown is the parent's job (close()), so workers must not
    # die mid-drain with KeyboardInterrupt tracebacks of their own.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _worker_scheme = restore_scheme(json.loads(header_json))
    # Fixed-base tables are per-group (hence per-process) state: pay the
    # generator table build once at shard startup, so every generator
    # exponentiation over the worker's lifetime hits the cache and the
    # first search is not slower than steady state.
    _worker_scheme.group.precompute_generators()
    _worker_records = []


def _require_worker_scheme() -> CRSEScheme:
    if _worker_scheme is None:
        raise ServiceError("worker process was not initialized")
    return _worker_scheme


def _worker_load(records: Sequence[tuple[int, bytes]]) -> int:
    scheme = _require_worker_scheme()
    for identifier, payload in records:
        _worker_records.append(
            (identifier, decode_ciphertext(scheme, payload))
        )
    return len(_worker_records)


def _worker_delete(identifiers: frozenset) -> int:
    global _worker_records
    before = len(_worker_records)
    _worker_records = [
        entry for entry in _worker_records if entry[0] not in identifiers
    ]
    return before - len(_worker_records)


def _worker_search(token_payload: bytes) -> tuple[list[int], int, int, float]:
    started = time.perf_counter()
    scheme = _require_worker_scheme()
    token = decode_token(scheme, token_payload)
    matches: list[int] = []
    scanned = 0
    evaluations = 0
    for identifier, ciphertext in _worker_records:
        scanned += 1
        if isinstance(scheme, CRSE2Scheme):
            matched, evaluated = scheme.matches_with_stats(token, ciphertext)
            evaluations += evaluated
        else:
            matched = scheme.matches(token, ciphertext)
            evaluations += 1
        if matched:
            matches.append(identifier)
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    return matches, scanned, evaluations, elapsed_ms


def _worker_search_batch(
    token_payloads: Sequence[bytes],
) -> list[tuple[list[int], int, int, float]]:
    # One pool task scans the shard once per token; the per-task pickle
    # and dispatch cost — which dominates small-dataset searches — is
    # paid once for the whole vector instead of once per token.
    return [_worker_search(payload) for payload in token_payloads]


@dataclass(frozen=True)
class EngineSearchResult:
    """Merged outcome of one sharded search."""

    identifiers: tuple[int, ...]
    stats: SearchStats


class SearchEngine:
    """Shards the encrypted dataset across process workers and searches it."""

    def __init__(self, scheme: CRSEScheme, workers: int = 1):
        """Spin up *workers* shard processes for *scheme*.

        Args:
            scheme: The CRSE construction (public parameters only are
                shipped to workers).
            workers: Number of shard processes; each holds ``~n/workers``
                records resident.

        Raises:
            ParameterError: If *workers* is not positive.
        """
        if workers < 1:
            raise ParameterError("need at least one search worker")
        header = json.dumps(scheme_header(scheme))
        self._shards = [
            ProcessPoolExecutor(
                max_workers=1,
                initializer=_worker_init,
                initargs=(header,),
            )
            for _ in range(workers)
        ]
        self._next_shard = 0
        self._record_count = 0
        self._closed = False

    @property
    def workers(self) -> int:
        """Number of shard processes."""
        return len(self._shards)

    @property
    def record_count(self) -> int:
        """Total records resident across all shards."""
        return self._record_count

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("search engine is closed")

    def load(self, records: Iterable[tuple[int, bytes]]) -> int:
        """Decode *records* ``(identifier, payload)`` into the shards.

        Records are dealt round-robin (continuing from previous loads), so
        incremental uploads keep the shards balanced.

        Returns:
            The total record count after loading.
        """
        self._require_open()
        per_shard: list[list[tuple[int, bytes]]] = [
            [] for _ in self._shards
        ]
        for identifier, payload in records:
            per_shard[self._next_shard].append((identifier, payload))
            self._next_shard = (self._next_shard + 1) % len(self._shards)
        futures = [
            shard.submit(_worker_load, batch)
            for shard, batch in zip(self._shards, per_shard)
            if batch
        ]
        loaded = sum(len(batch) for batch in per_shard)
        for future in futures:
            future.result()
        self._record_count += loaded
        return self._record_count

    def delete(self, identifiers: Iterable[int]) -> int:
        """Remove records by identifier from every shard.

        Returns:
            How many records were actually removed.
        """
        self._require_open()
        doomed = frozenset(identifiers)
        if not doomed:
            return 0
        removed = sum(
            future.result()
            for future in [
                shard.submit(_worker_delete, doomed)
                for shard in self._shards
            ]
        )
        self._record_count -= removed
        return removed

    def search(self, token_payload: bytes) -> EngineSearchResult:
        """Broadcast *token_payload* to all shards and merge the matches.

        Blocks until the slowest shard finishes.  Worker-side decode
        failures (malformed token bytes) propagate as the codec's
        :class:`~repro.errors.WireFormatError`.

        Returns:
            The merged identifiers (sorted) and a
            :class:`~repro.cloud.server.SearchStats` whose ``partitions``
            holds each shard's scan time.
        """
        self._require_open()
        futures = [
            shard.submit(_worker_search, token_payload)
            for shard in self._shards
        ]
        identifiers: list[int] = []
        stats = SearchStats()
        partition_ms: list[float] = []
        for future in futures:
            matches, scanned, evaluations, elapsed_ms = future.result()
            identifiers.extend(matches)
            stats.records_scanned += scanned
            stats.sub_token_evaluations += evaluations
            partition_ms.append(elapsed_ms)
        identifiers.sort()
        stats.matches = len(identifiers)
        stats.partitions = tuple(partition_ms)
        stats.elapsed_ms = max(partition_ms)
        return EngineSearchResult(
            identifiers=tuple(identifiers), stats=stats
        )

    def search_batch(
        self, token_payloads: Sequence[bytes]
    ) -> list[EngineSearchResult]:
        """Search every token in one dispatch per shard, in token order.

        Equivalent to ``[self.search(p) for p in token_payloads]`` but
        each shard receives the whole vector as a single pool task, so
        the per-task process-pool overhead amortizes across the batch —
        that overhead, not scanning, dominates small-dataset searches.

        Raises:
            ParameterError: On an empty batch.
        """
        self._require_open()
        payloads = list(token_payloads)
        if not payloads:
            raise ParameterError("search batch needs at least one token")
        futures = [
            shard.submit(_worker_search_batch, payloads)
            for shard in self._shards
        ]
        per_shard = [future.result() for future in futures]
        results: list[EngineSearchResult] = []
        for index in range(len(payloads)):
            identifiers: list[int] = []
            stats = SearchStats()
            partition_ms: list[float] = []
            for shard_results in per_shard:
                matches, scanned, evaluations, elapsed_ms = shard_results[
                    index
                ]
                identifiers.extend(matches)
                stats.records_scanned += scanned
                stats.sub_token_evaluations += evaluations
                partition_ms.append(elapsed_ms)
            identifiers.sort()
            stats.matches = len(identifiers)
            stats.partitions = tuple(partition_ms)
            stats.elapsed_ms = max(partition_ms)
            results.append(
                EngineSearchResult(
                    identifiers=tuple(identifiers), stats=stats
                )
            )
        return results

    def warm_up(self) -> None:
        """Force every worker process to start and build its scheme.

        Useful before measuring throughput, so the first query does not pay
        worker spawn + scheme construction.
        """
        self._require_open()
        for future in [
            shard.submit(_worker_load, []) for shard in self._shards
        ]:
            future.result()

    def close(self, wait: bool = True) -> None:
        """Shut the shard processes down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "SearchEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the shards."""
        self.close()
