"""Run a framed-protocol server on a background thread.

Both the single-host :class:`~repro.service.server.ServiceServer` and the
distributed :class:`~repro.service.coordinator.Coordinator` are asyncio
servers; tests and benchmarks usually want them *alongside* blocking
client code in the same process.  :class:`ServerThread` owns a private
event loop on a daemon thread, starts the server there, and exposes the
bound port — so a test can stand up a whole multi-shard cluster (several
``ServiceServer`` threads plus a ``Coordinator`` thread) in-process,
where every shard's leakage log remains directly inspectable.

This is deliberately a library module, not test scaffolding: the
distributed benchmark and the parity/fault suites all build clusters from
it, and keeping one implementation avoids three slightly-different
copies of the start/stop dance.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
from dataclasses import replace as dataclass_replace
from pathlib import Path

__all__ = ["ReplicatedCluster", "ServerThread"]


class ServerThread:
    """Run any ``FramedServer`` on its own event loop in a daemon thread."""

    def __init__(self, server):
        """Wrap *server* (not yet started; call :meth:`start`)."""
        self.server = server
        self.port: int | None = None
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            try:
                # Transport.close() only takes effect on a later loop
                # iteration; without this flush an ungraceful stop
                # leaves accepted sockets open in this process, and
                # peers block in recv until their own timeout instead
                # of seeing EOF.
                self._loop.run_until_complete(asyncio.sleep(0))
            except BaseException:
                pass
            self._loop.close()

    async def _main(self) -> None:
        try:
            self.port = await self.server.start()
        except BaseException as exc:  # startup failures surface in start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.serve_forever()

    def start(self, timeout_s: float = 10.0) -> int:
        """Start the thread; block until the port is bound; return it.

        Raises:
            TimeoutError: If the server fails to come up in time.
            Exception: Whatever ``server.start()`` raised on its loop.
        """
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise TimeoutError("server did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        assert self.port is not None
        return self.port

    def stop(self, drain: bool = True, timeout_s: float = 15.0) -> None:
        """Shut the server down and join the thread."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), self._loop
        )
        future.result(timeout=timeout_s)
        self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServerThread":
        """Context-manager entry: start and return self."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: stop with drain."""
        self.stop()


class ReplicatedCluster:
    """An in-process replicated cluster: P partitions × R replicas behind
    one coordinator.

    The chaos suites and the kill-a-replica benchmark all need the same
    dance: stand up ``partitions * replication`` backend servers, wire a
    replication-aware :class:`~repro.service.coordinator.Coordinator`
    over them, and later kill a replica mid-run or swap a dead one for a
    fresh empty server and watch re-replication converge.  The map is
    persisted into a (temporary, unless given) data directory so a
    rebuilt coordinator adopts the surviving topology instead of
    starting blank.

    Args:
        backend_factory: Zero-argument callable returning a fresh, not
            yet started backend ``FramedServer`` (usually a
            ``ServiceServer`` over the test's scheme) — called once per
            replica, and again by :meth:`replace`.
        partitions: Number of partitions.
        replication: Replicas per partition.
        coordinator_config: Base coordinator tunables; the replication
            factor is always overridden with *replication*.
        data_dir: Partition-map directory; a private temporary directory
            is used (and cleaned up by :meth:`stop`) when omitted.
    """

    def __init__(
        self,
        backend_factory,
        partitions: int = 2,
        replication: int = 2,
        coordinator_config=None,
        data_dir=None,
    ):
        # Imported here, not at module top: the service package imports
        # this module early, before the coordinator exists.
        from repro.service.coordinator import Coordinator, CoordinatorConfig

        self._coordinator_cls = Coordinator
        base = coordinator_config or CoordinatorConfig()
        self._coord_config = dataclass_replace(base, replication=replication)
        self._backend_factory = backend_factory
        self.partitions = partitions
        self.replication = replication
        self._tmp = None
        if data_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            data_dir = self._tmp.name
        self.data_dir = Path(data_dir)
        self._order: list[str] = []
        self._threads: dict[str, ServerThread] = {}
        self._coord_thread: ServerThread | None = None
        self.coordinator_port: int | None = None

    @property
    def coordinator(self):
        """The live ``Coordinator`` instance (after :meth:`start`)."""
        assert self._coord_thread is not None
        return self._coord_thread.server

    @property
    def addrs(self) -> tuple[str, ...]:
        """Replica addrs in partition-group order (R consecutive addrs
        per partition)."""
        return tuple(self._order)

    def backend(self, addr: str):
        """The in-process backend server at *addr* (its logs and record
        store stay directly inspectable)."""
        return self._threads[addr].server

    def start(self) -> int:
        """Start every backend plus the coordinator; return its port."""
        for _ in range(self.partitions * self.replication):
            thread = ServerThread(self._backend_factory())
            port = thread.start()
            addr = f"127.0.0.1:{port}"
            self._order.append(addr)
            self._threads[addr] = thread
        return self._start_coordinator()

    def _start_coordinator(self) -> int:
        coordinator = self._coordinator_cls(
            self._order, config=self._coord_config, data_dir=self.data_dir
        )
        if coordinator.needs_reconcile:
            coordinator.reconcile_membership()
        coordinator.repair()
        self._coord_thread = ServerThread(coordinator)
        self.coordinator_port = self._coord_thread.start()
        return self.coordinator_port

    def kill(self, addr: str) -> None:
        """Take the backend at *addr* down ungracefully (no drain)."""
        self._threads[addr].stop(drain=False)

    def replace(self, addr: str) -> str:
        """Swap the replica at *addr* for a fresh empty backend.

        Kills the old backend if it is still up, starts a new one on a
        new port, and rebuilds the coordinator over the updated shard
        list: the persisted map is adopted, the newcomer is marked dirty
        with the partition's canonical ids, and repair copies the rows
        from a surviving sibling before the coordinator serves.  Returns
        the new replica's addr.  The coordinator's port changes — dial
        :attr:`coordinator_port` again.
        """
        old = self._threads.pop(addr)
        old.stop(drain=False)
        thread = ServerThread(self._backend_factory())
        port = thread.start()
        new_addr = f"127.0.0.1:{port}"
        self._order[self._order.index(addr)] = new_addr
        self._threads[new_addr] = thread
        if self._coord_thread is not None:
            self._coord_thread.stop(drain=False)
        self._start_coordinator()
        return new_addr

    def stop(self) -> None:
        """Stop the coordinator, every backend, and the temp map dir."""
        if self._coord_thread is not None:
            self._coord_thread.stop()
            self._coord_thread = None
        for thread in self._threads.values():
            thread.stop()
        self._threads.clear()
        self._order.clear()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "ReplicatedCluster":
        """Context-manager entry: start and return self."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: stop everything."""
        self.stop()
