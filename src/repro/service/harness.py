"""Run a framed-protocol server on a background thread.

Both the single-host :class:`~repro.service.server.ServiceServer` and the
distributed :class:`~repro.service.coordinator.Coordinator` are asyncio
servers; tests and benchmarks usually want them *alongside* blocking
client code in the same process.  :class:`ServerThread` owns a private
event loop on a daemon thread, starts the server there, and exposes the
bound port — so a test can stand up a whole multi-shard cluster (several
``ServiceServer`` threads plus a ``Coordinator`` thread) in-process,
where every shard's leakage log remains directly inspectable.

This is deliberately a library module, not test scaffolding: the
distributed benchmark and the parity/fault suites all build clusters from
it, and keeping one implementation avoids three slightly-different
copies of the start/stop dance.
"""

from __future__ import annotations

import asyncio
import threading

__all__ = ["ServerThread"]


class ServerThread:
    """Run any ``FramedServer`` on its own event loop in a daemon thread."""

    def __init__(self, server):
        """Wrap *server* (not yet started; call :meth:`start`)."""
        self.server = server
        self.port: int | None = None
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        finally:
            self._loop.close()

    async def _main(self) -> None:
        try:
            self.port = await self.server.start()
        except BaseException as exc:  # startup failures surface in start()
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.serve_forever()

    def start(self, timeout_s: float = 10.0) -> int:
        """Start the thread; block until the port is bound; return it.

        Raises:
            TimeoutError: If the server fails to come up in time.
            Exception: Whatever ``server.start()`` raised on its loop.
        """
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise TimeoutError("server did not start in time")
        if self._startup_error is not None:
            raise self._startup_error
        assert self.port is not None
        return self.port

    def stop(self, drain: bool = True, timeout_s: float = 15.0) -> None:
        """Shut the server down and join the thread."""
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), self._loop
        )
        future.result(timeout=timeout_s)
        self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServerThread":
        """Context-manager entry: start and return self."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: stop with drain."""
        self.stop()
